"""Fully dynamic maintenance: a mixed insert/delete stream, kept exact.

The paper handles insertions (IncHL+) and names decremental updates as
future work; this repository implements both.  This example drives one
oracle through a mixed stream — 70% insertions, 30% deletions — verifying
exactness against plain BFS along the way, then shows the sliding-window
streaming model where every arrival also evicts the oldest edge.

Run:  python examples/fully_dynamic.py
"""

from repro import DynamicHCL
from repro.graph.generators import powerlaw_cluster
from repro.graph.traversal import bfs_distances
from repro.workloads.queries import sample_query_pairs
from repro.workloads.streams import mixed_stream, replay, sliding_window_stream

INF = float("inf")


def spot_check(oracle, pairs) -> None:
    """Compare a handful of oracle answers against BFS ground truth."""
    for u, v in pairs:
        expected = bfs_distances(oracle.graph, u).get(v, INF)
        actual = oracle.query(u, v)
        status = "ok" if actual == expected else "MISMATCH"
        print(f"    d({u:>4}, {v:>4}) = {actual!s:>4}   bfs: {expected!s:>4}   {status}")
        assert actual == expected


def main() -> None:
    print("Generating a 3,000-vertex clustered power-law graph ...")
    graph = powerlaw_cluster(3_000, attach=4, triangle_prob=0.4, rng=11)
    print(f"  |V| = {graph.num_vertices:,}   |E| = {graph.num_edges:,}")

    oracle = DynamicHCL.build(graph, num_landmarks=16)
    print(f"  built labelling: size(L) = {oracle.label_entries:,} entries")

    # --- Mixed stream ---------------------------------------------------
    print("\nReplaying a mixed stream (70% inserts, 30% deletes) ...")
    events = mixed_stream(graph, 60, insert_ratio=0.7, rng=23)
    records = replay(oracle, events)
    inserts = sum(1 for r in records if r.event.is_insert)
    mean_ms = sum(r.seconds for r in records) / len(records) * 1000
    print(f"  {inserts} insertions + {len(records) - inserts} deletions, "
          f"mean {mean_ms:.3f} ms/event")

    print("  spot-checking exactness after the stream:")
    spot_check(oracle, sample_query_pairs(graph, 5, rng=3))

    # --- Sliding window -------------------------------------------------
    print("\nSliding-window stream (window = 15 live extra edges) ...")
    events = sliding_window_stream(graph, 40, window=15, rng=29)
    records = replay(oracle, events)
    evictions = sum(1 for r in records if not r.event.is_insert)
    print(f"  {len(records)} events ({evictions} evictions), "
          f"|E| now {oracle.graph.num_edges:,}")

    print("  spot-checking exactness after the window:")
    spot_check(oracle, sample_query_pairs(graph, 5, rng=5))

    # --- Vertex churn ---------------------------------------------------
    print("\nVertex churn: insert a hub, then retire an old vertex ...")
    hub = graph.max_vertex_id() + 1
    oracle.insert_vertex(hub, [0, 1, 2, 3, 4])
    print(f"  inserted vertex {hub} with 5 edges; "
          f"d({hub}, 100) = {oracle.query(hub, 100)}")
    victim = next(
        v for v in sorted(graph.vertices())
        if v not in oracle.labelling.landmark_set and v != hub
    )
    oracle.remove_vertex(victim)
    print(f"  removed vertex {victim}; |V| = {graph.num_vertices:,}")

    print("  final spot check:")
    spot_check(oracle, sample_query_pairs(graph, 5, rng=8))
    print(f"\nsize(L) after all churn = {oracle.label_entries:,} entries "
          "(minimality preserved through inserts *and* deletes)")


if __name__ == "__main__":
    main()
