"""Legacy-install shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs (which need ``bdist_wheel``) fail; this ``setup.py`` lets
``pip install -e .`` take the legacy ``develop`` path.  All metadata lives
in ``pyproject.toml``.
"""

from setuptools import setup

setup()
