#!/usr/bin/env python
"""End-to-end cluster smoke check (CI gate for `repro.cluster`).

Boots the full replicated stack — oracle build, `save_oracle` warm-start
file, :class:`ClusterSupervisor` spawning a WAL-backed router plus N
replica processes — then:

1. drives a concurrent phase: client threads run closed `query_many`
   loops against the router while updates stream in through the protocol
   (measures aggregate qps across the replica fleet);
2. drains every replica to the log head (`snapshot` op), then re-checks
   query pairs — routed with `min_epoch` = head, so every replica must be
   caught up — against a local BFS mirror that replayed the same updates;
3. scrapes the router's ``--metrics-port`` Prometheus endpoint after the
   drain and asserts every per-replica lag gauge reads **zero** (the
   cluster converged), and that one traced request produced spans
   (``--span-log FILE`` mirrors spans to an NDJSON artifact);
4. stops the supervisor and asserts a **clean shutdown**: every replica
   process exited 0 after its SIGTERM drain.

Exit code 0 requires **nonzero qps, zero incorrect answers, zero-lag
convergence in the exposition, and a clean shutdown**.

With ``--shards N`` the supervisor runs N landmark shard groups of
``--replicas`` each; reads scatter-gather across groups, so the BFS
cross-checks exercise the element-wise min reduction end to end.  The
smoke then also asserts every ``repro_shard_lag`` gauge reads zero and
reports per-shard label entries and peak RSS (``--json-out`` writes the
whole result as a bench JSON artifact).

Usage:  PYTHONPATH=src python tools/cluster_smoke.py [--seconds 3]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import urllib.request
from pathlib import Path
from time import perf_counter

from smoke_common import QueryLoop, bfs_distance

from repro.cluster import ClusterSupervisor
from repro.core.dynamic import DynamicHCL
from repro.graph.generators import barabasi_albert
from repro.obs.profile import dump_if_enabled
from repro.obs.trace import new_trace_id
from repro.serving.client import ServingClient
from repro.utils.rng import ensure_rng
from repro.utils.serialization import save_oracle
from repro.workloads.streams import mixed_stream


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seconds", type=float, default=3.0)
    parser.add_argument("--clients", type=int, default=3)
    parser.add_argument("--replicas", type=int, default=2,
                        help="replica processes per shard group")
    parser.add_argument("--shards", type=int, default=1,
                        help="landmark shard groups (1 = unsharded)")
    parser.add_argument("--vertices", type=int, default=400)
    parser.add_argument("--updates", type=int, default=60)
    parser.add_argument("--checks", type=int, default=150)
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--span-log", default=None, metavar="FILE",
                        help="mirror router spans to this NDJSON file")
    parser.add_argument("--json-out", default=None, metavar="FILE",
                        help="write the smoke result as a bench JSON artifact")
    args = parser.parse_args(argv)
    if args.span_log:
        # Before any span is recorded and before replicas spawn: they
        # inherit the environment, so router and replica spans land in
        # the same NDJSON file (whole-line appends, flushed per span).
        os.environ["REPRO_SPAN_LOG"] = str(args.span_log)

    graph = barabasi_albert(args.vertices, attach=3, rng=args.seed)
    events = mixed_stream(graph, args.updates, rng=args.seed)
    oracle = DynamicHCL.build(graph, num_landmarks=10)
    vertices = sorted(graph.vertices())

    with tempfile.TemporaryDirectory() as tmp:
        oracle_file = Path(tmp) / "oracle.json.gz"
        save_oracle(oracle, oracle_file)
        supervisor = ClusterSupervisor(
            oracle_file,
            cluster_dir=Path(tmp) / "cluster",
            replicas=args.replicas,
            shards=args.shards,
            port=0,
            fsync="batch",
            router_kwargs={"metrics_port": 0},
        )
        host, port = supervisor.start_in_thread()
        total_replicas = args.shards * args.replicas
        print(f"cluster router on {host}:{port} with {args.shards} shard "
              f"group(s) x {args.replicas} replicas "
              f"(|V|={len(vertices)}, |E|={graph.num_edges})")
        try:
            deadline = perf_counter() + args.seconds
            loops = [
                QueryLoop(host, port, vertices, args.seed + i, deadline)
                for i in range(args.clients)
            ]
            start = perf_counter()
            for loop in loops:
                loop.start()

            # Stream the updates through the router while readers run,
            # mirroring them locally for the later correctness pass.
            mirror = {v: set(ns) for v, ns in graph.adjacency().items()}
            with ServingClient(host, port) as feeder:
                head = 0
                for event in events:
                    u, v = event.edge
                    response = feeder.update(event.kind, u, v)
                    head = response["epoch"]
                    if event.is_insert:
                        mirror[u].add(v)
                        mirror[v].add(u)
                    else:
                        mirror[u].discard(v)
                        mirror[v].discard(u)
                for loop in loops:
                    loop.join()
                elapsed = perf_counter() - start
                queries = sum(loop.count for loop in loops)
                qps = queries / elapsed

                # Drain every replica to the head, then verify reads gated
                # at that epoch against the BFS mirror.
                final = feeder.snapshot()
                stats = feeder.stats()
                rng = ensure_rng(args.seed * 7)
                pairs = [
                    (rng.choice(vertices), rng.choice(vertices))
                    for _ in range(args.checks)
                ]
                incorrect = 0
                for chunk_base in range(0, len(pairs), 25):
                    chunk = pairs[chunk_base : chunk_base + 25]
                    answers = feeder.query_many(chunk, min_epoch=head)
                    incorrect += sum(
                        1
                        for (u, v), got in zip(chunk, answers)
                        if got != bfs_distance(mirror, u, v)
                    )

                # Observability: one traced read through the router, then
                # scrape the router's Prometheus endpoint — every replica
                # has acked the head, so all lag gauges must read zero.
                trace = new_trace_id()
                feeder.query(*pairs[0], min_epoch=head, trace=trace)
                trace_spans = feeder.spans(of=trace)
            mhost, mport = supervisor.router.metrics_address
            with urllib.request.urlopen(
                f"http://{mhost}:{mport}/", timeout=10
            ) as response:
                exposition = response.read().decode("utf-8")
            lag_lines = [
                line for line in exposition.splitlines()
                if line.startswith("repro_replica_lag{")
            ]
            shard_lag_lines = [
                line for line in exposition.splitlines()
                if line.startswith("repro_shard_lag{")
            ]
        finally:
            supervisor.stop_thread()
        exit_codes = {
            name: worker.exitcode
            for name, worker in supervisor.workers_by_name.items()
        }

    lags = {name: entry["lag"] for name, entry in stats["replicas"].items()}
    print(f"concurrent phase: {queries} queries in {elapsed:.2f}s -> "
          f"{qps:.0f} qps across {args.clients} clients / "
          f"{total_replicas} replicas")
    print(f"writer: log head {final['epoch']}, replica lags {lags}, "
          f"aggregate applied {stats['aggregate']['events_applied']}")
    shard_report = {}
    for index, group in sorted((stats.get("shards") or {}).items(), key=lambda kv: int(kv[0])):
        entries = [
            entry.get("service", {}).get("label_entries", 0)
            for entry in stats["replicas"].values()
            if entry.get("shard") == int(index)
        ]
        shard_report[index] = {
            "lag": group.get("lag"),
            "rss_kb_max": group.get("rss_kb_max"),
            "label_entries_max": max(entries or [0]),
        }
        print(f"shard s{index}: lag={group.get('lag')} "
              f"rss_max={group.get('rss_kb_max'):,}KiB "
              f"label_entries={shard_report[index]['label_entries_max']:,}")
    print(f"verification: {args.checks} BFS cross-checks at min_epoch="
          f"{head}, {incorrect} incorrect")
    print(f"observability: {len(trace_spans)} router span(s) for trace "
          f"{trace}, {len(exposition)} bytes of exposition, "
          f"lag gauges: {lag_lines}")
    print(f"shutdown: replica exit codes {exit_codes}")

    if queries == 0 or qps <= 0:
        print("FAIL: zero query throughput", file=sys.stderr)
        return 1
    if incorrect:
        print(f"FAIL: {incorrect} incorrect answers", file=sys.stderr)
        return 1
    if final["epoch"] != args.updates:
        print(f"FAIL: log head {final['epoch']} != {args.updates} updates",
              file=sys.stderr)
        return 1
    if not trace_spans:
        print("FAIL: traced request produced no router spans", file=sys.stderr)
        return 1
    if len(lag_lines) != total_replicas:
        print(f"FAIL: expected {total_replicas} replica lag gauges, "
              f"got {lag_lines}", file=sys.stderr)
        return 1
    if any(not line.rstrip().endswith(" 0") for line in lag_lines):
        print(f"FAIL: nonzero replication lag after drain: {lag_lines}",
              file=sys.stderr)
        return 1
    if args.shards > 1:
        if len(shard_lag_lines) != args.shards:
            print(f"FAIL: expected {args.shards} shard lag gauges, "
                  f"got {shard_lag_lines}", file=sys.stderr)
            return 1
        if any(not line.rstrip().endswith(" 0") for line in shard_lag_lines):
            print(f"FAIL: nonzero shard lag after drain: {shard_lag_lines}",
                  file=sys.stderr)
            return 1
    if args.span_log and not Path(args.span_log).stat().st_size:
        print("FAIL: span log is empty", file=sys.stderr)
        return 1
    if any(code != 0 for code in exit_codes.values()):
        print(f"FAIL: unclean replica shutdown: {exit_codes}", file=sys.stderr)
        return 1
    if args.json_out:
        result = {
            "suite": "cluster_smoke",
            "host_cpus": os.cpu_count(),
            "shards": args.shards,
            "replicas_per_shard": args.replicas,
            "clients": args.clients,
            "vertices": args.vertices,
            "updates": args.updates,
            "checks": args.checks,
            "seconds": elapsed,
            "queries": queries,
            "qps": round(qps, 1),
            "incorrect": incorrect,
            "log_head": final["epoch"],
            "per_shard": shard_report,
            "exit_codes": exit_codes,
        }
        Path(args.json_out).write_text(json.dumps(result, indent=2) + "\n")
        print(f"bench json -> {args.json_out}")
    # Under REPRO_PROFILE=1 the router-side folded stacks land in
    # REPRO_PROFILE_OUT (CI uploads them as an artifact); no-op otherwise.
    dump_if_enabled()
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
