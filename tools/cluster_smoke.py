#!/usr/bin/env python
"""End-to-end cluster smoke check (CI gate for `repro.cluster`).

Boots the full replicated stack — oracle build, `save_oracle` warm-start
file, :class:`ClusterSupervisor` spawning a WAL-backed router plus N
replica processes — then:

1. drives a concurrent phase: client threads run closed `query_many`
   loops against the router while updates stream in through the protocol
   (measures aggregate qps across the replica fleet);
2. drains every replica to the log head (`snapshot` op), then re-checks
   query pairs — routed with `min_epoch` = head, so every replica must be
   caught up — against a local BFS mirror that replayed the same updates;
3. scrapes the router's ``--metrics-port`` Prometheus endpoint after the
   drain and asserts every per-replica lag gauge reads **zero** (the
   cluster converged), and that one traced request produced spans
   (``--span-log FILE`` mirrors spans to an NDJSON artifact);
4. stops the supervisor and asserts a **clean shutdown**: every replica
   process exited 0 after its SIGTERM drain.

Exit code 0 requires **nonzero qps, zero incorrect answers, zero-lag
convergence in the exposition, and a clean shutdown**.

Usage:  PYTHONPATH=src python tools/cluster_smoke.py [--seconds 3]
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import urllib.request
from pathlib import Path
from time import perf_counter

from smoke_common import QueryLoop, bfs_distance

from repro.cluster import ClusterSupervisor
from repro.core.dynamic import DynamicHCL
from repro.graph.generators import barabasi_albert
from repro.obs.trace import new_trace_id
from repro.serving.client import ServingClient
from repro.utils.rng import ensure_rng
from repro.utils.serialization import save_oracle
from repro.workloads.streams import mixed_stream


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seconds", type=float, default=3.0)
    parser.add_argument("--clients", type=int, default=3)
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument("--vertices", type=int, default=400)
    parser.add_argument("--updates", type=int, default=60)
    parser.add_argument("--checks", type=int, default=150)
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--span-log", default=None, metavar="FILE",
                        help="mirror router spans to this NDJSON file")
    args = parser.parse_args(argv)
    if args.span_log:
        # Before any span is recorded and before replicas spawn: they
        # inherit the environment, so router and replica spans land in
        # the same NDJSON file (whole-line appends, flushed per span).
        os.environ["REPRO_SPAN_LOG"] = str(args.span_log)

    graph = barabasi_albert(args.vertices, attach=3, rng=args.seed)
    events = mixed_stream(graph, args.updates, rng=args.seed)
    oracle = DynamicHCL.build(graph, num_landmarks=10)
    vertices = sorted(graph.vertices())

    with tempfile.TemporaryDirectory() as tmp:
        oracle_file = Path(tmp) / "oracle.json.gz"
        save_oracle(oracle, oracle_file)
        supervisor = ClusterSupervisor(
            oracle_file,
            cluster_dir=Path(tmp) / "cluster",
            replicas=args.replicas,
            port=0,
            fsync="batch",
            router_kwargs={"metrics_port": 0},
        )
        host, port = supervisor.start_in_thread()
        print(f"cluster router on {host}:{port} with {args.replicas} replicas "
              f"(|V|={len(vertices)}, |E|={graph.num_edges})")
        try:
            deadline = perf_counter() + args.seconds
            loops = [
                QueryLoop(host, port, vertices, args.seed + i, deadline)
                for i in range(args.clients)
            ]
            start = perf_counter()
            for loop in loops:
                loop.start()

            # Stream the updates through the router while readers run,
            # mirroring them locally for the later correctness pass.
            mirror = {v: set(ns) for v, ns in graph.adjacency().items()}
            with ServingClient(host, port) as feeder:
                head = 0
                for event in events:
                    u, v = event.edge
                    response = feeder.update(event.kind, u, v)
                    head = response["epoch"]
                    if event.is_insert:
                        mirror[u].add(v)
                        mirror[v].add(u)
                    else:
                        mirror[u].discard(v)
                        mirror[v].discard(u)
                for loop in loops:
                    loop.join()
                elapsed = perf_counter() - start
                queries = sum(loop.count for loop in loops)
                qps = queries / elapsed

                # Drain every replica to the head, then verify reads gated
                # at that epoch against the BFS mirror.
                final = feeder.snapshot()
                stats = feeder.stats()
                rng = ensure_rng(args.seed * 7)
                pairs = [
                    (rng.choice(vertices), rng.choice(vertices))
                    for _ in range(args.checks)
                ]
                incorrect = 0
                for chunk_base in range(0, len(pairs), 25):
                    chunk = pairs[chunk_base : chunk_base + 25]
                    answers = feeder.query_many(chunk, min_epoch=head)
                    incorrect += sum(
                        1
                        for (u, v), got in zip(chunk, answers)
                        if got != bfs_distance(mirror, u, v)
                    )

                # Observability: one traced read through the router, then
                # scrape the router's Prometheus endpoint — every replica
                # has acked the head, so all lag gauges must read zero.
                trace = new_trace_id()
                feeder.query(*pairs[0], min_epoch=head, trace=trace)
                trace_spans = feeder.spans(of=trace)
            mhost, mport = supervisor.router.metrics_address
            with urllib.request.urlopen(
                f"http://{mhost}:{mport}/", timeout=10
            ) as response:
                exposition = response.read().decode("utf-8")
            lag_lines = [
                line for line in exposition.splitlines()
                if line.startswith("repro_replica_lag{")
            ]
        finally:
            supervisor.stop_thread()
        exit_codes = {
            name: worker.exitcode
            for name, worker in supervisor.workers_by_name.items()
        }

    lags = {name: entry["lag"] for name, entry in stats["replicas"].items()}
    print(f"concurrent phase: {queries} queries in {elapsed:.2f}s -> "
          f"{qps:.0f} qps across {args.clients} clients / "
          f"{args.replicas} replicas")
    print(f"writer: log head {final['epoch']}, replica lags {lags}, "
          f"aggregate applied {stats['aggregate']['events_applied']}")
    print(f"verification: {args.checks} BFS cross-checks at min_epoch="
          f"{head}, {incorrect} incorrect")
    print(f"observability: {len(trace_spans)} router span(s) for trace "
          f"{trace}, {len(exposition)} bytes of exposition, "
          f"lag gauges: {lag_lines}")
    print(f"shutdown: replica exit codes {exit_codes}")

    if queries == 0 or qps <= 0:
        print("FAIL: zero query throughput", file=sys.stderr)
        return 1
    if incorrect:
        print(f"FAIL: {incorrect} incorrect answers", file=sys.stderr)
        return 1
    if final["epoch"] != args.updates:
        print(f"FAIL: log head {final['epoch']} != {args.updates} updates",
              file=sys.stderr)
        return 1
    if not trace_spans:
        print("FAIL: traced request produced no router spans", file=sys.stderr)
        return 1
    if len(lag_lines) != args.replicas:
        print(f"FAIL: expected {args.replicas} replica lag gauges, "
              f"got {lag_lines}", file=sys.stderr)
        return 1
    if any(not line.rstrip().endswith(" 0") for line in lag_lines):
        print(f"FAIL: nonzero replication lag after drain: {lag_lines}",
              file=sys.stderr)
        return 1
    if args.span_log and not Path(args.span_log).stat().st_size:
        print("FAIL: span log is empty", file=sys.stderr)
        return 1
    if any(code != 0 for code in exit_codes.values()):
        print(f"FAIL: unclean replica shutdown: {exit_codes}", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
