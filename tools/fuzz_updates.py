#!/usr/bin/env python3
"""Stateful fuzz harness for the dynamic oracle and the serving layer.

Generates random op sequences (single insert, batch insert, delete,
delete-of-absent-edge, re-insert-after-delete, mixed insert/delete
batch, landmark promotion) from a seeded RNG, applies them to a
``DynamicHCL`` on the **fast** path while mirroring them on the
sequential reference, and cross-checks after every op:

* fast labelling == sequential labelling (byte-identity);
* sampled distance queries == BFS ground truth;
* the labelling equals a from-scratch minimal rebuild at the end.

Every round also replays the same op sequence through an
``OracleService`` (writer thread, coalesced batches, snapshot
publication) and verifies the served answers against BFS.

On failure the harness **shrinks** the op sequence: it repeatedly tries
dropping ops (largest chunks first, ddmin-style) while the failure
reproduces, then prints the minimal failing sequence as a ready-to-paste
repro.  Exit status is non-zero if any round failed.

Usage::

    PYTHONPATH=src python tools/fuzz_updates.py --rounds 20 --seed 7
    PYTHONPATH=src python tools/fuzz_updates.py --replay '<json op list>' --seed 7

CI runs this nightly (see .github/workflows/nightly-fuzz.yml).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time

from repro.core.dynamic import DynamicHCL
from repro.core.construction import build_hcl
from repro.exceptions import ReproError
from repro.graph.traversal import bfs_distances
from repro.landmarks.selection import top_degree_landmarks
from repro.serving.service import OracleService
from repro.workloads.streams import UpdateEvent

sys.path.insert(0, ".")  # make tests.proptest importable from the repo root
from tests.proptest.strategies import (  # noqa: E402
    insertion_stream,
    mixed_event_stream,
    random_graph,
)

# An op is a JSON-friendly list: ["insert", u, v] | ["batch", [[u, v], ...]]
# | ["delete", u, v] | ["mixed", [["insert"|"delete", u, v], ...]]
# | ["landmark", v].  A "delete" whose edge is absent when the op runs is
# *intentional*: both engines must reject it cleanly (no state change),
# mirroring what a wire client can send the serving layer.


class FuzzFailure(AssertionError):
    """Raised (with context) when an invariant breaks mid-sequence."""


def generate_ops(graph, rng: random.Random, count: int) -> list:
    """A random applicable op sequence against a simulation of ``graph``."""
    sim = graph.copy()
    ops: list = []
    landmark_budget = 2
    while len(ops) < count:
        roll = rng.random()
        if roll < 0.35:
            stream = insertion_stream(sim, 1, rng)
            if not stream:
                break
            (u, v) = stream[0]
            sim.add_edge(u, v)
            ops.append(["insert", u, v])
        elif roll < 0.55:
            stream = insertion_stream(sim, rng.randint(2, 6), rng)
            if not stream:
                break
            for u, v in stream:
                sim.add_edge(u, v)
            ops.append(["batch", [list(e) for e in stream]])
        elif roll < 0.72:
            if sim.num_edges <= sim.num_vertices:
                continue
            edges = list(sim.edges())
            u, v = edges[rng.randrange(len(edges))]
            sim.remove_edge(u, v)
            ops.append(["delete", u, v])
            if rng.random() < 0.3:
                # Re-insert-after-delete: the engine must rebuild exactly
                # the entries the deletion dropped.
                sim.add_edge(u, v)
                ops.append(["insert", u, v])
        elif roll < 0.78:
            # Delete of a *non-existent* edge: both engines must reject it
            # with no side effects.  The sim is not mutated, so the edge is
            # guaranteed absent at replay time too.
            stream = insertion_stream(sim, 1, rng)
            if not stream:
                break
            ops.append(["delete", stream[0][0], stream[0][1]])
        elif roll < 0.92:
            events = mixed_event_stream(sim, rng.randint(2, 6), rng)
            if not events:
                continue
            for kind, (u, v) in events:
                if kind == "insert":
                    sim.add_edge(u, v)
                else:
                    sim.remove_edge(u, v)
            ops.append(["mixed", [[kind, u, v] for kind, (u, v) in events]])
        else:
            if landmark_budget == 0:
                continue
            landmark_budget -= 1
            vertices = sorted(sim.vertices())
            ops.append(["landmark", vertices[rng.randrange(len(vertices))]])
    return ops


def _applicable(graph, landmarks: set, op) -> bool:
    kind = op[0]
    if kind == "insert":
        _, u, v = op
        return graph.has_vertex(u) and graph.has_vertex(v) and not graph.has_edge(u, v)
    if kind == "batch":
        seen = set()
        for u, v in op[1]:
            key = (u, v) if u < v else (v, u)
            if (
                not graph.has_vertex(u)
                or not graph.has_vertex(v)
                or graph.has_edge(u, v)
                or key in seen
            ):
                return False
            seen.add(key)
        return True
    if kind == "delete":
        # Applicable whenever the endpoints exist: a present edge is
        # deleted, an absent one exercises the clean-rejection path.
        _, u, v = op
        return graph.has_vertex(u) and graph.has_vertex(v)
    if kind == "mixed":
        # Sequentially valid w.r.t. the state its own prefix produces.
        state: dict = {}
        for evkind, u, v in op[1]:
            if not graph.has_vertex(u) or not graph.has_vertex(v) or u == v:
                return False
            key = (u, v) if u < v else (v, u)
            present = state[key] if key in state else graph.has_edge(u, v)
            if evkind == "insert":
                if present:
                    return False
                state[key] = True
            elif evkind == "delete":
                if not present:
                    return False
                state[key] = False
            else:
                return False
        return bool(op[1])
    if kind == "landmark":
        return graph.has_vertex(op[1]) and op[1] not in landmarks
    raise ValueError(f"unknown op {op!r}")


def run_sequence(base_graph, landmarks, ops, rng_seed: int, query_samples: int = 8):
    """Apply ``ops`` on fast + reference oracles; raise FuzzFailure on any
    divergence.  Inapplicable ops (possible after shrinking) are skipped."""
    rng = random.Random(rng_seed)
    fast = DynamicHCL.build(base_graph.copy(), landmarks=list(landmarks),
                            fast_updates=True)
    ref = DynamicHCL.build(base_graph.copy(), landmarks=list(landmarks))
    for step, op in enumerate(ops):
        if not _applicable(fast.graph, set(fast.landmarks), op):
            continue
        kind = op[0]
        if kind == "insert":
            fast.insert_edge(op[1], op[2])
            ref.insert_edge(op[1], op[2])
        elif kind == "batch":
            edges = [tuple(e) for e in op[1]]
            fast.insert_edges_batch(edges)
            ref.insert_edges_batch(edges)
        elif kind == "delete":
            if fast.graph.has_edge(op[1], op[2]):
                fast.remove_edge(op[1], op[2])
                ref.remove_edge(op[1], op[2])
            else:
                # Delete of a non-existent edge: both engines must raise a
                # clean library error, leaving graph + labelling untouched
                # (the fast route raises GraphError from the graph, the
                # reference route InvariantViolationError from DecHL).
                for oracle in (fast, ref):
                    edges_before = oracle.graph.num_edges
                    try:
                        oracle.remove_edge(op[1], op[2])
                    except ReproError:
                        pass
                    else:
                        raise FuzzFailure(
                            f"absent-edge delete did not raise at step "
                            f"{step}: {op}"
                        )
                    if oracle.graph.num_edges != edges_before:
                        raise FuzzFailure(
                            f"absent-edge delete mutated the graph at step "
                            f"{step}: {op}"
                        )
        elif kind == "mixed":
            events = [(evkind, (u, v)) for evkind, u, v in op[1]]
            fast.apply_events_batch(events, fast=True)
            ref.apply_events_batch(events, fast=False)
        elif kind == "landmark":
            fast.add_landmark(op[1])
            ref.add_landmark(op[1])
        if fast.labelling != ref.labelling:
            raise FuzzFailure(f"fast != sequential after step {step}: {op}")
        vertices = sorted(fast.graph.vertices())
        for _ in range(query_samples):
            u, v = rng.sample(vertices, 2)
            expected = bfs_distances(fast.graph, u).get(v, float("inf"))
            got = fast.query(u, v)
            if got != expected:
                raise FuzzFailure(
                    f"query({u}, {v}) = {got} != BFS {expected} after step "
                    f"{step}: {op}"
                )
    rebuilt = build_hcl(fast.graph, fast.landmarks)
    if fast.labelling != rebuilt:
        raise FuzzFailure("final labelling differs from from-scratch rebuild")


def run_service_sequence(base_graph, landmarks, ops, query_samples: int = 12):
    """Replay insert/delete ops through OracleService; verify served answers."""
    oracle = DynamicHCL.build(base_graph.copy(), landmarks=list(landmarks))
    events = []
    for op in ops:
        if op[0] == "insert":
            events.append(UpdateEvent("insert", (op[1], op[2])))
        elif op[0] == "batch":
            events.extend(UpdateEvent("insert", tuple(e)) for e in op[1])
        elif op[0] == "delete":
            # Absent-edge deletes ride along: the service must *reject*
            # them (count only) rather than degrade or desync.
            events.append(UpdateEvent("delete", (op[1], op[2])))
        elif op[0] == "mixed":
            events.extend(
                UpdateEvent(evkind, (u, v)) for evkind, u, v in op[1]
            )
    rng = random.Random(0xC0FFEE)
    with OracleService(oracle) as service:
        for event in events:
            service.submit(event)
        service.flush()
        if service.degraded is not None:
            raise FuzzFailure(f"service degraded: {service.degraded}")
        snap = service.snapshot
        vertices = sorted(oracle.graph.vertices())
        for _ in range(query_samples):
            u, v = rng.sample(vertices, 2)
            expected = bfs_distances(oracle.graph, u).get(v, float("inf"))
            got = service.query(u, v, snapshot=snap)
            if got != expected:
                raise FuzzFailure(
                    f"served query({u}, {v}) = {got} != BFS {expected}"
                )


def shrink(base_graph, landmarks, ops, rng_seed: int) -> list:
    """ddmin-style: drop chunks (halves, then smaller) while it still fails."""

    def fails(candidate) -> bool:
        try:
            run_sequence(base_graph, landmarks, candidate, rng_seed)
        except FuzzFailure:
            return True
        return False

    current = list(ops)
    chunk = max(1, len(current) // 2)
    while chunk >= 1:
        i = 0
        progressed = False
        while i < len(current):
            candidate = current[:i] + current[i + chunk :]
            if candidate and fails(candidate):
                current = candidate
                progressed = True
            else:
                i += chunk
        if not progressed:
            chunk //= 2
    return current


def fuzz_round(seed: int, ops_per_round: int, check_service: bool) -> bool:
    """One fuzz round; returns True on success, prints a repro on failure."""
    graph, rng = random_graph(seed, n_min=10, n_max=45)
    landmarks = top_degree_landmarks(graph, rng.randint(1, 6))
    ops = generate_ops(graph, rng, ops_per_round)
    try:
        run_sequence(graph, landmarks, ops, rng_seed=seed)
        if check_service:
            run_service_sequence(graph, landmarks, ops)
    except FuzzFailure as failure:
        minimal = shrink(graph, landmarks, ops, rng_seed=seed)
        print(f"FAIL seed={seed}: {failure}", file=sys.stderr)
        print(
            f"  minimal repro ({len(minimal)} of {len(ops)} ops):\n"
            f"  PYTHONPATH=src python tools/fuzz_updates.py "
            f"--seed {seed} --replay '{json.dumps(minimal)}'",
            file=sys.stderr,
        )
        return False
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--rounds", type=int, default=10,
                        help="number of independent fuzz rounds")
    parser.add_argument("--ops", type=int, default=25,
                        help="ops per round before shrinking")
    parser.add_argument("--seed", type=int, default=None,
                        help="base seed (default: time-derived)")
    parser.add_argument("--no-service", action="store_true",
                        help="skip the OracleService replay check")
    parser.add_argument("--replay", default=None, metavar="JSON",
                        help="replay a shrunk op sequence (with --seed)")
    args = parser.parse_args(argv)

    if args.replay is not None:
        if args.seed is None:
            parser.error("--replay requires --seed")
        graph, rng = random_graph(args.seed, n_min=10, n_max=45)
        landmarks = top_degree_landmarks(graph, rng.randint(1, 6))
        try:
            run_sequence(graph, landmarks, json.loads(args.replay), args.seed)
        except FuzzFailure as failure:
            print(f"reproduced: {failure}", file=sys.stderr)
            return 1
        print("replay passed (failure no longer reproduces)")
        return 0

    base_seed = args.seed if args.seed is not None else int(time.time())
    print(f"fuzzing {args.rounds} rounds x {args.ops} ops, base seed {base_seed}")
    failures = 0
    for i in range(args.rounds):
        seed = base_seed + i * 1009
        if not fuzz_round(seed, args.ops, check_service=not args.no_service):
            failures += 1
        else:
            print(f"  round {i} (seed {seed}): ok")
    if failures:
        print(f"{failures}/{args.rounds} rounds FAILED", file=sys.stderr)
        return 1
    print("all rounds passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
