#!/usr/bin/env python
"""End-to-end serving smoke check (CI gate).

Boots the full stack — oracle build, ``save_oracle`` warm-start file, TCP
server, wire protocol — then:

1. drives a concurrent phase: N client threads run closed query loops
   over TCP while updates stream in through the protocol (measures qps);
2. drains the writer (``snapshot`` op), then re-checks every query pair
   against a local BFS mirror that replayed the same updates — any
   disagreement is an incorrect answer.

Exit code 0 requires **nonzero qps and zero incorrect answers**.

Usage:  PYTHONPATH=src python tools/serving_smoke.py [--seconds 3]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import threading
from collections import deque
from pathlib import Path
from time import perf_counter

from repro.core.dynamic import DynamicHCL
from repro.graph.generators import barabasi_albert
from repro.serving.client import ServingClient
from repro.serving.server import OracleServer
from repro.utils.rng import ensure_rng
from repro.utils.serialization import save_oracle
from repro.workloads.streams import mixed_stream

INF = float("inf")


def bfs_distance(adj: dict[int, set[int]], u: int, v: int) -> float:
    if u == v:
        return 0
    dist = {u: 0}
    queue = deque([u])
    while queue:
        x = queue.popleft()
        for w in adj[x]:
            if w not in dist:
                if w == v:
                    return dist[x] + 1
                dist[w] = dist[x] + 1
                queue.append(w)
    return INF


class QueryLoop(threading.Thread):
    def __init__(self, host, port, vertices, seed, deadline):
        super().__init__(daemon=True)
        self.host, self.port = host, port
        self.vertices = vertices
        self.rng = ensure_rng(seed)
        self.deadline = deadline
        self.count = 0

    def run(self) -> None:
        with ServingClient(self.host, self.port) as client:
            choice = self.rng.choice
            while perf_counter() < self.deadline:
                client.query(choice(self.vertices), choice(self.vertices))
                self.count += 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seconds", type=float, default=3.0)
    parser.add_argument("--clients", type=int, default=3)
    parser.add_argument("--vertices", type=int, default=400)
    parser.add_argument("--updates", type=int, default=60)
    parser.add_argument("--checks", type=int, default=150)
    parser.add_argument("--seed", type=int, default=2021)
    args = parser.parse_args(argv)

    graph = barabasi_albert(args.vertices, attach=3, rng=args.seed)
    events = mixed_stream(graph, args.updates, rng=args.seed)
    oracle = DynamicHCL.build(graph, num_landmarks=10)
    vertices = sorted(graph.vertices())

    with tempfile.TemporaryDirectory() as tmp:
        oracle_file = Path(tmp) / "oracle.json.gz"
        save_oracle(oracle, oracle_file)
        server = OracleServer.from_file(oracle_file, port=0)
        host, port = server.start_in_thread()
        print(f"serving warm-started oracle on {host}:{port} "
              f"(|V|={len(vertices)}, |E|={graph.num_edges})")
        try:
            deadline = perf_counter() + args.seconds
            loops = [
                QueryLoop(host, port, vertices, args.seed + i, deadline)
                for i in range(args.clients)
            ]
            start = perf_counter()
            for loop in loops:
                loop.start()

            # Stream the updates through the protocol while readers run,
            # mirroring them locally for the later correctness pass.
            mirror = {v: set(ns) for v, ns in graph.adjacency().items()}
            with ServingClient(host, port) as feeder:
                for event in events:
                    u, v = event.edge
                    feeder.update(event.kind, u, v)
                    if event.is_insert:
                        mirror[u].add(v)
                        mirror[v].add(u)
                    else:
                        mirror[u].discard(v)
                        mirror[v].discard(u)
                for loop in loops:
                    loop.join()
                elapsed = perf_counter() - start
                queries = sum(loop.count for loop in loops)
                qps = queries / elapsed

                # Drain + verify against the BFS mirror on the final graph.
                final = feeder.snapshot()
                stats = feeder.stats()
                rng = ensure_rng(args.seed * 7)
                incorrect = 0
                for _ in range(args.checks):
                    u, v = rng.choice(vertices), rng.choice(vertices)
                    if feeder.query(u, v) != bfs_distance(mirror, u, v):
                        incorrect += 1
        finally:
            server.stop_thread()

    print(f"concurrent phase: {queries} queries in {elapsed:.2f}s -> "
          f"{qps:.0f} qps across {args.clients} clients")
    print(f"writer: {stats['events_applied']} applied, "
          f"{stats['events_rejected']} rejected, epoch {final['epoch']}")
    print(f"verification: {args.checks} BFS cross-checks, "
          f"{incorrect} incorrect")

    if queries == 0 or qps <= 0:
        print("FAIL: zero query throughput", file=sys.stderr)
        return 1
    if incorrect:
        print(f"FAIL: {incorrect} incorrect answers", file=sys.stderr)
        return 1
    if stats["events_applied"] == 0:
        print("FAIL: writer applied no updates", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
