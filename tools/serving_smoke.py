#!/usr/bin/env python
"""End-to-end serving smoke check (CI gate).

Boots the full stack — oracle build, ``save_oracle`` warm-start file, TCP
server, wire protocol — then:

1. drives a concurrent phase: N client threads run closed query loops
   over TCP while updates stream in through the protocol (measures qps);
2. drains the writer (``snapshot`` op), then re-checks every query pair
   against a local BFS mirror that replayed the same updates — any
   disagreement is an incorrect answer;
3. exercises the observability layer: one traced request must come back
   from the ``spans`` op, and the ``--metrics-port`` HTTP endpoint must
   serve a Prometheus exposition containing the serving histograms
   (``--span-log FILE`` additionally mirrors spans to an NDJSON file the
   CI job uploads as an artifact).

Exit code 0 requires **nonzero qps, zero incorrect answers, and a live
metrics exposition**.

Usage:  PYTHONPATH=src python tools/serving_smoke.py [--seconds 3]
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import urllib.request
from pathlib import Path
from time import perf_counter

from smoke_common import QueryLoop, bfs_distance

from repro.core.dynamic import DynamicHCL
from repro.graph.generators import barabasi_albert
from repro.obs.profile import dump_if_enabled
from repro.obs.trace import new_trace_id
from repro.serving.client import ServingClient
from repro.serving.server import OracleServer
from repro.utils.rng import ensure_rng
from repro.utils.serialization import save_oracle
from repro.workloads.streams import mixed_stream

#: Metric families the exposition must contain for the scrape to count.
_REQUIRED_METRICS = (
    "repro_query_latency_seconds_bucket",
    "repro_update_latency_seconds_bucket",
    "repro_requests_total",
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seconds", type=float, default=3.0)
    parser.add_argument("--clients", type=int, default=3)
    parser.add_argument("--vertices", type=int, default=400)
    parser.add_argument("--updates", type=int, default=60)
    parser.add_argument("--checks", type=int, default=150)
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--span-log", default=None, metavar="FILE",
                        help="mirror spans to this NDJSON file")
    args = parser.parse_args(argv)
    if args.span_log:
        # Must land in the environment before the first span is recorded:
        # the process-wide recorder reads it at first use.
        os.environ["REPRO_SPAN_LOG"] = str(args.span_log)

    graph = barabasi_albert(args.vertices, attach=3, rng=args.seed)
    events = mixed_stream(graph, args.updates, rng=args.seed)
    oracle = DynamicHCL.build(graph, num_landmarks=10)
    vertices = sorted(graph.vertices())

    with tempfile.TemporaryDirectory() as tmp:
        oracle_file = Path(tmp) / "oracle.json.gz"
        save_oracle(oracle, oracle_file)
        server = OracleServer.from_file(oracle_file, port=0, metrics_port=0)
        host, port = server.start_in_thread()
        print(f"serving warm-started oracle on {host}:{port} "
              f"(|V|={len(vertices)}, |E|={graph.num_edges})")
        try:
            deadline = perf_counter() + args.seconds
            loops = [
                QueryLoop(host, port, vertices, args.seed + i, deadline)
                for i in range(args.clients)
            ]
            start = perf_counter()
            for loop in loops:
                loop.start()

            # Stream the updates through the protocol while readers run,
            # mirroring them locally for the later correctness pass.
            mirror = {v: set(ns) for v, ns in graph.adjacency().items()}
            with ServingClient(host, port) as feeder:
                for event in events:
                    u, v = event.edge
                    feeder.update(event.kind, u, v)
                    if event.is_insert:
                        mirror[u].add(v)
                        mirror[v].add(u)
                    else:
                        mirror[u].discard(v)
                        mirror[v].discard(u)
                for loop in loops:
                    loop.join()
                elapsed = perf_counter() - start
                queries = sum(loop.count for loop in loops)
                qps = queries / elapsed

                # Drain + verify against the BFS mirror on the final graph:
                # all checks go out as one query_many frame, then each
                # answer is BFS-checked locally.
                final = feeder.snapshot()
                stats = feeder.stats()
                rng = ensure_rng(args.seed * 7)
                pairs = [
                    (rng.choice(vertices), rng.choice(vertices))
                    for _ in range(args.checks)
                ]
                answers = feeder.query_many(pairs)
                incorrect = sum(
                    1
                    for (u, v), got in zip(pairs, answers)
                    if got != bfs_distance(mirror, u, v)
                )

                # Observability: trace one request end-to-end, then
                # scrape the Prometheus endpoint over HTTP.
                trace = new_trace_id()
                feeder.query(*pairs[0], trace=trace)
                trace_spans = feeder.spans(of=trace)
            mhost, mport = server.metrics_address
            with urllib.request.urlopen(
                f"http://{mhost}:{mport}/", timeout=10
            ) as response:
                exposition = response.read().decode("utf-8")
        finally:
            server.stop_thread()

    print(f"concurrent phase: {queries} queries in {elapsed:.2f}s -> "
          f"{qps:.0f} qps across {args.clients} clients")
    print(f"writer: {stats['events_applied']} applied, "
          f"{stats['events_rejected']} rejected, epoch {final['epoch']}")
    print(f"verification: {args.checks} BFS cross-checks, "
          f"{incorrect} incorrect")
    print(f"observability: {len(trace_spans)} span(s) for trace {trace}, "
          f"{len(exposition)} bytes of Prometheus exposition")

    if queries == 0 or qps <= 0:
        print("FAIL: zero query throughput", file=sys.stderr)
        return 1
    if incorrect:
        print(f"FAIL: {incorrect} incorrect answers", file=sys.stderr)
        return 1
    if stats["events_applied"] == 0:
        print("FAIL: writer applied no updates", file=sys.stderr)
        return 1
    if not trace_spans:
        print("FAIL: traced request produced no spans", file=sys.stderr)
        return 1
    missing = [m for m in _REQUIRED_METRICS if m not in exposition]
    if missing:
        print(f"FAIL: metrics exposition lacks {missing}", file=sys.stderr)
        return 1
    if args.span_log and not Path(args.span_log).stat().st_size:
        print("FAIL: span log is empty", file=sys.stderr)
        return 1
    # Under REPRO_PROFILE=1 the folded stacks land in REPRO_PROFILE_OUT
    # (CI uploads them as an artifact); a no-op otherwise.
    dump_if_enabled()
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
