#!/usr/bin/env python
"""CI perf-regression gate: diff fresh bench JSON against a baseline.

Usage::

    PYTHONPATH=src python tools/bench_compare.py BASELINE.json FRESH.json \
        [--threshold 0.20] [--host-cpus N] [--verbose]

Exit code 1 when any matched metric regressed past the threshold or a
correctness invariant broke (``identical`` flipped, ``incorrect`` became
non-zero); 0 otherwise.  Scale-mismatched rows (smoke vs full profiles)
and rows recorded on a different host CPU count are reported as skipped
— see :mod:`repro.bench.compare` for the exact rules.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.compare import (
    compare_bench,
    has_failures,
    load_bench,
    render_report,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when a fresh bench run regressed vs its baseline."
    )
    parser.add_argument("baseline", help="committed BENCH_*.json baseline")
    parser.add_argument("fresh", help="fresh `repro.bench --json` output")
    parser.add_argument(
        "--threshold", type=float, default=0.20, metavar="F",
        help="relative regression tolerance (default 0.20 = 20%%)",
    )
    parser.add_argument(
        "--host-cpus", type=int, default=None, metavar="N",
        help="CPU count of this host for host_cpus-stamped rows "
             "(default: os.cpu_count())",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="also print per-metric ok lines",
    )
    args = parser.parse_args(argv)
    findings = compare_bench(
        load_bench(args.baseline),
        load_bench(args.fresh),
        threshold=args.threshold,
        host_cpus=args.host_cpus,
    )
    print(f"baseline: {args.baseline}")
    print(f"fresh:    {args.fresh}")
    print(render_report(findings, verbose=args.verbose))
    if has_failures(findings):
        print("FAIL: performance gate", file=sys.stderr)
        return 1
    print("OK: no regressions past the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
