#!/usr/bin/env python
"""CI entry point for reprolint (equivalent to ``repro lint``).

Usable from a checkout without installing the package:

    python tools/reprolint.py --format json > reprolint.json
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.lint.cli import main  # noqa: E402

if __name__ == "__main__":
    # Default the root to the repo the script lives in, so CI can call
    # it from any working directory.
    argv = sys.argv[1:]
    if not any(a == "--root" or a.startswith("--root=") for a in argv):
        argv = ["--root", str(REPO_ROOT), *argv]
    raise SystemExit(main(argv))
