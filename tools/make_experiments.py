"""Generate EXPERIMENTS.md from a completed benchmark run.

Parses the "paper-style summary" section that ``benchmarks/conftest.py``
appends to ``pytest benchmarks/ --benchmark-only`` output, and renders the
per-table/figure measured-vs-paper comparison.

Usage:  python tools/make_experiments.py bench_output.txt > EXPERIMENTS.md
"""

from __future__ import annotations

import sys
from collections import defaultdict

from repro.bench.experiments.table1 import PAPER_TABLE1
from repro.bench.report import format_table
from repro.workloads.datasets import DATASETS


def parse_summary(path: str) -> list[dict]:
    rows = []
    in_summary = False
    for line in open(path, encoding="utf-8"):
        if "paper-style summary" in line:
            in_summary = True
            continue
        if in_summary:
            line = line.strip()
            if not line or not ("=" in line and "  " in line):
                if line.startswith(("-", "=")):
                    break
                continue
            row = {}
            for part in line.split("  "):
                part = part.strip()
                if "=" in part:
                    k, _, v = part.partition("=")
                    row[k] = v
            rows.append(row)
    return rows


def pick(rows, **filters):
    out = []
    for r in rows:
        if all(r.get(k) == v for k, v in filters.items()):
            out.append(r)
    return out


def render(rows: list[dict], profile: str = "default") -> str:
    sections = []
    sections.append(HEADER_TEMPLATE.format(
        profile=profile,
        workloads=_PROFILE_WORKLOADS.get(profile, _PROFILE_WORKLOADS["default"]),
    ))

    # ---------------- Table 1 ----------------
    t1 = []
    for name in DATASETS:
        for method in ("IncHL+", "IncFD", "IncPLL"):
            upd = pick(rows, table="1-update", dataset=name, method=method)
            qry = pick(rows, table="1-query", dataset=name, method=method)
            paper = PAPER_TABLE1[name].get(method)
            t1.append({
                "Dataset": name,
                "Method": method,
                "Update (ms)": upd[0]["update_ms"] if upd else "-",
                "Query (ms)": qry[0]["query_ms"] if qry else "-",
                "Size": qry[0]["size"] if qry else (upd[0]["size"] if upd else "-"),
                "Paper upd": paper[0] if paper else "-",
                "Paper qry": paper[1] if paper else "-",
                "Paper size": paper[2] if paper else "-",
            })
    sections.append("## Table 1 — update time, query time, labelling size\n")
    sections.append("```\n" + format_table(
        ["Dataset", "Method", "Update (ms)", "Query (ms)", "Size",
         "Paper upd", "Paper qry", "Paper size"], t1) + "\n```\n")
    sections.append(TABLE1_NOTES)

    # ---------------- Table 2 ----------------
    t2 = []
    for name, spec in DATASETS.items():
        r = pick(rows, table="2", dataset=name)
        if not r:
            continue
        r = r[0]
        t2.append({
            "Dataset": name, "|V|": r["V"], "|E|": r["E"],
            "avg deg": r["avg_deg"], "avg dist": r["avg_dist"],
            "Paper |V|": spec.paper_vertices, "Paper |E|": spec.paper_edges,
            "Paper deg": r["paper_deg"], "Paper dist": r["paper_dist"],
        })
    sections.append("## Table 2 — summary of datasets (stand-ins)\n")
    sections.append("```\n" + format_table(
        ["Dataset", "|V|", "|E|", "avg deg", "avg dist",
         "Paper |V|", "Paper |E|", "Paper deg", "Paper dist"], t2) + "\n```\n")
    sections.append(TABLE2_NOTES)

    # ---------------- Figure 1 ----------------
    f1 = [
        {"Dataset": r["dataset"], "updates": r["updates"],
         "max %": r["max_pct"], "median %": r["median_pct"],
         "min %": r["min_pct"]}
        for r in pick(rows, figure="1")
    ]
    sections.append("## Figure 1 — affected vertices per single change\n")
    sections.append("```\n" + format_table(
        ["Dataset", "updates", "max %", "median %", "min %"], f1) + "\n```\n")
    sections.append(FIGURE1_NOTES)

    # ---------------- Figure 3 ----------------
    f3rows = pick(rows, figure="3")
    by_key = defaultdict(dict)
    for r in f3rows:
        by_key[(r["dataset"], int(r["R"]))][r["method"]] = float(r["update_ms"])
    f3 = []
    for (dataset, R), methods in sorted(by_key.items()):
        hl = methods.get("IncHL+")
        fd = methods.get("IncFD")
        f3.append({
            "Dataset": dataset, "|R|": R,
            "IncHL+ (ms)": hl, "IncFD (ms)": fd,
            "IncFD/IncHL+": round(fd / hl, 2) if hl and fd else "-",
        })
    sections.append("## Figure 3 — update time under 10–50 landmarks\n")
    sections.append("```\n" + format_table(
        ["Dataset", "|R|", "IncHL+ (ms)", "IncFD (ms)", "IncFD/IncHL+"], f3)
        + "\n```\n")
    sections.append(FIGURE3_NOTES)

    # ---------------- Figure 4 ----------------
    f4 = []
    for name in DATASETS:
        maintain = pick(rows, figure="4-maintain", dataset=name)
        rebuild = pick(rows, figure="4-rebuild", dataset=name)
        if not maintain or not rebuild:
            continue
        f4.append({
            "Dataset": name,
            "updates": maintain[0]["updates"],
            "cumulative (s)": maintain[0]["cumulative_s"],
            "rebuild (s)": rebuild[0]["rebuild_s"],
            "updates/rebuild": rebuild[0]["updates_per_rebuild"],
        })
    sections.append("## Figure 4 — cumulative update time vs reconstruction\n")
    sections.append("```\n" + format_table(
        ["Dataset", "updates", "cumulative (s)", "rebuild (s)",
         "updates/rebuild"], f4) + "\n```\n")
    sections.append(FIGURE4_NOTES)

    # ---------------- Ablations ----------------
    a1 = [
        {"Dataset": r["dataset"], "strategy": r["strategy"],
         "entries": r["label_entries"], "update (ms)": r["update_ms"]}
        for r in pick(rows, ablation="A1")
    ]
    a2 = [
        {"Dataset": r["dataset"], "update (ms)": r["update_ms"],
         "rebuild (ms)": r["rebuild_ms"], "speedup": r["speedup"]}
        for r in pick(rows, ablation="A2")
    ]
    a3 = [
        {"Dataset": r["dataset"], "workload": r["workload"],
         "update (ms)": r["update_ms"], "mean affected": r["mean_affected"],
         "max affected": r["max_affected"]}
        for r in pick(rows, ablation="A3")
    ]
    sections.append("## Ablations (reproduction extras)\n")
    sections.append("### A1 — landmark selection strategy\n```\n" + format_table(
        ["Dataset", "strategy", "entries", "update (ms)"], a1) + "\n```\n")
    sections.append("### A2 — IncHL+ update vs from-scratch rebuild\n```\n"
                    + format_table(
        ["Dataset", "update (ms)", "rebuild (ms)", "speedup"], a2) + "\n```\n")
    sections.append("### A3 — random-pair vs replayed-real-edge workloads\n```\n"
                    + format_table(
        ["Dataset", "workload", "update (ms)", "mean affected",
         "max affected"], a3) + "\n```\n")
    sections.append(ABLATION_NOTES)

    # ---------------- Extension ablations (A4–A7) ----------------
    a4_by_dataset = defaultdict(dict)
    for r in pick(rows, ablation="A4"):
        a4_by_dataset[r["dataset"]][r["mode"]] = r
    a4 = []
    for dataset, modes in sorted(a4_by_dataset.items()):
        seq = float(modes["sequential"]["mean_s"]) if "sequential" in modes else None
        bat = float(modes["batch"]["mean_s"]) if "batch" in modes else None
        a4.append({
            "Dataset": dataset,
            "batch size": next(iter(modes.values()))["batch_size"],
            "sequential (s)": seq,
            "batch (s)": bat,
            "speedup": round(seq / bat, 2) if seq and bat else "-",
        })
    a5_by_dataset = defaultdict(dict)
    for r in pick(rows, ablation="A5"):
        a5_by_dataset[r["dataset"]][r["strategy"]] = r
    a5 = []
    for dataset, strategies in sorted(a5_by_dataset.items()):
        part = float(strategies["partial"]["mean_s"]) if "partial" in strategies else None
        reb = float(strategies["rebuild"]["mean_s"]) if "rebuild" in strategies else None
        a5.append({
            "Dataset": dataset,
            "deletions": next(iter(strategies.values()))["deletions"],
            "DecHL partial (s)": part,
            "landmark rebuild (s)": reb,
            "speedup": round(reb / part, 2) if part and reb else "-",
        })
    a6_by_dataset = defaultdict(dict)
    for r in pick(rows, ablation="A6"):
        a6_by_dataset[r["dataset"]][r["builder"]] = r
    a6 = []
    for dataset, builders in sorted(a6_by_dataset.items()):
        py = float(builders["python"]["mean_s"]) if "python" in builders else None
        csr = float(builders["csr"]["mean_s"]) if "csr" in builders else None
        a6.append({
            "Dataset": dataset,
            "python (ms)": round(py * 1000, 2) if py else "-",
            "csr (ms)": round(csr * 1000, 2) if csr else "-",
            "speedup": round(py / csr, 2) if py and csr else "-",
        })
    a7 = [
        {"Dataset": r["dataset"], "events": r["events"],
         "inserts": r["inserts"], "deletes": r["deletes"],
         "mean event (ms)": r["mean_event_ms"]}
        for r in pick(rows, ablation="A7")
    ]
    if a4 or a5 or a6 or a7:
        sections.append("## Extension ablations (features beyond the paper)\n")
    if a4:
        sections.append("### A4 — batch vs sequential insertion\n```\n"
                        + format_table(
            ["Dataset", "batch size", "sequential (s)", "batch (s)",
             "speedup"], a4) + "\n```\n")
    if a5:
        sections.append("### A5 — decremental strategies\n```\n" + format_table(
            ["Dataset", "deletions", "DecHL partial (s)",
             "landmark rebuild (s)", "speedup"], a5) + "\n```\n")
    if a6:
        sections.append("### A6 — construction fast path (numpy CSR)\n```\n"
                        + format_table(
            ["Dataset", "python (ms)", "csr (ms)", "speedup"], a6) + "\n```\n")
    if a7:
        sections.append("### A7 — fully dynamic mixed stream\n```\n"
                        + format_table(
            ["Dataset", "events", "inserts", "deletes", "mean event (ms)"],
            a7) + "\n```\n")
    if a4 or a5 or a6 or a7:
        sections.append(EXTENSION_NOTES)
    sections.append(FOOTER)
    return "\n".join(sections)


_PROFILE_WORKLOADS = {
    "smoke": "10 edge insertions with `EI ∩ E = ∅`, 60 query pairs, "
             "40 cumulative updates in batches of 10",
    "default": "120 edge insertions with `EI ∩ E = ∅`, 1,500 query pairs, "
               "2,000 cumulative updates in batches of 100",
    "full": "1,000 edge insertions with `EI ∩ E = ∅`, 10,000 query pairs, "
            "10,000 cumulative updates in batches of 500 (the paper's counts)",
}

HEADER_TEMPLATE = """# EXPERIMENTS — measured vs paper, for every table and figure

Produced from `REPRO_BENCH_PROFILE={profile} pytest benchmarks/
--benchmark-only` (single thread, pure CPython) on the synthetic dataset
stand-ins of DESIGN.md §3.  Workloads are the paper's protocols scaled per
profile — here, per dataset: {workloads}.  Larger profiles
(`REPRO_BENCH_PROFILE=default` / `full`) rerun everything at 10x / 300x
these workloads and 10x / 30x the graph sizes; the numbers below use the
profile that fits a single-session wall-clock budget.  **Absolute numbers
are not comparable to the paper** (CPython vs C++ -O3, thousand-fold
smaller graphs); the reproduction targets the paper's *shapes*: method
orderings, size ratios, trends across datasets and landmark counts, and
crossovers.  Shape verdicts below.
"""

TABLE1_NOTES = """
**Shape checks vs the paper's Table 1.**

* *Update time*: IncHL+ < IncFD on every dataset (paper: same), with the
  gap widening on the high-average-distance web stand-ins (paper: Indochina
  29x, UK 33x).  IncPLL updates are the slowest where it can be built at
  all, and it cannot be built on the same 7 datasets the paper reports "-"
  for (mirrored by the construction-budget gate).
* *Query time*: IncHL+ and IncFD are comparable (both = label bound +
  bounded sparsified search); IncPLL queries are pure label merges and the
  fastest — exactly the paper's observation on e.g. Indochina.
* *Labelling size*: IncHL+ < IncFD < IncPLL throughout, the paper's
  ordering; IncHL+/IncFD sizes stay stable under the update stream while
  IncPLL's grows (it never removes entries).
"""

TABLE2_NOTES = """
**Shape checks vs the paper's Table 2.**  The stand-ins preserve the
relative size ordering (skitter smallest -> clueweb09 largest), the
relative density ordering (hollywood densest, clueweb09 sparsest), and the
avg-distance regimes (social ~2-4, web ~7-11 — the paper's web graphs are
its high-distance outliers at 6.9-7.7).  Absolute |V|/|E| are scaled down
~400-70,000x per DESIGN.md §3.
"""

FIGURE1_NOTES = """
**Shape check vs the paper's Figure 1.**  Per-change affected-vertex
percentages span several orders of magnitude within each dataset (paper:
1e-5 % to 10 %), sorted-descending curves drop steeply — a small head of
expensive changes and a long cheap tail — and the web stand-ins sit above
the social ones, which is the paper's motivation for incremental (rather
than from-scratch) maintenance.
"""

FIGURE3_NOTES = """
**Shape check vs the paper's Figure 3.**  IncHL+ beats IncFD at every
landmark count on (almost) every dataset, and the gap is roughly stable as
|R| grows from 10 to 50 — the paper's observation that the repair
strategy's advantage is not an artefact of one landmark budget.
"""

FIGURE4_NOTES = """
**Shape check vs the paper's Figure 4.**  Maintaining the labelling through
the whole update schedule costs far less than even one from-scratch
reconstruction on most datasets (the "updates/rebuild" column says how many
updates one rebuild would amortise); the advantage narrows on the web
stand-ins (indochina/it/uk/clueweb09), matching the paper's remark that
IncHL+ performs relatively worse on large-average-distance graphs.
"""

ABLATION_NOTES = """
**Ablation readings.**  A1: degree selection (the paper's choice) gives the
smallest labellings and fastest updates; random landmarks inflate both —
empirical justification for the paper's setup.  A2: the per-update speedup
over rebuilding is the quantitative version of Figure 4.  A3: on the
high-diameter web stand-ins, random-pair insertions (the paper's EI
protocol) connect far-apart vertices and affect one to two orders of
magnitude more vertices than replaying held-out *real* edges — i.e. the
paper's update workload is adversarial there, making its sub-second update
times a conservative claim; on small-diameter social graphs the two
workloads are comparable (every pair is close anyway).
"""

EXTENSION_NOTES = """
**Extension readings.**  A4: batch insertion shares one find/repair sweep
per landmark across the burst; on small bursts and small stand-ins the
bucket-queue bookkeeping can outweigh the sharing (speedup < 1), and the
win grows with burst size and affected-region overlap.  A5: the
fine-grained DecHL repair confines work to the affected region and beats
the per-landmark rebuild strategy on every dataset (~2x at the smallest
scale, growing with graph size since the rebuild pays O(n+m) per relevant
landmark while DecHL pays only for the affected region; both strategies
are verified to produce identical labellings before timing).  A6: the
vectorized builder's advantage grows with scale — the scale sweep in
`python -m repro.bench extensions` shows the crossover near ~1k vertices
(≈2.5x at 20k, ≈4x at 60k vertices).  A7: the fully dynamic facade
sustains mixed insert/delete streams with per-event costs of the same
magnitude as insert-only maintenance.
"""

FOOTER = """## Reproducing these numbers

```bash
pytest benchmarks/ --benchmark-only          # everything above
python -m repro.bench all --out results.txt  # paper-style rendered tables
python tools/make_experiments.py bench_output.txt > EXPERIMENTS.md
```

Figure 2 (the paper's worked example) is reproduced as an exact test and a
runnable walkthrough: `tests/core/test_inchl.py::TestPaperFigure2` and
`python -m repro.bench figure2` build a 16-vertex graph reconstructed from
Examples 4.2/4.5/4.7 and check the paper's affected sets
(Λ₀ = {5,8,9,10,13,14}, Λ₄ = ∅, Λ₁₀ = {0,1,2}) and repair actions, line by
line.
"""


if __name__ == "__main__":
    import os

    path = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    profile = (
        sys.argv[2]
        if len(sys.argv) > 2
        else os.environ.get("REPRO_BENCH_PROFILE", "default")
    )
    rows = parse_summary(path)
    if not rows:
        raise SystemExit(f"no paper-style summary found in {path}")
    sys.stdout.write(render(rows, profile))
