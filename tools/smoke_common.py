"""Shared pieces of the serving/cluster smoke checks.

Both ``tools/serving_smoke.py`` and ``tools/cluster_smoke.py`` drive the
same wire protocol with the same closed-loop readers and verify answers
against the same reference BFS — one copy lives here (the tools run as
scripts, so their own directory is importable).
"""

from __future__ import annotations

import threading
from collections import deque
from time import perf_counter

from repro.serving.client import ServingClient
from repro.utils.rng import ensure_rng

INF = float("inf")


def bfs_distance(adj: dict[int, set[int]], u: int, v: int) -> float:
    """Reference distance on a plain adjacency-set mirror."""
    if u == v:
        return 0
    dist = {u: 0}
    queue = deque([u])
    while queue:
        x = queue.popleft()
        for w in adj[x]:
            if w not in dist:
                if w == v:
                    return dist[x] + 1
                dist[w] = dist[x] + 1
                queue.append(w)
    return INF


class QueryLoop(threading.Thread):
    """Closed-loop reader batching pairs through one `query_many` frame
    per round-trip (the serving hot path) instead of N `query` calls."""

    def __init__(self, host, port, vertices, seed, deadline, batch=16):
        super().__init__(daemon=True)
        self.host, self.port = host, port
        self.vertices = vertices
        self.rng = ensure_rng(seed)
        self.deadline = deadline
        self.batch = batch
        self.count = 0

    def run(self) -> None:
        with ServingClient(self.host, self.port) as client:
            choice = self.rng.choice
            while perf_counter() < self.deadline:
                pairs = [
                    (choice(self.vertices), choice(self.vertices))
                    for _ in range(self.batch)
                ]
                client.query_many(pairs)
                self.count += len(pairs)
