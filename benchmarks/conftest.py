"""Shared fixtures for the pytest-benchmark suite.

Each ``bench_*.py`` module regenerates one table/figure of the paper by
benchmarking the exact operation the paper times (update streams, query
streams) per dataset and method.  Workload sizes follow the profile from
``REPRO_BENCH_PROFILE`` (default: ``default``); a terminal-summary hook
assembles the per-benchmark ``extra_info`` into paper-style rows so the
bench output reads like the paper's tables.

Run:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.baselines.fd import FullDynamicOracle
from repro.baselines.incpll import IncPLL
from repro.bench.profile import bench_profile
from repro.core.dynamic import DynamicHCL
from repro.exceptions import ConstructionBudgetExceeded
from repro.workloads.datasets import DATASETS, build_dataset
from repro.workloads.queries import sample_query_pairs
from repro.workloads.updates import sample_edge_insertions

SEED = 2021


@pytest.fixture(scope="session")
def profile():
    return bench_profile()


class DatasetCache:
    """Session-wide cache of built graphs and workload streams."""

    def __init__(self, profile) -> None:
        self.profile = profile
        self._graphs: dict[str, tuple] = {}

    def dataset(self, name: str):
        if name not in self._graphs:
            spec, graph = build_dataset(name, profile=self.profile.name, seed=SEED)
            insertions = sample_edge_insertions(
                graph, self.profile.num_updates, rng=hash((SEED, name, "u")) & 0xFFFF
            )
            queries = sample_query_pairs(
                graph, self.profile.num_queries, rng=hash((SEED, name, "q")) & 0xFFFF
            )
            self._graphs[name] = (spec, graph, insertions, queries)
        return self._graphs[name]

    def build_oracle(self, name: str, method: str):
        """Fresh oracle of ``method`` on a private copy of the dataset.

        Returns ``None`` when the method cannot be built on this dataset
        (the paper's '-' cells for IncPLL).
        """
        spec, graph, _, _ = self.dataset(name)
        working = graph.copy()
        if method == "IncHL+":
            return DynamicHCL.build(working, num_landmarks=spec.num_landmarks)
        if method == "IncFD":
            return FullDynamicOracle(working, num_landmarks=spec.num_landmarks)
        if method == "IncPLL":
            if not spec.pll_feasible:
                return None
            try:
                return IncPLL(working, time_budget_s=self.profile.pll_budget_s)
            except ConstructionBudgetExceeded:
                return None
        raise ValueError(f"unknown method {method!r}")


@pytest.fixture(scope="session")
def cache(profile):
    return DatasetCache(profile)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Assemble benchmark extra_info into paper-style summary rows."""
    session = getattr(config, "_benchmarksession", None)
    if session is None or not session.benchmarks:
        return
    rows = []
    for bench in session.benchmarks:
        info = dict(bench.extra_info or {})
        if not info.get("paper_row"):
            continue
        info["benchmark"] = bench.name
        stats = bench.stats
        stats = getattr(stats, "stats", stats)  # BenchmarkStats vs Stats
        info["mean_s"] = round(stats.mean, 6)
        rows.append(info)
    if not rows:
        return
    tr = terminalreporter
    tr.section("paper-style summary (from benchmark extra_info)")
    for info in sorted(rows, key=lambda r: r["benchmark"]):
        parts = [f"{k}={v}" for k, v in info.items() if k != "paper_row"]
        tr.write_line("  " + "  ".join(parts))
