"""Vectorized vs pure-Python update path — the BENCH record of the speedup.

Benchmarks one IncHL+ insertion replay per mode on the same dataset and
stream (the per-update granularity of the paper's Figure 4):

* ``python``     — reference dict kernels, one edge at a time;
* ``fast``       — vectorized CSR engine, one edge at a time;
* ``fast-batch`` — vectorized CSR engine, one combined sweep per chunk.

Each round replays the whole stream on a fresh graph/labelling copy
built in the round's *untimed* setup (oracle state is mutated, so rounds
cannot share one; the fast engine's one-off attach cost is part of setup
too — the ``incremental_fast`` experiment reports it as its own column).
The fast rounds re-verify byte-identity against a python-path reference
labelling before timings are accepted.

Run:  pytest benchmarks/bench_incremental_fast.py --benchmark-only
"""

import pytest

from repro.core.dynamic import DynamicHCL
from repro.landmarks.selection import top_degree_landmarks

_DATASET = "flickr-s"  # representative social stand-in


@pytest.fixture(scope="module")
def setup(cache, profile):
    spec, graph, insertions, _ = cache.dataset(_DATASET)
    landmarks = top_degree_landmarks(graph, spec.num_landmarks)
    base = DynamicHCL.build(graph.copy(), landmarks=landmarks, construction="csr")
    reference = DynamicHCL.build(
        graph.copy(), landmarks=landmarks, construction="csr"
    )
    for u, v in insertions:
        reference.insert_edge(u, v)
    return graph, landmarks, insertions, base.labelling, reference.labelling


def _extra(benchmark, mode, insertions):
    benchmark.extra_info.update({
        "paper_row": True,
        "experiment": "incremental-fast",
        "dataset": _DATASET,
        "mode": mode,
        "updates": len(insertions),
    })


def _make_setup(graph, base_labelling, fast):
    """Per-round untimed setup: fresh oracle (engine pre-attached)."""

    def _setup():
        oracle = DynamicHCL(graph.copy(), base_labelling.copy(), fast_updates=fast)
        if fast:
            oracle._resolve_fast_engine()
        return (oracle,), {}

    return _setup


def test_python_replay(benchmark, setup):
    graph, landmarks, insertions, base, expected = setup
    result = []

    def replay(oracle):
        for u, v in insertions:
            oracle.insert_edge(u, v)
        result.append(oracle)

    benchmark.pedantic(
        replay, setup=_make_setup(graph, base, fast=False),
        rounds=3, warmup_rounds=1,
    )
    assert result[-1].labelling == expected
    _extra(benchmark, "python", insertions)


def test_fast_replay(benchmark, setup):
    graph, landmarks, insertions, base, expected = setup
    result = []

    def replay(oracle):
        for u, v in insertions:
            oracle.insert_edge(u, v)
        result.append(oracle)

    benchmark.pedantic(
        replay, setup=_make_setup(graph, base, fast=True),
        rounds=3, warmup_rounds=1,
    )
    assert result[-1].labelling == expected  # byte-identity contract
    _extra(benchmark, "fast", insertions)


def test_fast_batch_replay(benchmark, setup, profile):
    graph, landmarks, insertions, base, expected = setup
    chunk = max(1, min(profile.figure4_batch, len(insertions)))
    result = []

    def replay(oracle):
        for start in range(0, len(insertions), chunk):
            oracle.insert_edges_batch(insertions[start : start + chunk])
        result.append(oracle)

    benchmark.pedantic(
        replay, setup=_make_setup(graph, base, fast=True),
        rounds=3, warmup_rounds=1,
    )
    assert result[-1].labelling == expected
    _extra(benchmark, f"fast-batch/{chunk}", insertions)
