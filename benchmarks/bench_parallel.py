"""Serial vs parallel per-landmark engine — the BENCH record of the speedup.

Benchmarks the three bulk operations the :mod:`repro.parallel` engine
accelerates, once per worker count, so the terminal summary shows the
serial-vs-parallel comparison side by side (``workers=1`` is the serial
reference; higher counts fan out across a fork process pool):

* CSR construction sweeps (:func:`repro.core.construction_fast.build_hcl_fast`);
* batch-insertion Phase B finds (:func:`repro.core.batch.apply_edge_insertions_batch`);
* coarse decremental rebuilds (:func:`repro.core.decremental.apply_edge_deletion`).

On a single-core host the parallel rows measure fork/pickle overhead — the
crossover point is part of what this bench records.  Every parallel run is
also checked against the serial labelling (the engine's equality contract)
before timings are accepted.

Run:  pytest benchmarks/bench_parallel.py --benchmark-only
"""

import pytest

from repro.core.batch import apply_edge_insertions_batch
from repro.core.construction_fast import build_hcl_fast
from repro.core.decremental import apply_edge_deletion
from repro.graph.csr import CSRGraph
from repro.landmarks.selection import top_degree_landmarks
from repro.parallel.engine import available_parallelism
from repro.workloads.updates import sample_edge_insertions

_DATASET = "flickr-s"  # representative social stand-in
_WORKER_COUNTS = (1, 2, max(4, available_parallelism()))


@pytest.fixture(scope="module")
def setup(cache, profile):
    spec, graph, _, _ = cache.dataset(_DATASET)
    landmarks = top_degree_landmarks(graph, spec.num_landmarks)
    csr = CSRGraph.from_graph(graph)
    serial = build_hcl_fast(graph, landmarks, csr)
    batch = sample_edge_insertions(graph, max(4, profile.num_updates), rng=11)
    return graph, landmarks, csr, serial, batch


def _extra(benchmark, operation, workers):
    benchmark.extra_info.update({
        "paper_row": True,
        "experiment": "parallel-engine",
        "dataset": _DATASET,
        "operation": operation,
        "workers": workers,
        "host_cpus": available_parallelism(),
    })


@pytest.mark.parametrize("workers", _WORKER_COUNTS)
def test_construction(benchmark, setup, workers):
    graph, landmarks, csr, serial, _ = setup
    built = build_hcl_fast(graph, landmarks, csr, workers=workers)
    assert built == serial  # engine contract: identical labelling
    _extra(benchmark, "construction-csr", workers)
    benchmark.pedantic(
        lambda: build_hcl_fast(graph, landmarks, csr, workers=workers),
        rounds=3, iterations=1,
    )


@pytest.mark.parametrize("workers", _WORKER_COUNTS)
def test_batch_insertion(benchmark, setup, workers):
    graph, _, _, serial, batch = setup

    def fresh():
        g = graph.copy()
        lab = serial.copy()
        for u, v in batch:
            g.add_edge(u, v)
        return (g, lab), {}

    (g, lab), _ = fresh()
    apply_edge_insertions_batch(g, lab, batch, workers=workers)
    (g_ref, lab_ref), _ = fresh()
    apply_edge_insertions_batch(g_ref, lab_ref, batch)
    assert lab == lab_ref  # engine contract: identical labelling

    _extra(benchmark, "batch-insertion", workers)
    benchmark.pedantic(
        lambda g, lab: apply_edge_insertions_batch(g, lab, batch, workers=workers),
        setup=fresh, rounds=3, iterations=1,
    )


@pytest.mark.parametrize("workers", _WORKER_COUNTS)
def test_decremental_rebuild(benchmark, setup, workers):
    graph, _, _, serial, batch = setup
    # Delete a freshly inserted edge so graph and labelling stay in sync.
    u, v = batch[0]
    after_graph = graph.copy()
    after_lab = serial.copy()
    after_graph.add_edge(u, v)
    apply_edge_insertions_batch(after_graph, after_lab, [(u, v)])

    def fresh():
        return (after_graph.copy(), after_lab.copy()), {}

    (g, lab), _ = fresh()
    apply_edge_deletion(g, lab, u, v, workers=workers)
    (g_ref, lab_ref), _ = fresh()
    apply_edge_deletion(g_ref, lab_ref, u, v)
    assert lab == lab_ref  # engine contract: identical labelling

    _extra(benchmark, "decremental-rebuild", workers)
    benchmark.pedantic(
        lambda g, lab: apply_edge_deletion(g, lab, u, v, workers=workers),
        setup=fresh, rounds=3, iterations=1,
    )
