"""Table 2 — dataset summary statistics (|V|, |E|, avg deg, avg dist).

Benchmarks the summary computation per stand-in and records the Table 2
row in ``extra_info``.  Regenerate the rendered table (with the paper's
published values side by side) via ``python -m repro.bench table2``.
"""

import pytest

from repro.graph.statistics import summarize
from repro.workloads.datasets import dataset_names


@pytest.mark.parametrize("dataset", dataset_names())
def test_summarize(benchmark, cache, dataset):
    spec, graph, _, _ = cache.dataset(dataset)
    summary = benchmark.pedantic(
        lambda: summarize(graph, num_sources=24, rng=1),
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update({
        "paper_row": True,
        "table": "2",
        "dataset": dataset,
        "V": summary.num_vertices,
        "E": summary.num_edges,
        "avg_deg": round(summary.average_degree, 2),
        "avg_dist": round(summary.average_distance, 2),
        "paper_deg": spec.paper_avg_degree,
        "paper_dist": spec.paper_avg_distance,
    })
