"""Ablations A1–A3 (docs/DESIGN.md §5) as benchmarks.

* A1: landmark selection strategy — update-stream time per strategy;
* A2: IncHL+ update vs from-scratch rebuild (speedup in extra_info);
* A3: random-pair insertions vs replayed real edges (affected sizes).

Rendered tables: ``python -m repro.bench ablations``.
"""

import pytest

from repro.core.construction import build_hcl
from repro.core.dynamic import DynamicHCL
from repro.workloads.datasets import build_dataset
from repro.workloads.updates import held_out_edges, sample_edge_insertions

SEED = 2021

_A1_DATASETS = ["flickr-s", "indochina-s"]


@pytest.mark.parametrize("strategy", ["degree", "random", "betweenness", "spread"])
@pytest.mark.parametrize("dataset", _A1_DATASETS)
def test_a1_landmark_strategy(benchmark, profile, dataset, strategy):
    spec, graph = build_dataset(dataset, profile=profile.name, seed=SEED)
    insertions = sample_edge_insertions(graph, profile.ablation_updates, rng=5)

    def replay():
        oracle = DynamicHCL.build(
            graph.copy(), num_landmarks=spec.num_landmarks,
            strategy=strategy, rng=SEED,
        )
        for u, v in insertions:
            oracle.insert_edge(u, v)
        return oracle

    oracle = benchmark.pedantic(replay, rounds=1, iterations=1)
    benchmark.extra_info.update({
        "paper_row": True,
        "ablation": "A1",
        "dataset": dataset,
        "strategy": strategy,
        "label_entries": oracle.label_entries,
        "update_ms": round(
            benchmark.stats.stats.mean * 1000 / len(insertions), 4
        ),
    })


@pytest.mark.parametrize("dataset", ["flickr-s", "indochina-s", "uk-s"])
def test_a2_update_vs_rebuild(benchmark, profile, dataset):
    spec, graph = build_dataset(dataset, profile=profile.name, seed=SEED)
    insertions = sample_edge_insertions(graph, profile.ablation_updates, rng=6)
    oracle = DynamicHCL.build(graph, num_landmarks=spec.num_landmarks)
    from repro.utils.timing import Stopwatch

    with Stopwatch() as sw:
        for u, v in insertions:
            oracle.insert_edge(u, v)
    update_ms = sw.elapsed * 1000 / len(insertions)

    benchmark.pedantic(
        lambda: build_hcl(graph, oracle.landmarks), rounds=1, iterations=1
    )
    rebuild_ms = benchmark.stats.stats.mean * 1000
    benchmark.extra_info.update({
        "paper_row": True,
        "ablation": "A2",
        "dataset": dataset,
        "update_ms": round(update_ms, 4),
        "rebuild_ms": round(rebuild_ms, 1),
        "speedup": round(rebuild_ms / update_ms, 1),
    })


@pytest.mark.parametrize("workload", ["random-pairs", "replayed-edges"])
@pytest.mark.parametrize("dataset", _A1_DATASETS)
def test_a3_workload_realism(benchmark, profile, dataset, workload):
    spec, graph = build_dataset(dataset, profile=profile.name, seed=SEED)
    if workload == "random-pairs":
        working = graph.copy()
        stream = sample_edge_insertions(working, profile.ablation_updates, rng=7)
    else:
        working = graph.copy()
        stream = held_out_edges(working, profile.ablation_updates, rng=7)

    def replay():
        oracle = DynamicHCL.build(
            working.copy(), num_landmarks=spec.num_landmarks
        )
        affected = [oracle.insert_edge(u, v).affected_union for u, v in stream]
        return affected

    affected = benchmark.pedantic(replay, rounds=1, iterations=1)
    benchmark.extra_info.update({
        "paper_row": True,
        "ablation": "A3",
        "dataset": dataset,
        "workload": workload,
        "update_ms": round(benchmark.stats.stats.mean * 1000 / len(stream), 4),
        "mean_affected": round(sum(affected) / len(affected), 1),
        "max_affected": max(affected),
    })
