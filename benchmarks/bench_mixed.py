"""Mixed insert/delete batch engine — the BENCH record of the speedup.

Benchmarks one interleaved insert/delete stream replay per mode on the
same dataset (the fully-dynamic extension of the Figure-4 replay):

* ``sequential`` — reference kernels, one event at a time (IncHL+
  insertions, DecHL deletions);
* ``fallback``   — insert runs on the vectorized engine, each deletion
  through DecHL with engine invalidation + re-attach (the
  pre-mixed-engine serving behaviour);
* ``mixed``      — the BatchHL-style mixed batch engine, one net
  find/repair sweep per landmark per chunk.

Each round replays the whole stream on a fresh graph/labelling copy
built in the round's *untimed* setup.  Every mode re-verifies
byte-identity against the sequential reference labelling before timings
are accepted.

Run:  pytest benchmarks/bench_mixed.py --benchmark-only
"""

import pytest

from repro.core.dynamic import DynamicHCL
from repro.landmarks.selection import top_degree_landmarks
from repro.workloads.streams import mixed_stream

_DATASET = "flickr-s"  # representative social stand-in
_INSERT_RATIO = 0.6


@pytest.fixture(scope="module")
def setup(cache, profile):
    spec, graph, _, _ = cache.dataset(_DATASET)
    landmarks = top_degree_landmarks(graph, spec.num_landmarks)
    events = mixed_stream(
        graph, profile.figure4_total, insert_ratio=_INSERT_RATIO, rng=2021
    )
    base = DynamicHCL.build(graph.copy(), landmarks=landmarks, construction="csr")
    reference = DynamicHCL.build(
        graph.copy(), landmarks=landmarks, construction="csr"
    )
    for event in events:
        u, v = event.edge
        if event.is_insert:
            reference.insert_edge(u, v, fast=False)
        else:
            reference.remove_edge(u, v, fast=False)
    return graph, events, base.labelling, reference.labelling


def _extra(benchmark, mode, events):
    benchmark.extra_info.update({
        "paper_row": True,
        "experiment": "mixed-batch",
        "dataset": _DATASET,
        "mode": mode,
        "events": len(events),
        "deletes": sum(1 for e in events if not e.is_insert),
    })


def _make_setup(graph, base_labelling, fast):
    def _setup():
        oracle = DynamicHCL(graph.copy(), base_labelling.copy(), fast_updates=fast)
        if fast:
            oracle._resolve_fast_engine()
        return (oracle,), {}

    return _setup


def test_sequential_replay(benchmark, setup):
    graph, events, base, expected = setup
    result = []

    def replay(oracle):
        for event in events:
            u, v = event.edge
            if event.is_insert:
                oracle.insert_edge(u, v, fast=False)
            else:
                oracle.remove_edge(u, v, fast=False)
        result.append(oracle)

    benchmark.pedantic(
        replay, setup=_make_setup(graph, base, fast=False),
        rounds=3, warmup_rounds=1,
    )
    assert result[-1].labelling == expected
    _extra(benchmark, "sequential", events)


def test_fallback_replay(benchmark, setup, profile):
    graph, events, base, expected = setup
    chunk_size = max(1, min(profile.figure4_batch, len(events)))
    result = []

    def replay(oracle):
        for start in range(0, len(events), chunk_size):
            run = []
            for event in events[start : start + chunk_size]:
                if event.is_insert:
                    run.append(event.edge)
                    continue
                if run:
                    oracle.insert_edges_batch(run, fast=True)
                    run = []
                oracle.remove_edge(*event.edge, fast=False)
            if run:
                oracle.insert_edges_batch(run, fast=True)
        result.append(oracle)

    benchmark.pedantic(
        replay, setup=_make_setup(graph, base, fast=True),
        rounds=3, warmup_rounds=1,
    )
    assert result[-1].labelling == expected
    _extra(benchmark, "fallback", events)


def test_mixed_batch_replay(benchmark, setup, profile):
    graph, events, base, expected = setup
    chunk_size = max(1, min(profile.figure4_batch, len(events)))
    result = []

    def replay(oracle):
        for start in range(0, len(events), chunk_size):
            oracle.apply_events_batch(
                events[start : start + chunk_size], fast=True
            )
        result.append(oracle)

    benchmark.pedantic(
        replay, setup=_make_setup(graph, base, fast=True),
        rounds=3, warmup_rounds=1,
    )
    assert result[-1].labelling == expected  # byte-identity contract
    _extra(benchmark, f"mixed/{chunk_size}", events)
