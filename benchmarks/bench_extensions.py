"""Ablations A4–A7 (extension features, docs/DESIGN.md §5) as benchmarks.

* A4: batch insertion (one sweep per landmark) vs sequential IncHL+;
* A5: fine-grained DecHL deletion vs per-landmark rebuild;
* A6: numpy CSR construction fast path vs the reference builder;
* A7: end-to-end mixed insert/delete stream on the fully dynamic oracle.

Rendered tables: ``python -m repro.bench extensions``.
"""

import pytest

from repro.core.batch import apply_edge_insertions_batch
from repro.core.construction import build_hcl
from repro.core.construction_fast import build_hcl_fast
from repro.core.dynamic import DynamicHCL
from repro.workloads.datasets import build_dataset
from repro.workloads.streams import mixed_stream, replay
from repro.workloads.updates import sample_edge_insertions

SEED = 2021

_DATASETS = ["flickr-s", "indochina-s"]


@pytest.mark.parametrize("dataset", _DATASETS)
@pytest.mark.parametrize("mode", ["sequential", "batch"])
def test_a4_batch_vs_sequential(benchmark, profile, dataset, mode):
    spec, graph = build_dataset(dataset, profile=profile.name, seed=SEED)
    batch = sample_edge_insertions(graph, max(4, profile.ablation_updates), rng=14)
    landmarks = DynamicHCL.build(
        graph.copy(), num_landmarks=spec.num_landmarks
    ).landmarks

    def run_sequential():
        working = graph.copy()
        labelling = build_hcl(working, landmarks)
        from repro.core.inchl import apply_edge_insertion

        for u, v in batch:
            working.add_edge(u, v)
            apply_edge_insertion(working, labelling, u, v)
        return labelling

    def run_batch():
        working = graph.copy()
        labelling = build_hcl(working, landmarks)
        for u, v in batch:
            working.add_edge(u, v)
        apply_edge_insertions_batch(working, labelling, batch)
        return labelling

    runner = run_sequential if mode == "sequential" else run_batch
    benchmark.pedantic(runner, rounds=1, iterations=1)
    benchmark.extra_info.update({
        "paper_row": True,
        "ablation": "A4",
        "dataset": dataset,
        "mode": mode,
        "batch_size": len(batch),
    })


@pytest.mark.parametrize("dataset", _DATASETS)
@pytest.mark.parametrize("strategy", ["partial", "rebuild"])
def test_a5_decremental_strategy(benchmark, profile, dataset, strategy):
    spec, graph = build_dataset(dataset, profile=profile.name, seed=SEED)
    edges = sorted(graph.edges())
    deletions = edges[:: max(1, len(edges) // max(4, profile.ablation_updates))][
        : max(4, profile.ablation_updates)
    ]

    def run_deletions():
        oracle = DynamicHCL.build(graph.copy(), num_landmarks=spec.num_landmarks)
        for u, v in deletions:
            oracle.remove_edge(u, v, strategy=strategy)
        return oracle

    benchmark.pedantic(run_deletions, rounds=1, iterations=1)
    benchmark.extra_info.update({
        "paper_row": True,
        "ablation": "A5",
        "dataset": dataset,
        "strategy": strategy,
        "deletions": len(deletions),
    })


@pytest.mark.parametrize("dataset", _DATASETS)
@pytest.mark.parametrize("builder", ["python", "csr"])
def test_a6_construction_fast_path(benchmark, profile, dataset, builder):
    spec, graph = build_dataset(dataset, profile=profile.name, seed=SEED)
    landmarks = DynamicHCL.build(
        graph.copy(), num_landmarks=spec.num_landmarks
    ).landmarks
    build = build_hcl if builder == "python" else build_hcl_fast

    labelling = benchmark(build, graph, landmarks)
    benchmark.extra_info.update({
        "paper_row": True,
        "ablation": "A6",
        "dataset": dataset,
        "builder": builder,
        "label_entries": labelling.label_entries,
    })


@pytest.mark.parametrize("dataset", _DATASETS)
def test_a7_fully_dynamic_stream(benchmark, profile, dataset):
    """Mixed insert/delete stream through the fully dynamic facade —
    the workload the paper's future-work section asks about."""
    spec, graph = build_dataset(dataset, profile=profile.name, seed=SEED)
    events = mixed_stream(
        graph, max(6, profile.ablation_updates), insert_ratio=0.7, rng=15
    )

    def run_stream():
        oracle = DynamicHCL.build(graph.copy(), num_landmarks=spec.num_landmarks)
        return replay(oracle, events)

    records = benchmark.pedantic(run_stream, rounds=1, iterations=1)
    inserts = sum(1 for r in records if r.event.is_insert)
    benchmark.extra_info.update({
        "paper_row": True,
        "ablation": "A7",
        "dataset": dataset,
        "events": len(records),
        "inserts": inserts,
        "deletes": len(records) - inserts,
        "mean_event_ms": round(
            sum(r.seconds for r in records) / len(records) * 1000, 4
        ),
    })
