"""Figure 3 — average update time under 10–50 landmarks, IncHL+ vs IncFD.

One benchmark per (dataset, |R|, method): build with that landmark count,
replay the same insertion stream, record mean per-update time.  The
IncFD/IncHL+ ratio across the sweep is the figure's bar-height gap.
Rendered series: ``python -m repro.bench figure3``.
"""

import pytest

from repro.baselines.fd import FullDynamicOracle
from repro.core.dynamic import DynamicHCL
from repro.workloads.datasets import build_dataset
from repro.workloads.updates import sample_edge_insertions

SEED = 2021


@pytest.mark.parametrize("method", ["IncHL+", "IncFD"])
@pytest.mark.parametrize("num_landmarks", [10, 20, 30, 40, 50])
@pytest.mark.parametrize(
    "dataset",
    ["skitter-s", "flickr-s", "orkut-s", "indochina-s", "twitter-s", "uk-s"],
)
def test_update_vs_landmarks(benchmark, profile, dataset, num_landmarks, method):
    if num_landmarks not in profile.figure3_landmark_counts:
        pytest.skip(f"|R|={num_landmarks} outside the {profile.name} sweep")
    if (
        profile.figure3_datasets is not None
        and dataset not in profile.figure3_datasets
    ):
        pytest.skip(f"{dataset} outside the {profile.name} sweep")
    spec, graph = build_dataset(dataset, profile=profile.name, seed=SEED)
    insertions = sample_edge_insertions(graph, profile.figure3_updates, rng=3)

    def replay():
        working = graph.copy()
        if method == "IncHL+":
            oracle = DynamicHCL.build(working, num_landmarks=num_landmarks)
        else:
            oracle = FullDynamicOracle(working, num_landmarks=num_landmarks)
        for u, v in insertions:
            oracle.insert_edge(u, v)

    benchmark.pedantic(replay, rounds=1, iterations=1)
    benchmark.extra_info.update({
        "paper_row": True,
        "figure": "3",
        "dataset": dataset,
        "R": num_landmarks,
        "method": method,
        "update_ms": round(
            benchmark.stats.stats.mean * 1000 / len(insertions), 4
        ),
    })
