"""Table 1 — update time, query time and labelling size per dataset/method.

Each benchmark measures exactly what the paper's Table 1 reports:

* ``update_stream``: the full edge-insertion stream (mean per-update time
  is the batch time divided by the stream length — recorded in
  ``extra_info['update_ms']``);
* ``query_stream``: the full query-pair stream after all updates
  (``extra_info['query_ms']``), with the post-update index size in
  ``extra_info['size']``.

IncPLL benchmarks are skipped on the 7 datasets where the paper could not
build it.  Regenerate the rendered table with ``python -m repro.bench table1``.
"""

import pytest

from repro.bench.report import format_bytes
from repro.workloads.datasets import dataset_names

METHODS = ("IncHL+", "IncFD", "IncPLL")


@pytest.mark.parametrize("dataset", dataset_names())
@pytest.mark.parametrize("method", METHODS)
def test_update_stream(benchmark, cache, dataset, method):
    spec, graph, insertions, _ = cache.dataset(dataset)
    oracle = cache.build_oracle(dataset, method)
    if oracle is None:
        pytest.skip(f"{method} infeasible on {dataset} (paper reports '-')")

    def run_updates():
        # Fresh copy per round: insertions must target non-edges.
        fresh = cache.build_oracle(dataset, method)
        for u, v in insertions:
            fresh.insert_edge(u, v)
        return fresh

    result = benchmark.pedantic(run_updates, rounds=1, iterations=1)
    benchmark.extra_info.update({
        "paper_row": True,
        "table": "1-update",
        "dataset": dataset,
        "method": method,
        "update_ms": round(
            benchmark.stats.stats.mean * 1000 / len(insertions), 4
        ),
        "size": format_bytes(result.size_bytes()),
    })


@pytest.mark.parametrize("dataset", dataset_names())
@pytest.mark.parametrize("method", METHODS)
def test_query_stream(benchmark, cache, dataset, method):
    spec, graph, insertions, queries = cache.dataset(dataset)
    oracle = cache.build_oracle(dataset, method)
    if oracle is None:
        pytest.skip(f"{method} infeasible on {dataset} (paper reports '-')")
    for u, v in insertions:  # paper: queries run after the update stream
        oracle.insert_edge(u, v)

    def run_queries():
        for u, v in queries:
            oracle.query(u, v)

    benchmark.pedantic(run_queries, rounds=1, iterations=1)
    benchmark.extra_info.update({
        "paper_row": True,
        "table": "1-query",
        "dataset": dataset,
        "method": method,
        "query_ms": round(benchmark.stats.stats.mean * 1000 / len(queries), 4),
        "size": format_bytes(oracle.size_bytes()),
    })
