"""Micro-benchmarks of the primitive operations everything is built on.

Unlike the table/figure benches these use pytest-benchmark's statistical
timing (many rounds) because the operations are microseconds-scale:

* one exact query (label join + bounded bidirectional search);
* one label-only upper bound (Eq. 2);
* one landmark query (Eq. 1 decoding — the IncHL+ hot path);
* one full BFS (the construction primitive);
* one IncHL+ edge insertion + the matching decremental deletion.
"""

import itertools

import pytest

from repro.core.construction import build_hcl
from repro.core.dynamic import DynamicHCL
from repro.core.query import landmark_distance, query_distance, upper_bound
from repro.graph.traversal import bfs_distances
from repro.workloads.queries import sample_query_pairs
from repro.workloads.updates import sample_edge_insertions

_DATASET = "flickr-s"  # representative social stand-in


@pytest.fixture(scope="module")
def setup(cache):
    spec, graph, _, _ = cache.dataset(_DATASET)
    oracle = DynamicHCL.build(graph.copy(), num_landmarks=spec.num_landmarks)
    pairs = sample_query_pairs(oracle.graph, 512, rng=9)
    return oracle, pairs


def test_single_query(benchmark, setup):
    oracle, pairs = setup
    cycle = itertools.cycle(pairs)
    benchmark(lambda: oracle.query(*next(cycle)))


def test_upper_bound_only(benchmark, setup):
    oracle, pairs = setup
    non_landmark_pairs = [
        (u, v) for u, v in pairs
        if u not in oracle.labelling.landmark_set
        and v not in oracle.labelling.landmark_set
    ]
    cycle = itertools.cycle(non_landmark_pairs)
    benchmark(lambda: upper_bound(oracle.labelling, *next(cycle)))


def test_landmark_query(benchmark, setup):
    oracle, pairs = setup
    r = oracle.landmarks[0]
    cycle = itertools.cycle([v for _, v in pairs])
    benchmark(lambda: landmark_distance(oracle.labelling, r, next(cycle)))


def test_full_bfs(benchmark, setup):
    oracle, _ = setup
    benchmark(lambda: bfs_distances(oracle.graph, oracle.landmarks[0]))


def test_static_construction(benchmark, setup):
    oracle, _ = setup
    benchmark.pedantic(
        lambda: build_hcl(oracle.graph, oracle.landmarks),
        rounds=3, iterations=1,
    )


def test_insert_then_delete_roundtrip(benchmark, setup):
    """One IncHL+ insertion plus the decremental deletion that undoes it —
    a steady-state micro-benchmark that leaves the oracle unchanged."""
    oracle, _ = setup
    candidates = itertools.cycle(
        sample_edge_insertions(oracle.graph, 64, rng=10)
    )

    def roundtrip():
        u, v = next(candidates)
        oracle.insert_edge(u, v)
        oracle.remove_edge(u, v)

    benchmark.pedantic(roundtrip, rounds=30, iterations=1)
