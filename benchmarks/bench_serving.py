"""Serving layer — the BENCH record of snapshot-read cost and capture cost.

What a deployment of :mod:`repro.serving` needs to know, measured per
dataset stand-in:

* **snapshot-read overhead** — a distance query answered through a frozen
  :class:`~repro.serving.snapshot.OracleSnapshot` vs directly on the live
  oracle (the snapshot views are duck-typed dict wrappers; this records
  that the isolation layer is near-free);
* **batch amortisation** — ``query_many`` on one pinned snapshot vs a loop
  of single ``query`` calls (the serving hot path uses the former);
* **snapshot capture** — :meth:`DynamicHCL.snapshot` cost right after an
  update (copy-on-write pointer copies, not deep copies);
* **end-to-end service read** — queries through a running
  :class:`~repro.serving.service.OracleService` while its writer absorbs
  a mixed update stream (correctness asserted before timings count).

Run:  pytest benchmarks/bench_serving.py --benchmark-only
"""

import itertools
import random

import pytest

from repro.core.dynamic import DynamicHCL
from repro.serving.service import OracleService
from repro.workloads.streams import mixed_stream

_DATASET = "flickr-s"  # representative social stand-in
_BATCH = 64


@pytest.fixture(scope="module")
def setup(cache):
    spec, graph, _, queries = cache.dataset(_DATASET)
    oracle = cache.build_oracle(_DATASET, "IncHL+")
    rng = random.Random(77)
    pairs = [tuple(rng.choice(queries)) for _ in range(_BATCH)]
    return oracle, queries, pairs


def _extra(benchmark, operation, **more):
    benchmark.extra_info.update({
        "paper_row": True,
        "experiment": "serving",
        "dataset": _DATASET,
        "operation": operation,
        **more,
    })


def test_live_query(benchmark, setup):
    oracle, queries, _ = setup
    _extra(benchmark, "query-live")
    it = itertools.count()
    benchmark(lambda: oracle.query(*queries[next(it) % len(queries)]))


def test_snapshot_query(benchmark, setup):
    oracle, queries, _ = setup
    snap = oracle.snapshot()
    # Snapshot answers must match the live oracle before timings count.
    for u, v in queries[:16]:
        assert snap.query(u, v) == oracle.query(u, v)
    _extra(benchmark, "query-snapshot")
    it = itertools.count()
    benchmark(lambda: snap.query(*queries[next(it) % len(queries)]))


def test_query_loop_vs_many_loop(benchmark, setup):
    oracle, _, pairs = setup
    snap = oracle.snapshot()
    _extra(benchmark, "query-single-loop", batch=_BATCH)
    benchmark(lambda: [snap.query(u, v) for u, v in pairs])


def test_query_many(benchmark, setup):
    oracle, _, pairs = setup
    snap = oracle.snapshot()
    assert snap.query_many(pairs) == [snap.query(u, v) for u, v in pairs]
    _extra(benchmark, "query-many", batch=_BATCH)
    benchmark(lambda: snap.query_many(pairs))


def test_snapshot_capture(benchmark, setup):
    oracle, _, _ = setup
    non_edge = _fresh_non_edge(oracle.graph)

    def capture():
        # Invalidate the cached snapshot so each round truly re-captures.
        u, v = non_edge
        oracle.insert_edge(u, v)
        oracle.remove_edge(u, v)
        return oracle.snapshot()

    _extra(benchmark, "snapshot-capture")
    benchmark.pedantic(capture, rounds=10, iterations=1)


def test_service_read_under_writer(benchmark, setup, profile):
    oracle, queries, _ = setup
    events = mixed_stream(oracle.graph, profile.serving_updates, rng=5)
    _extra(benchmark, "service-read-under-writer")

    def serve_round():
        # Fresh oracle copy per round: replaying the same events must not
        # compound mutations across rounds (or leak into other benchmarks).
        fresh = DynamicHCL(oracle.graph.copy(), oracle.labelling.copy())
        service = OracleService(fresh)
        with service:
            service.submit_many(events)
            total = 0.0
            for u, v in queries:
                total += 0 if service.query(u, v) == float("inf") else 1
            service.flush()
        return total

    benchmark.pedantic(serve_round, rounds=3, iterations=1)


def _fresh_non_edge(graph):
    vertices = sorted(graph.vertices())
    rng = random.Random(13)
    while True:
        u, v = rng.choice(vertices), rng.choice(vertices)
        if u != v and not graph.has_edge(u, v):
            return (u, v)
