"""Figure 1 — distribution of affected vertices per single change.

Benchmarks the full change-stream replay per dataset (the paper's Figure 1
legend datasets) and records the sorted-percentile shape of
``|Λ| / |V|`` in ``extra_info`` — max, median, min, matching the figure's
descending curves.  Rendered series: ``python -m repro.bench figure1``.
"""

import pytest

from repro.bench.experiments.figure1 import FIGURE1_DATASETS
from repro.core.dynamic import DynamicHCL
from repro.workloads.updates import sample_edge_insertions


@pytest.mark.parametrize("dataset", FIGURE1_DATASETS)
def test_affected_distribution(benchmark, cache, profile, dataset):
    spec, graph, _, _ = cache.dataset(dataset)
    insertions = sample_edge_insertions(
        graph, profile.figure1_updates, rng=11
    )

    def replay():
        oracle = DynamicHCL.build(graph.copy(), num_landmarks=spec.num_landmarks)
        num_vertices = graph.num_vertices
        pcts = []
        for u, v in insertions:
            stats = oracle.insert_edge(u, v)
            pcts.append(100.0 * stats.affected_union / num_vertices)
        pcts.sort(reverse=True)
        return pcts

    pcts = benchmark.pedantic(replay, rounds=1, iterations=1)
    benchmark.extra_info.update({
        "paper_row": True,
        "figure": "1",
        "dataset": dataset,
        "updates": len(pcts),
        "max_pct": round(pcts[0], 4),
        "median_pct": round(pcts[len(pcts) // 2], 5),
        "min_pct": round(pcts[-1], 6),
    })
