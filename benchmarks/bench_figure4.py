"""Figure 4 — cumulative update time vs labelling construction from scratch.

Two benchmarks per dataset: maintaining the labelling through the whole
update schedule (the paper's rising curve) and rebuilding it from scratch
on the final graph (the flat line).  ``extra_info`` records how many
updates one rebuild amortises — the figure's takeaway.
Rendered series: ``python -m repro.bench figure4``.
"""

import pytest

from repro.core.construction import build_hcl
from repro.core.dynamic import DynamicHCL
from repro.workloads.datasets import dataset_names
from repro.workloads.updates import sample_edge_insertions


@pytest.mark.parametrize("dataset", dataset_names())
def test_cumulative_updates(benchmark, cache, profile, dataset):
    spec, graph, _, _ = cache.dataset(dataset)
    insertions = sample_edge_insertions(graph, profile.figure4_total, rng=4)

    def maintain():
        oracle = DynamicHCL.build(graph.copy(), num_landmarks=spec.num_landmarks)
        for u, v in insertions:
            oracle.insert_edge(u, v)
        return oracle

    oracle = benchmark.pedantic(maintain, rounds=1, iterations=1)
    benchmark.extra_info.update({
        "paper_row": True,
        "figure": "4-maintain",
        "dataset": dataset,
        "updates": len(insertions),
        "cumulative_s": round(benchmark.stats.stats.mean, 3),
    })


@pytest.mark.parametrize("dataset", dataset_names())
def test_rebuild_from_scratch(benchmark, cache, profile, dataset):
    spec, graph, _, _ = cache.dataset(dataset)
    insertions = sample_edge_insertions(graph, profile.figure4_total, rng=4)
    grown = graph.copy()
    oracle = DynamicHCL.build(grown, num_landmarks=spec.num_landmarks)
    per_update = 0.0
    if insertions:
        from repro.utils.timing import Stopwatch

        with Stopwatch() as sw:
            for u, v in insertions:
                oracle.insert_edge(u, v)
        per_update = sw.elapsed / len(insertions)

    benchmark.pedantic(
        lambda: build_hcl(grown, oracle.landmarks), rounds=1, iterations=1
    )
    rebuild_s = benchmark.stats.stats.mean
    benchmark.extra_info.update({
        "paper_row": True,
        "figure": "4-rebuild",
        "dataset": dataset,
        "rebuild_s": round(rebuild_s, 3),
        "updates_per_rebuild": (
            round(rebuild_s / per_update) if per_update > 0 else None
        ),
    })
