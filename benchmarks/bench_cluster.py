"""Cluster layer — the BENCH record of the replication hot paths.

What a deployment of :mod:`repro.cluster` needs to know, measured on a
representative stand-in:

* **router read overhead** — a `query` / `query_many` round-trip through
  the :class:`ClusterRouter` (raw line passthrough + routing) vs. straight
  to a single :class:`OracleServer` on the same oracle;
* **write + fan-out** — an `update` acknowledged at the WAL, and the full
  propagate-to-all-replicas drain (`snapshot` op);
* **WAL append** — raw :class:`UpdateLog` appends under each fsync
  policy (the write-ack floor).

A 2-replica fleet is spawned once per module (real processes).  Aggregate
qps scaling per replica count lives in the `cluster` experiment
(`python -m repro.bench cluster`), not here — pytest-benchmark rounds are
too short to saturate a fleet.

Run:  pytest benchmarks/bench_cluster.py --benchmark-only
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.cluster import ClusterSupervisor, UpdateLog
from repro.serving.client import ServingClient
from repro.serving.server import OracleServer
from repro.serving.service import OracleService
from repro.core.dynamic import DynamicHCL
from repro.utils.serialization import save_oracle
from repro.workloads.streams import insertion_stream

_DATASET = "flickr-s"  # representative social stand-in
_BATCH = 32
_REPLICAS = 2


@pytest.fixture(scope="module")
def setup(cache, tmp_path_factory):
    spec, graph, _, queries = cache.dataset(_DATASET)
    oracle = cache.build_oracle(_DATASET, "IncHL+")
    tmp = tmp_path_factory.mktemp("bench-cluster")
    oracle_file = tmp / "oracle.json.gz"
    save_oracle(oracle, oracle_file)

    single = OracleServer(
        OracleService(DynamicHCL(oracle.graph.copy(), oracle.labelling.copy())),
        port=0,
    )
    single_addr = single.start_in_thread()

    supervisor = ClusterSupervisor(
        oracle_file, cluster_dir=tmp / "cluster", replicas=_REPLICAS,
        port=0, compact_every=None,
    )
    cluster_addr = supervisor.start_in_thread()

    rng = random.Random(77)
    pairs = [tuple(rng.choice(queries)) for _ in range(_BATCH)]
    inserts = insertion_stream(oracle.graph, 256, rng=rng)
    yield {
        "single": single_addr,
        "cluster": cluster_addr,
        "queries": queries,
        "pairs": pairs,
        "inserts": inserts,
    }
    supervisor.stop_thread()
    single.stop_thread()


def _extra(benchmark, operation, **more):
    benchmark.extra_info.update({
        "paper_row": True,
        "experiment": "cluster",
        "dataset": _DATASET,
        "operation": operation,
        **more,
    })


def test_single_query_roundtrip(benchmark, setup):
    _extra(benchmark, "query-single-server")
    queries = setup["queries"]
    it = itertools.count()
    with ServingClient(*setup["single"]) as client:
        benchmark(lambda: client.query(*queries[next(it) % len(queries)]))


def test_router_query_roundtrip(benchmark, setup):
    _extra(benchmark, "query-via-router", replicas=_REPLICAS)
    queries = setup["queries"]
    it = itertools.count()
    with ServingClient(*setup["cluster"]) as client:
        benchmark(lambda: client.query(*queries[next(it) % len(queries)]))


def test_single_query_many_roundtrip(benchmark, setup):
    _extra(benchmark, "query_many-single-server", batch=_BATCH)
    pairs = setup["pairs"]
    with ServingClient(*setup["single"]) as client:
        benchmark(lambda: client.query_many(pairs))


def test_router_query_many_roundtrip(benchmark, setup):
    _extra(benchmark, "query_many-via-router", replicas=_REPLICAS, batch=_BATCH)
    pairs = setup["pairs"]
    with ServingClient(*setup["cluster"]) as client:
        benchmark(lambda: client.query_many(pairs))


def test_router_update_ack(benchmark, setup):
    """Write acked at the WAL (fan-out proceeds asynchronously)."""
    _extra(benchmark, "update-ack", replicas=_REPLICAS)
    inserts = iter(setup["inserts"])
    with ServingClient(*setup["cluster"]) as client:
        def ack_one():
            event = next(inserts)
            return client.update(event.kind, *event.edge)

        benchmark.pedantic(ack_one, rounds=30, iterations=1)
        client.snapshot()  # leave the fleet drained for later benchmarks


def test_router_update_propagate_all(benchmark, setup):
    """Write + drain: every replica applied and published."""
    _extra(benchmark, "update-propagate-all", replicas=_REPLICAS)
    inserts = iter(reversed(setup["inserts"]))
    with ServingClient(*setup["cluster"]) as client:
        def propagate_one():
            event = next(inserts)
            client.update(event.kind, *event.edge)
            return client.snapshot()

        benchmark.pedantic(propagate_one, rounds=30, iterations=1)


@pytest.mark.parametrize("fsync", ["always", "batch", "never"])
def test_wal_append(benchmark, tmp_path, fsync):
    _extra(benchmark, f"wal-append-{fsync}", fsync=fsync)
    log = UpdateLog(tmp_path / f"wal-{fsync}", fsync=fsync)
    counter = itertools.count()

    def append_one():
        i = next(counter)
        return log.append("insert", i, i + 1)

    benchmark(append_one)
    log.close()
