"""Tests for affected-vertex measurement."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.affected import (
    AffectedMeasurement,
    measure_affected_ratios,
    probe_affected_ratio,
)
from repro.core.construction import build_hcl
from repro.core.inchl import apply_edge_insertion
from repro.core.validation import brute_force_affected, check_matches_rebuild
from repro.graph.dynamic_graph import DynamicGraph

from tests.conftest import non_edges, random_connected_graph


class TestProbe:
    def test_probe_leaves_graph_and_labelling_intact(self):
        graph = random_connected_graph(5)
        landmarks = sorted(graph.vertices())[:2]
        labelling = build_hcl(graph, landmarks)
        snapshot_labels = labelling.copy()
        edges_before = sorted(graph.edges())
        a, b = non_edges(graph)[0]
        probe_affected_ratio(graph, labelling, a, b)
        assert sorted(graph.edges()) == edges_before
        assert labelling == snapshot_labels

    def test_probe_rolls_back_on_error(self):
        graph = DynamicGraph.from_edges([(0, 1), (1, 2)])
        labelling = build_hcl(graph, [0])
        # Force an error mid-probe: landmark_distance with a vertex the
        # graph knows but the labelling doesn't is fine, so instead probe
        # an edge whose insertion itself is invalid.
        with pytest.raises(Exception):
            probe_affected_ratio(graph, labelling, 0, 1)  # edge exists
        assert graph.has_edge(0, 1)

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_probe_union_matches_brute_force(self, seed):
        graph = random_connected_graph(seed)
        candidates = non_edges(graph)
        if not candidates:
            return
        r = sorted(graph.vertices())[0]
        labelling = build_hcl(graph, [r])
        a, b = candidates[0]
        measurement = probe_affected_ratio(graph, labelling, a, b)
        mutated = graph.copy()
        mutated.add_edge(a, b)
        expected = brute_force_affected(mutated, r, a, b)
        assert measurement.affected_union == len(expected)

    def test_measurement_properties(self):
        m = AffectedMeasurement(
            edge=(0, 1), affected_union=5, total_affected=8, num_vertices=50
        )
        assert m.ratio == pytest.approx(0.1)
        assert m.percentage == pytest.approx(10.0)


class TestMeasureStream:
    def test_measure_applies_permanently(self):
        graph = random_connected_graph(9, n_min=10, n_max=20)
        landmarks = sorted(graph.vertices())[:2]
        labelling = build_hcl(graph, landmarks)
        insertions = non_edges(graph)[:4]
        edges_before = graph.num_edges
        results = measure_affected_ratios(graph, labelling, insertions)
        assert len(results) == 4
        assert graph.num_edges == edges_before + 4
        check_matches_rebuild(graph, labelling)

    def test_measure_matches_direct_stats(self):
        graph = random_connected_graph(21, n_min=10, n_max=20)
        landmarks = sorted(graph.vertices())[:2]
        insertions = non_edges(graph)[:3]

        mirror = graph.copy()
        mirror_labelling = build_hcl(mirror, landmarks)
        expected = []
        for a, b in insertions:
            mirror.add_edge(a, b)
            expected.append(
                apply_edge_insertion(mirror, mirror_labelling, a, b).affected_union
            )

        labelling = build_hcl(graph, landmarks)
        results = measure_affected_ratios(graph, labelling, insertions)
        assert [m.affected_union for m in results] == expected

    def test_empty_stream(self):
        graph = random_connected_graph(2)
        labelling = build_hcl(graph, sorted(graph.vertices())[:1])
        assert measure_affected_ratios(graph, labelling, []) == []
