"""Tests for query-cost decomposition."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.queries import query_cost_profile
from repro.core.construction import build_hcl
from repro.core.query import query_distance, query_distance_probed
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import grid_graph

from tests.conftest import random_connected_graph


class TestQueryProbe:
    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_probe_distance_matches_plain_query(self, seed):
        graph = random_connected_graph(seed)
        vertices = sorted(graph.vertices())
        labelling = build_hcl(graph, vertices[:2])
        for u in vertices[:4]:
            for v in vertices[-4:]:
                probe = query_distance_probed(graph, labelling, u, v)
                assert probe.distance == query_distance(graph, labelling, u, v)
                assert probe.distance <= probe.bound

    def test_same_vertex(self):
        graph = grid_graph(2, 2)
        labelling = build_hcl(graph, [0])
        probe = query_distance_probed(graph, labelling, 3, 3)
        assert probe.distance == 0
        assert probe.label_join_ops == 0

    def test_landmark_endpoint_flagged(self):
        graph = grid_graph(3, 3)
        labelling = build_hcl(graph, [4])
        probe = query_distance_probed(graph, labelling, 4, 8)
        assert probe.landmark_endpoint
        assert probe.bound_was_exact

    def test_bound_exact_through_landmark(self):
        """Corner-to-corner in the 3x3 grid passes the centre landmark."""
        graph = grid_graph(3, 3)
        labelling = build_hcl(graph, [4])
        probe = query_distance_probed(graph, labelling, 0, 8)
        assert probe.bound_was_exact
        assert not probe.search_won

    def test_search_wins_off_landmark(self):
        """Adjacent vertices far from the landmark: the sparsified search
        must beat the bound through the landmark."""
        graph = grid_graph(3, 3)
        labelling = build_hcl(graph, [4])
        probe = query_distance_probed(graph, labelling, 0, 1)
        assert probe.distance == 1
        assert probe.search_won
        assert probe.bound > 1


class TestProfile:
    def test_counts_add_up(self):
        graph = random_connected_graph(12, n_min=15, n_max=25)
        vertices = sorted(graph.vertices())
        labelling = build_hcl(graph, vertices[:3])
        pairs = [(u, v) for u in vertices[:5] for v in vertices[-5:]]
        profile = query_cost_profile(graph, labelling, pairs)
        assert profile.num_queries == len(pairs)
        assert 0 <= profile.bound_exact_fraction <= 1
        assert 0 <= profile.search_won_fraction <= 1
        assert (
            profile.bound_exact_queries + profile.search_won_queries
            == profile.num_queries
        )
        assert profile.mean_label_join_ops > 0

    def test_unreachable_counted(self):
        graph = DynamicGraph.from_edges([(0, 1), (2, 3)])
        labelling = build_hcl(graph, [0])
        profile = query_cost_profile(graph, labelling, [(1, 2), (0, 1)])
        assert profile.unreachable_queries == 1

    def test_empty_workload(self):
        graph = grid_graph(2, 2)
        labelling = build_hcl(graph, [0])
        profile = query_cost_profile(graph, labelling, [])
        assert profile.num_queries == 0
        assert profile.bound_exact_fraction == 0.0
        assert profile.search_won_fraction == 0.0
