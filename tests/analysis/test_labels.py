"""Tests for label/highway distribution statistics."""

import pytest

from repro.analysis.labels import highway_stats, label_stats, landmark_entry_counts
from repro.core.construction import build_hcl
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import grid_graph

from tests.conftest import random_connected_graph


def path_graph(n):
    return DynamicGraph.from_edges([(i, i + 1) for i in range(n - 1)])


class TestLabelStats:
    def test_path_single_landmark(self):
        graph = path_graph(5)
        labelling = build_hcl(graph, [0])
        stats = label_stats(labelling, graph.num_vertices)
        # Vertices 1..4 each carry exactly the entry for landmark 0.
        assert stats.total_entries == 4
        assert stats.labelled_vertices == 4
        assert stats.empty_vertices == 1
        assert stats.max_label_size == 1
        assert stats.mean_label_size == pytest.approx(0.8)
        assert stats.size_bytes == labelling.size_bytes()

    def test_mean_below_num_landmarks(self):
        """The paper's observation: l is significantly smaller than |R|."""
        graph = random_connected_graph(33, n_min=20, n_max=30)
        landmarks = sorted(graph.vertices(), key=graph.degree, reverse=True)[:5]
        labelling = build_hcl(graph, landmarks)
        stats = label_stats(labelling, graph.num_vertices)
        assert stats.mean_label_size < len(landmarks)

    def test_invalid_vertex_count(self):
        labelling = build_hcl(path_graph(3), [0])
        with pytest.raises(ValueError):
            label_stats(labelling, 0)


class TestLandmarkEntryCounts:
    def test_counts_sum_to_total(self):
        graph = random_connected_graph(44)
        landmarks = sorted(graph.vertices())[:3]
        labelling = build_hcl(graph, landmarks)
        counts = landmark_entry_counts(labelling)
        assert set(counts) == set(landmarks)
        assert sum(counts.values()) == labelling.label_entries

    def test_redundant_landmark_contributes_nothing(self):
        # 0 - 1 - 2: landmark 1 separates 0 from 2, so with landmarks
        # {0, 1} vertex 2 is covered by 1 and keeps only 1's entry.
        graph = path_graph(3)
        labelling = build_hcl(graph, [0, 1])
        counts = landmark_entry_counts(labelling)
        assert counts[1] == 1  # entry (2, r=1)
        assert counts[0] == 0  # everything beyond 1 is covered


class TestHighwayStats:
    def test_connected_highway(self):
        graph = grid_graph(3, 3)
        labelling = build_hcl(graph, [0, 4, 8])
        stats = highway_stats(labelling)
        assert stats.num_landmarks == 3
        assert stats.total_pairs == 3
        assert stats.reachable_pairs == 3
        assert stats.connectivity == 1.0
        assert stats.max_distance == 4  # corners of the 3x3 grid
        assert stats.mean_distance == pytest.approx((2 + 2 + 4) / 3)

    def test_disconnected_highway(self):
        graph = DynamicGraph.from_edges([(0, 1), (2, 3)])
        labelling = build_hcl(graph, [0, 2])
        stats = highway_stats(labelling)
        assert stats.reachable_pairs == 0
        assert stats.connectivity == 0.0
        assert stats.max_distance == 0.0

    def test_single_landmark(self):
        labelling = build_hcl(path_graph(3), [0])
        stats = highway_stats(labelling)
        assert stats.total_pairs == 0
        assert stats.connectivity == 1.0
