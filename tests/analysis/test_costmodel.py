"""Tests for the update-cost model fit."""

import pytest

from repro.analysis.costmodel import CostModel, UpdateRecord


def record(affected, seconds, degree=4.0, label=2.0):
    return UpdateRecord(
        affected_total=affected,
        avg_degree=degree,
        avg_label_size=label,
        seconds=seconds,
    )


class TestUpdateRecord:
    def test_cost_term(self):
        rec = record(10, 0.5, degree=3.0, label=2.0)
        assert rec.cost_term == pytest.approx(60.0)


class TestCostModel:
    def test_perfect_linear_fit(self):
        slope, intercept = 1e-6, 5e-4
        records = [
            record(m, intercept + slope * (m * 4.0 * 2.0)) for m in (1, 5, 10, 50)
        ]
        model = CostModel.fit(records)
        assert model.slope == pytest.approx(slope, rel=1e-6)
        assert model.intercept == pytest.approx(intercept, rel=1e-6)
        assert model.r_squared == pytest.approx(1.0)
        assert model.num_records == 4

    def test_predict_roundtrip(self):
        records = [record(m, 0.1 + 0.01 * m * 8.0) for m in (1, 2, 3)]
        model = CostModel.fit(records)
        for rec in records:
            assert model.predict(rec) == pytest.approx(rec.seconds, rel=1e-6)
            assert model.predict_cost_term(rec.cost_term) == pytest.approx(
                rec.seconds, rel=1e-6
            )

    def test_noisy_fit_recovers_trend(self):
        import random

        rng = random.Random(7)
        records = [
            record(m, 1e-4 + 2e-7 * (m * 4.0 * 2.0) * rng.uniform(0.9, 1.1))
            for m in range(1, 200, 5)
        ]
        model = CostModel.fit(records)
        assert model.slope > 0
        assert model.r_squared > 0.9

    def test_too_few_records_rejected(self):
        with pytest.raises(ValueError):
            CostModel.fit([record(1, 0.1)])

    def test_constant_cost_terms_rejected(self):
        with pytest.raises(ValueError):
            CostModel.fit([record(5, 0.1), record(5, 0.2)])

    def test_constant_times_r_squared_one(self):
        records = [record(m, 0.25) for m in (1, 2, 4)]
        model = CostModel.fit(records)
        assert model.r_squared == pytest.approx(1.0)
        assert model.slope == pytest.approx(0.0, abs=1e-12)
