"""Tests for the IF (incremental fast path) experiment and CLI plumbing."""

import json

import pytest

from repro.bench.cli import main
from repro.bench.experiments import incremental_fast
from repro.exceptions import BenchmarkError


class TestIncrementalFastExperiment:
    def test_rows_cover_all_modes_and_verify_identity(self):
        result = incremental_fast.run(profile="smoke", datasets=["flickr-s"])
        assert result.name == "incremental_fast"
        modes = {row["mode"] for row in result.rows}
        assert "python" in modes
        assert "fast" in modes
        assert any(m.startswith("fast-batch/") for m in modes)
        for row in result.rows:
            assert row["identical"] is True  # byte-identity contract
            assert row["total_ms"] > 0
            assert row["updates"] > 0
        fast = next(r for r in result.rows if r["mode"] == "fast")
        assert fast["speedup"] is not None
        assert fast["attach_ms"] is not None
        python = next(r for r in result.rows if r["mode"] == "python")
        assert python["p50_us"] is not None and python["p95_us"] is not None

    def test_aggregate_row_present_for_multiple_datasets(self):
        result = incremental_fast.run(
            profile="smoke", datasets=["flickr-s", "skitter-s"]
        )
        aggregate = [r for r in result.rows if r["dataset"] == "ALL"]
        assert len(aggregate) == 1
        assert aggregate[0]["mode"] == "fast-aggregate"
        assert aggregate[0]["speedup"] is not None

    def test_unknown_dataset_rejected(self):
        with pytest.raises(BenchmarkError):
            incremental_fast.run(profile="smoke", datasets=["nope"])

    def test_cli_json_report(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = main([
            "incremental_fast", "--profile", "smoke",
            "--datasets", "flickr-s", "--json", str(out),
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "vectorized CSR update engine" in text
        payload = json.loads(out.read_text())
        assert "incremental_fast" in payload
        assert any(row["mode"] == "fast" for row in payload["incremental_fast"])
