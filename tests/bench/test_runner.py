"""Tests for the shared experiment runner plumbing."""

from repro.bench.runner import (
    build_oracles,
    default_factories,
    time_queries,
    time_updates,
)
from repro.workloads.datasets import DATASETS, build_dataset
from repro.workloads.queries import sample_query_pairs
from repro.workloads.updates import sample_edge_insertions


class TestFactories:
    def test_table1_method_names_in_order(self):
        names = [f.name for f in default_factories()]
        assert names == ["IncHL+", "IncFD", "IncPLL"]

    def test_build_oracles_isolates_graphs(self):
        spec, graph = build_dataset("skitter-s", profile="smoke")
        built = build_oracles(spec, graph, default_factories())
        edges_before = graph.num_edges
        hl = built[0].oracle
        insertions = sample_edge_insertions(graph, 2, rng=0)
        for u, v in insertions:
            hl.insert_edge(u, v)
        # the shared source graph and the other oracles are untouched
        assert graph.num_edges == edges_before
        assert built[1].oracle.graph.num_edges == edges_before

    def test_infeasible_pll_records_failure(self):
        spec, graph = build_dataset("orkut-s", profile="smoke")
        built = build_oracles(spec, graph, default_factories())
        by_name = {b.name: b for b in built}
        assert by_name["IncPLL"].oracle is None
        assert "IncPLL" in by_name["IncPLL"].failure
        assert by_name["IncHL+"].oracle is not None

    def test_build_times_recorded(self):
        spec, graph = build_dataset("skitter-s", profile="smoke")
        built = build_oracles(spec, graph, default_factories())
        for b in built:
            if b.oracle is not None:
                assert b.build_seconds >= 0.0


class TestTiming:
    def test_time_updates_and_queries(self):
        spec, graph = build_dataset("flickr-s", profile="smoke")
        built = build_oracles(spec, graph, default_factories()[:1])
        oracle = built[0].oracle
        insertions = sample_edge_insertions(graph, 5, rng=1)
        update_stats = time_updates(oracle, insertions)
        assert update_stats.count == 5
        pairs = sample_query_pairs(graph, 10, rng=1)
        query_stats = time_queries(oracle, pairs)
        assert query_stats.count == 10
        assert query_stats.mean_ms() >= 0.0
