"""Tests for the S (serving) experiment and the bench CLI's JSON output."""

import json

import pytest

from repro.bench.cli import main
from repro.bench.experiments import serving
from repro.exceptions import BenchmarkError


class TestServingExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return serving.run(profile="smoke")

    def test_rows_cover_every_reader_count(self, result):
        assert result.name == "serving"
        assert [row["readers"] for row in result.rows] == [1, 2]

    def test_acceptance_criteria_per_row(self, result):
        for row in result.rows:
            assert row["incorrect"] == 0, row  # snapshot isolation held
            assert row["queries"] > 0
            assert row["qps"] > 0
            assert row["updates_applied"] > 0
            assert row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"]
            assert row["epochs_served"] >= 1

    def test_text_report_shape(self, result):
        assert "incorrect" in result.text
        assert "qps" in result.text
        assert "p99_ms" in result.text

    def test_perf_rows_surface_in_terminal_summary(self, result, perf_record):
        # The conftest terminal-summary hook prints these at the end of
        # the run — qps/p99 of the bench smoke visible in plain pytest.
        for row in result.rows:
            perf_record({
                "experiment": "serving",
                "readers": row["readers"],
                "qps": row["qps"],
                "p99_ms": row["p99_ms"],
            })

    def test_unknown_dataset_rejected(self):
        with pytest.raises(BenchmarkError):
            serving.run(profile="smoke", datasets=["nope"])


def test_cli_writes_json_report(tmp_path, capsys):
    out_json = tmp_path / "serving.json"
    code = main([
        "serving", "--profile", "smoke", "--datasets", "flickr-s",
        "--json", str(out_json),
    ])
    assert code == 0
    assert "snapshot-isolated serving" in capsys.readouterr().out
    payload = json.loads(out_json.read_text())
    assert set(payload) == {"serving"}
    rows = payload["serving"]
    assert rows and all(row["incorrect"] == 0 for row in rows)
    assert {row["readers"] for row in rows} == {1, 2}
