"""Smoke tests for the A4–A7 extension ablations (smoke profile)."""

import pytest

from repro.bench.experiments.extensions import (
    run,
    run_batch_vs_sequential,
    run_construction_fast_path,
    run_cost_model_fit,
    run_decremental_strategies,
)
from repro.exceptions import BenchmarkError

DATASETS = ["skitter-s"]


class TestSections:
    def test_batch_vs_sequential_rows(self):
        rows = run_batch_vs_sequential(profile="smoke", datasets=DATASETS)
        assert len(rows) == 3  # three batch sizes
        for row in rows:
            assert row["dataset"] == "skitter-s"
            assert row["sequential_ms"] > 0
            assert row["batch_ms"] > 0
            assert row["speedup"] is not None

    def test_decremental_strategies_rows(self):
        rows = run_decremental_strategies(profile="smoke", datasets=DATASETS)
        assert len(rows) == 1
        row = rows[0]
        assert row["deletions"] >= 4
        # The fine-grained repair must beat per-landmark rebuilds, which
        # must beat a full reconstruction per deletion.
        assert row["partial_ms"] < row["full_rebuild_ms"]

    def test_construction_fast_path_rows(self):
        rows = run_construction_fast_path(profile="smoke", datasets=DATASETS)
        names = [row["dataset"] for row in rows]
        assert names[0] == "skitter-s"
        assert any(name.startswith("ba-") for name in names)
        for row in rows:
            assert row["python_ms"] > 0 and row["csr_ms"] > 0

    def test_cost_model_fit_rows(self):
        rows = run_cost_model_fit(profile="smoke", datasets=DATASETS)
        assert len(rows) == 1
        assert rows[0]["updates"] >= 8


class TestCombined:
    def test_run_combines_all_sections(self):
        result = run(profile="smoke", datasets=DATASETS)
        assert result.name == "extensions"
        experiments = {row["experiment"] for row in result.rows}
        assert experiments == {
            "A4-batch-vs-sequential",
            "A5-decremental-strategies",
            "A6-construction-fast-path",
            "A7-cost-model-fit",
        }
        for title in ("A4", "A5", "A6", "A7"):
            assert title in result.text

    def test_unknown_dataset_rejected(self):
        with pytest.raises(BenchmarkError):
            run(profile="smoke", datasets=["nope"])
