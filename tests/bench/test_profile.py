"""Tests for benchmark profiles."""

import pytest

from repro.bench.profile import PROFILE_NAMES, bench_profile
from repro.exceptions import BenchmarkError


class TestProfiles:
    def test_known_profiles(self):
        for name in PROFILE_NAMES:
            prof = bench_profile(name)
            assert prof.name == name

    def test_default_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_PROFILE", raising=False)
        assert bench_profile().name == "default"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "smoke")
        assert bench_profile().name == "smoke"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "smoke")
        assert bench_profile("full").name == "full"

    def test_unknown_profile(self):
        with pytest.raises(BenchmarkError):
            bench_profile("gigantic")

    def test_scaling_monotone(self):
        smoke = bench_profile("smoke")
        default = bench_profile("default")
        full = bench_profile("full")
        assert smoke.num_updates < default.num_updates < full.num_updates
        assert smoke.num_queries < default.num_queries < full.num_queries
        assert smoke.figure4_total < default.figure4_total < full.figure4_total
