"""Tests for the Figure 2 worked-example experiment."""

from repro.bench.experiments.figure2 import (
    EXPECTED_AFFECTED,
    FIGURE2_INSERTION,
    FIGURE2_LANDMARKS,
    paper_figure2_graph,
    run,
)


class TestFigure2Experiment:
    def test_every_landmark_matches_paper(self):
        result = run()
        assert result.name == "figure2"
        assert len(result.rows) == 3
        assert all(row["matches_paper"] == "yes" for row in result.rows)

    def test_rows_carry_paper_sets(self):
        result = run()
        by_landmark = {row["landmark"]: row for row in result.rows}
        assert by_landmark[0]["affected"] == "{5, 8, 9, 10, 13, 14}"
        assert by_landmark[0]["repaired"] == "{5, 9}"
        assert by_landmark[0]["covered"] == "{8, 13, 14}"
        assert by_landmark[4]["affected"] == "{}"
        assert by_landmark[10]["covered"] == "{1}"

    def test_text_rendering(self):
        text = run().text
        assert "Figure 2" in text
        assert str(FIGURE2_INSERTION) in text
        assert "rebuild" in text

    def test_graph_shape(self):
        graph = paper_figure2_graph()
        assert graph.num_vertices == 16
        assert graph.num_edges == 20
        for r in FIGURE2_LANDMARKS:
            assert graph.has_vertex(r)
        assert not graph.has_edge(*FIGURE2_INSERTION)

    def test_expected_sets_cover_all_landmarks(self):
        assert set(EXPECTED_AFFECTED) == set(FIGURE2_LANDMARKS)

    def test_run_ignores_parameters(self):
        default = run()
        parameterised = run(profile="smoke", datasets=["flickr-s"], seed=7)
        assert default.rows == parameterised.rows
