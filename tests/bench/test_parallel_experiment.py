"""Tests for the P (parallel engine) experiment and its CLI plumbing."""

import pytest

from repro.bench.cli import main
from repro.bench.experiments import parallel
from repro.exceptions import BenchmarkError

_OPERATIONS = {
    "construction-python",
    "construction-csr",
    "batch-insertion",
    "decremental-rebuild",
}


class TestParallelExperiment:
    def test_rows_cover_all_operations_and_verify_equality(self):
        result = parallel.run(profile="smoke", workers=2)
        assert result.name == "parallel"
        assert {row["operation"] for row in result.rows} == _OPERATIONS
        for row in result.rows:
            assert row["identical"] is True
            assert row["workers"] == 2
            assert row["serial_ms"] > 0
            assert row["parallel_ms"] > 0
            assert row["speedup"] is not None

    def test_text_report_mentions_speedup(self):
        result = parallel.run(profile="smoke", workers=2)
        assert "serial_ms" in result.text
        assert "parallel_ms" in result.text
        assert "speedup" in result.text

    def test_unknown_dataset_rejected(self):
        with pytest.raises(BenchmarkError):
            parallel.run(profile="smoke", datasets=["nope"], workers=2)

    def test_cli_routes_workers_flag(self, capsys):
        code = main([
            "parallel", "--profile", "smoke", "--datasets", "flickr-s",
            "--workers", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "per-landmark engine" in out
        assert "flickr-s" in out
