"""Tests for the C (cluster) experiment and its bench CLI wiring."""

import json

import pytest

from repro.bench.cli import main
from repro.bench.experiments import cluster
from repro.exceptions import BenchmarkError


class TestClusterExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return cluster.run(profile="smoke")

    def test_rows_cover_single_plus_every_replica_count(self, result):
        assert result.name == "cluster"
        assert [(row["mode"], row["replicas"]) for row in result.rows] == [
            ("single", 1), ("cluster", 1), ("cluster", 2),
        ]

    def test_acceptance_criteria_per_row(self, result):
        for row in result.rows:
            assert row["queries"] > 0
            assert row["qps"] > 0
            assert row["checked"] > 0  # some answers were BFS-verified...
            assert row["incorrect"] == 0, row  # ...and every one was right
            assert row["host_cpus"] >= 1
        single = result.rows[0]
        assert single["speedup_vs_single"] == 1.0
        for row in result.rows[1:]:
            assert row["propagation_ms"] is not None
            assert row["propagation_ms"] > 0
            assert row["speedup_vs_single"] > 0

    def test_text_report_shape(self, result):
        assert "speedup_vs_single" in result.text
        assert "incorrect" in result.text
        assert "propagation_ms" in result.text

    def test_unknown_dataset_rejected(self):
        with pytest.raises(BenchmarkError):
            cluster.run(profile="smoke", datasets=["nope"])


def test_cli_writes_json_report(tmp_path, capsys):
    out_json = tmp_path / "cluster.json"
    code = main([
        "cluster", "--profile", "smoke", "--datasets", "flickr-s",
        "--json", str(out_json),
    ])
    assert code == 0
    assert "replicated cluster" in capsys.readouterr().out
    payload = json.loads(out_json.read_text())
    assert set(payload) == {"cluster"}
    rows = payload["cluster"]
    assert rows and all(row["incorrect"] == 0 for row in rows)
    assert {row["mode"] for row in rows} == {"single", "cluster"}
