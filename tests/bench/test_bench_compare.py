"""The perf-regression gate: row matching, thresholds, skips, invariants."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench.compare import (
    compare_bench,
    compare_rows,
    has_failures,
    load_bench,
    render_report,
)

REPO = Path(__file__).resolve().parents[2]


def _run_gate(*argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    return subprocess.run(
        [sys.executable, str(REPO / "tools" / "bench_compare.py"), *argv],
        capture_output=True, text=True, env=env,
    )


def _row(**kw):
    base = {
        "experiment": "IF", "dataset": "d", "mode": "fast",
        "updates": 100, "total_ms": 100.0, "per_update_us": 1000.0,
        "speedup": 4.0, "identical": True,
    }
    base.update(kw)
    return base


def _statuses(findings, metric):
    return [f["status"] for f in findings if f["metric"] == metric]


class TestCompareRows:
    def test_identical_rows_are_all_ok(self):
        findings = compare_rows(("IF",), _row(), _row())
        assert findings and all(f["status"] == "ok" for f in findings)

    def test_lower_better_regression_past_threshold(self):
        findings = compare_rows(
            ("IF",), _row(), _row(total_ms=130.0), threshold=0.20
        )
        assert _statuses(findings, "total_ms") == ["regression"]
        (finding,) = (f for f in findings if f["metric"] == "total_ms")
        assert finding["delta_pct"] == 30.0

    def test_higher_better_regression(self):
        findings = compare_rows(("IF",), _row(), _row(speedup=3.0))
        assert _statuses(findings, "speedup") == ["regression"]

    def test_improvement_is_not_a_failure(self):
        findings = compare_rows(("IF",), _row(), _row(total_ms=50.0))
        assert _statuses(findings, "total_ms") == ["improved"]
        assert not has_failures(findings)

    def test_within_threshold_is_ok(self):
        findings = compare_rows(
            ("IF",), _row(), _row(total_ms=115.0), threshold=0.20
        )
        assert _statuses(findings, "total_ms") == ["ok"]

    def test_scale_mismatch_skips_the_row(self):
        findings = compare_rows(("IF",), _row(updates=100), _row(updates=40))
        (finding,) = findings
        assert finding["status"] == "skipped"
        assert "scale mismatch" in finding["detail"]

    def test_host_cpu_mismatch_skips_the_row(self):
        findings = compare_rows(
            ("C",), _row(host_cpus=8), _row(host_cpus=8) | {"host_cpus": 1},
        )
        (finding,) = findings
        assert finding["status"] == "skipped"
        assert finding["metric"] == "host_cpus"

    def test_host_cpus_param_is_the_fresh_fallback(self):
        findings = compare_rows(
            ("C",), _row(host_cpus=8), _row(), host_cpus=1
        )
        assert [f["status"] for f in findings] == ["skipped"]

    def test_noise_floor_skips_tiny_baselines(self):
        findings = compare_rows(
            ("IF",), _row(total_ms=2.0), _row(total_ms=9.0)
        )
        (finding,) = (f for f in findings if f["metric"] == "total_ms")
        assert finding["status"] == "skipped"
        assert "noise floor" in finding["detail"]

    def test_invariant_failure_beats_good_timings(self):
        findings = compare_rows(
            ("IF",), _row(), _row(total_ms=10.0, identical=False)
        )
        assert _statuses(findings, "identical") == ["invariant-failure"]
        assert has_failures(findings)

    def test_incorrect_counts_must_stay_zero(self):
        findings = compare_rows(
            ("C",), _row(incorrect=0), _row(incorrect=3)
        )
        assert _statuses(findings, "incorrect") == ["invariant-failure"]

    def test_none_metrics_are_ignored(self):
        findings = compare_rows(
            ("IF",), _row(p99_us=None), _row(p99_us=12345.0)
        )
        assert _statuses(findings, "p99_us") == []


class TestCompareBench:
    def test_missing_and_new_rows_are_informational(self):
        baseline = {"e": [_row(dataset="a"), _row(dataset="b")]}
        fresh = {"e": [_row(dataset="a"), _row(dataset="c")]}
        findings = compare_bench(baseline, fresh, host_cpus=1)
        statuses = {f["status"] for f in findings}
        assert "missing" in statuses and "new" in statuses
        assert not has_failures(findings)

    def test_load_bench_drops_metadata_keys(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({
            "caveat": "1-cpu container",
            "_profile": {"samples": 5},
            "exp": [_row()],
        }))
        assert list(load_bench(path)) == ["exp"]

    def test_render_report_collapses_ok(self):
        findings = compare_bench({"e": [_row()]}, {"e": [_row()]}, host_cpus=1)
        report = render_report(findings)
        assert report.splitlines()[0].startswith("bench-compare:")
        assert "[ok]" not in report
        assert "[ok]" in render_report(findings, verbose=True)


class TestCommittedBaselines:
    """The gate must pass a baseline against itself, and the CLI must
    exit nonzero on a synthetic 25% regression."""

    BASELINES = sorted(REPO.glob("BENCH_*.json"))

    def test_baselines_exist(self):
        assert self.BASELINES, "no committed BENCH_*.json baselines"

    @pytest.mark.parametrize(
        "path", BASELINES, ids=lambda p: p.name
    )
    def test_baseline_self_compare_passes(self, path):
        data = load_bench(path)
        findings = compare_bench(data, data, host_cpus=1)
        assert not has_failures(findings), render_report(findings)

    def test_cli_fails_on_synthetic_regression(self, tmp_path):
        baseline = REPO / "BENCH_incremental_fast.json"
        data = json.loads(baseline.read_text())
        degraded = 0
        for rows in data.values():
            if not isinstance(rows, list):
                continue
            for row in rows:
                for metric in ("total_ms", "per_update_us"):
                    value = row.get(metric)
                    if isinstance(value, (int, float)) and value >= 10.0:
                        row[metric] = value * 1.25
                        degraded += 1
        assert degraded, "baseline had no metrics to degrade"
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps(data))

        proc = _run_gate(str(baseline), str(fresh), "--host-cpus", "1")
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "FAIL: performance gate" in proc.stderr
        assert "[regression]" in proc.stdout

    def test_cli_passes_on_self_compare(self, tmp_path):
        baseline = REPO / "BENCH_incremental_fast.json"
        proc = _run_gate(str(baseline), str(baseline), "--host-cpus", "1")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "OK: no regressions past the threshold" in proc.stdout
