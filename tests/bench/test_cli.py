"""Tests for the python -m repro.bench command line."""

import pytest

from repro.bench.cli import EXPERIMENTS, main


class TestCli:
    def test_experiment_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "figure1", "figure2", "figure3", "figure4",
            "ablations", "cluster", "extensions", "incremental_fast",
            "mixed", "parallel", "serving",
        }

    def test_run_single_experiment(self, capsys):
        code = main(["table2", "--profile", "smoke", "--datasets", "skitter-s"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "skitter-s" in out

    def test_out_file(self, tmp_path, capsys):
        out_path = tmp_path / "report.txt"
        main([
            "table2", "--profile", "smoke", "--datasets", "flickr-s",
            "--out", str(out_path),
        ])
        capsys.readouterr()
        assert "Table 2" in out_path.read_text()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["table9"])

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            main(["table2", "--profile", "nope"])

    def test_seed_flag(self, capsys):
        code = main(["table2", "--profile", "smoke", "--datasets",
                     "skitter-s", "--seed", "7"])
        assert code == 0
