"""Smoke runs of every experiment on tiny datasets — each table/figure
generator must produce well-formed rows and a rendering."""

import pytest

from repro.bench.experiments import ablations, figure1, figure3, figure4, table1, table2
from repro.bench.experiments.table1 import PAPER_TABLE1
from repro.exceptions import BenchmarkError
from repro.workloads.datasets import DATASETS

_SMALL = ["skitter-s", "flickr-s"]


class TestTable1:
    def test_rows_and_rendering(self):
        result = table1.run(profile="smoke", datasets=_SMALL)
        assert result.name == "table1"
        assert len(result.rows) == 2 * 3  # datasets x methods
        for row in result.rows:
            if row["method"] == "IncHL+":
                assert row["update_ms"] is not None
                assert row["query_ms"] is not None
                assert row["size_bytes"] > 0
        assert "Table 1" in result.text
        assert "IncHL+" in result.text

    def test_paper_reference_complete(self):
        assert set(PAPER_TABLE1) == set(DATASETS)
        # the paper's "-" cells are preserved
        assert PAPER_TABLE1["clueweb09-s"]["IncFD"] is None
        assert PAPER_TABLE1["uk-s"]["IncPLL"] is None

    def test_infeasible_dataset_renders_dash(self):
        result = table1.run(profile="smoke", datasets=["orkut-s"])
        incpll_row = [r for r in result.rows if r["method"] == "IncPLL"][0]
        assert incpll_row["update_ms"] is None

    def test_unknown_dataset(self):
        with pytest.raises(BenchmarkError):
            table1.run(profile="smoke", datasets=["bogus"])


class TestTable2:
    def test_all_datasets_summarised(self):
        result = table2.run(profile="smoke")
        assert len(result.rows) == 12
        for row in result.rows:
            assert row["num_vertices"] > 0
            assert row["avg_distance"] > 0
        assert "Table 2" in result.text

    def test_unknown_dataset(self):
        with pytest.raises(BenchmarkError):
            table2.run(profile="smoke", datasets=["bogus"])


class TestFigure1:
    def test_percentages_sorted_descending(self):
        result = figure1.run(profile="smoke", datasets=_SMALL)
        assert len(result.rows) == 2
        for row in result.rows:
            assert 0.0 <= row["min_pct"] <= row["median_pct"] <= row["max_pct"] <= 100.0
        assert "Figure 1" in result.text

    def test_default_uses_paper_legend(self):
        assert set(figure1.FIGURE1_DATASETS) <= set(DATASETS)
        assert len(figure1.FIGURE1_DATASETS) == 6


class TestFigure3:
    def test_sweep_structure(self):
        result = figure3.run(profile="smoke", datasets=["skitter-s"])
        counts = {row["num_landmarks"] for row in result.rows}
        assert counts == {10, 20}  # smoke profile sweep
        for row in result.rows:
            assert row["inchl_update_ms"] >= 0
            assert row["incfd_update_ms"] >= 0
        assert "Figure 3" in result.text


class TestFigure4:
    def test_cumulative_monotone(self):
        result = figure4.run(profile="smoke", datasets=["flickr-s"])
        row = result.rows[0]
        assert row["num_updates"] > 0
        assert row["cumulative_update_s"] > 0
        assert row["reconstruction_s"] > 0
        assert "Figure 4" in result.text


class TestAblations:
    def test_all_three_sections(self):
        result = ablations.run(profile="smoke", datasets=_SMALL)
        experiments = {row["experiment"] for row in result.rows}
        assert experiments == {
            "A1-landmark-strategy",
            "A2-update-vs-rebuild",
            "A3-workload-realism",
        }
        assert "A1" in result.text and "A3" in result.text

    def test_a1_covers_all_strategies(self):
        rows = ablations.run_landmark_strategies(
            profile="smoke", datasets=["skitter-s"]
        )
        assert {r["strategy"] for r in rows} == {
            "degree", "random", "betweenness", "spread"
        }
