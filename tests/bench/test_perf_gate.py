"""The live perf gate: a fresh smoke bench diffed against the committed
baselines, with every finding surfaced in the pytest terminal summary
(the ``bench vs committed baselines`` section).

Marked ``perf`` so CI can select or deselect the gate explicitly
(``-m perf`` / ``-m "not perf"``).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.compare import compare_bench, has_failures, load_bench, render_report
from repro.bench.experiments import incremental_fast

REPO = Path(__file__).resolve().parents[2]
BASELINE = REPO / "BENCH_incremental_fast.json"


@pytest.mark.perf
def test_fresh_smoke_run_passes_the_gate(bench_delta_record):
    """A fresh smoke-profile run must never *fail* the gate against the
    committed full-profile baseline: timing rows are scale-mismatched
    (reported as skipped, by design), and the correctness invariants
    (``identical``) must hold in the fresh rows."""
    result = incremental_fast.run(profile="smoke", datasets=["flickr-s"])
    fresh = {result.name: result.rows}
    baseline = load_bench(BASELINE)
    findings = compare_bench(baseline, fresh, host_cpus=1)
    bench_delta_record(findings)  # rendered in the terminal summary

    assert findings
    assert not has_failures(findings), render_report(findings, verbose=True)
    # The fresh rows themselves kept the oracle exact.
    assert all(row.get("identical") in (True, None) for row in result.rows)


@pytest.mark.perf
def test_committed_baseline_is_self_consistent(bench_delta_record):
    """The committed baseline must pass the gate against itself — guards
    against hand-edits that break the gate's row matching."""
    baseline = load_bench(BASELINE)
    findings = compare_bench(baseline, baseline, host_cpus=1)
    bench_delta_record(findings)
    assert not has_failures(findings), render_report(findings, verbose=True)
