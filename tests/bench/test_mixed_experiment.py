"""Tests for the MX (mixed insert/delete batch) experiment and CLI plumbing."""

import json

import pytest

from repro.bench.cli import main
from repro.bench.experiments import mixed
from repro.exceptions import BenchmarkError


class TestMixedExperiment:
    def test_rows_cover_all_modes_and_verify_identity(self):
        result = mixed.run(profile="smoke", datasets=["flickr-s"])
        assert result.name == "mixed"
        modes = {row["mode"] for row in result.rows}
        assert modes == {"sequential", "fallback", "mixed-fast"}
        for row in result.rows:
            assert row["identical"] is True  # byte-identity contract
            assert row["total_ms"] > 0
            assert row["events"] > 0
            assert row["deletes"] > 0  # the stream really mixes kinds
        fast = next(r for r in result.rows if r["mode"] == "mixed-fast")
        assert fast["speedup_vs_fallback"] is not None
        assert fast["bfs_checked"] > 0
        assert fast["bfs_incorrect"] == 0  # CI gate

    def test_speedup_is_relative_to_fallback(self):
        result = mixed.run(profile="smoke", datasets=["twitter-s"])
        fallback = next(r for r in result.rows if r["mode"] == "fallback")
        assert fallback["speedup_vs_fallback"] == 1.0

    def test_unknown_dataset_rejected(self):
        with pytest.raises(BenchmarkError):
            mixed.run(profile="smoke", datasets=["nope"])

    def test_cli_json_report(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = main([
            "mixed", "--profile", "smoke",
            "--datasets", "flickr-s", "--json", str(out),
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "fully-dynamic mixed batches" in text
        payload = json.loads(out.read_text())
        assert "mixed" in payload
        assert any(row["mode"] == "mixed-fast" for row in payload["mixed"])
