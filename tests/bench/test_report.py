"""Tests for the report renderers."""

import pytest

from repro.bench.report import format_bytes, format_table, format_value, render_series


class TestFormatValue:
    def test_none_renders_dash(self):
        assert format_value(None) == "-"

    def test_float_precision_tiers(self):
        assert format_value(0.1234) == "0.123"
        assert format_value(5.678) == "5.68"
        assert format_value(123.456) == "123.5"

    def test_nan_and_inf(self):
        assert format_value(float("nan")) == "-"
        assert format_value(float("inf")) == "inf"

    def test_ints_and_strings(self):
        assert format_value(42) == "42"
        assert format_value("x") == "x"


class TestFormatBytes:
    def test_units(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.0 KB"
        assert format_bytes(44_040_192) == "42.0 MB"
        assert format_bytes(3 << 30) == "3.0 GB"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_bytes(-1)


class TestFormatTable:
    def test_alignment_and_rows(self):
        text = format_table(
            ["a", "bb"], [{"a": 1, "bb": 2.5}, {"a": 10}], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert lines[2].startswith("---")
        assert len(lines) == 5
        assert "-" in lines[4]  # missing cell renders as dash

    def test_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text


class TestRenderSeries:
    def test_series_layout(self):
        text = render_series(
            "F", {"s1": [(0, 1.0), (1, 0.5)]}, x_label="i", y_label="pct"
        )
        assert "F" in text
        assert "s1:" in text
        assert "[i -> pct]" in text
        assert text.count("\n") >= 3
