"""Tests for the terminal plotting helpers."""

import pytest

from repro.bench.plotting import bar_chart, line_chart, sparkline


class TestBarChart:
    def test_basic_layout(self):
        chart = bar_chart("speeds", ["fast", "slow"], [1.0, 10.0], width=10)
        lines = chart.splitlines()
        assert lines[0] == "speeds"
        assert len(lines) == 3
        assert "fast" in lines[1] and "1.00" in lines[1]
        assert "slow" in lines[2] and "10.00" in lines[2]

    def test_max_value_fills_width(self):
        chart = bar_chart("t", ["a", "b"], [1.0, 100.0], width=20)
        assert "█" * 20 in chart.splitlines()[2]

    def test_min_value_keeps_one_cell(self):
        chart = bar_chart("t", ["a", "b"], [1.0, 100.0], width=20)
        assert "█" in chart.splitlines()[1]

    def test_log_scaling_orders_bars(self):
        chart = bar_chart("t", ["a", "b", "c"], [1.0, 10.0, 100.0],
                          width=20, log=True)
        lengths = [line.count("█") for line in chart.splitlines()[1:]]
        assert lengths == sorted(lengths)
        # log scale: the middle decade sits halfway, not at 10%
        assert lengths[1] == pytest.approx(10, abs=1)

    def test_zero_values_render_empty(self):
        chart = bar_chart("t", ["a", "b"], [0.0, 5.0], width=10)
        assert chart.splitlines()[1].count("█") == 0

    def test_all_nonpositive(self):
        chart = bar_chart("t", ["a"], [0.0])
        assert "(no data)" in chart

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            bar_chart("t", ["a"], [1.0, 2.0])

    def test_unit_suffix(self):
        chart = bar_chart("t", ["a"], [3.0], unit="ms")
        assert "3.00 ms" in chart


class TestSparkline:
    def test_monotone_ramp(self):
        assert sparkline([1, 2, 3, 4]) == "▁▃▆█"

    def test_constant_series(self):
        line = sparkline([5, 5, 5])
        assert len(line) == 3
        assert len(set(line)) == 1

    def test_zeros_render_blank(self):
        assert sparkline([0, 1])[0] == " "

    def test_empty_and_all_zero(self):
        assert sparkline([]) == ""
        assert sparkline([0, 0]) == "  "

    def test_log_scale(self):
        linear = sparkline([1, 10, 100])
        logged = sparkline([1, 10, 100], log=True)
        assert logged[1] != linear[1]  # mid-decade lifts under log


class TestLineChart:
    def test_contains_markers_and_legend(self):
        chart = line_chart(
            "growth",
            {"inchl": [(0, 1.0), (10, 2.0)], "rebuild": [(0, 5.0), (10, 5.0)]},
            width=30,
            height=8,
        )
        assert "growth" in chart
        assert "* inchl" in chart
        assert "+ rebuild" in chart
        assert "*" in chart.splitlines()[1] or any(
            "*" in line for line in chart.splitlines()
        )

    def test_empty_series(self):
        assert "(no data)" in line_chart("t", {"a": []})

    def test_log_y_drops_nonpositive(self):
        chart = line_chart("t", {"a": [(0, 0.0), (1, 10.0)]}, log_y=True)
        assert "(no data)" not in chart

    def test_axis_labels(self):
        chart = line_chart("t", {"a": [(0, 1.0), (5, 2.0)]},
                           x_label="updates", y_label="seconds")
        assert "updates" in chart and "seconds" in chart

    def test_single_point(self):
        chart = line_chart("t", {"a": [(1, 1.0)]}, width=10, height=4)
        assert any("*" in line for line in chart.splitlines())
