"""Shared test fixtures and reference implementations.

The helpers here are deliberately *independent* of the library's fast
paths: brute-force BFS over plain dicts, exhaustive pair enumeration, and
seeded random graph builders.  Property tests compare the library against
these references.
"""

from __future__ import annotations

import random
from collections import deque

import pytest

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import ensure_connected, erdos_renyi

INF = float("inf")


# ---------------------------------------------------------------------------
# Reference implementations (kept separate from library code on purpose)
# ---------------------------------------------------------------------------
def reference_bfs(graph: DynamicGraph, source: int) -> dict[int, int]:
    """Deque-based BFS, structurally different from the library's BFS."""
    dist = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for w in graph.neighbors(v):
            if w not in dist:
                dist[w] = dist[v] + 1
                queue.append(w)
    return dist


def reference_distance(graph: DynamicGraph, u: int, v: int) -> float:
    """Exact distance via reference BFS."""
    return reference_bfs(graph, u).get(v, INF)


def all_pairs_distances(graph: DynamicGraph) -> dict[int, dict[int, int]]:
    """Full APSP table (small graphs only)."""
    return {v: reference_bfs(graph, v) for v in graph.vertices()}


def non_edges(graph: DynamicGraph) -> list[tuple[int, int]]:
    """All vertex pairs that are not edges (small graphs only)."""
    vertices = sorted(graph.vertices())
    return [
        (u, v)
        for i, u in enumerate(vertices)
        for v in vertices[i + 1 :]
        if not graph.has_edge(u, v)
    ]


def random_connected_graph(
    seed: int, n_min: int = 5, n_max: int = 30, density: float = 2.0
) -> DynamicGraph:
    """Seeded connected random graph for deterministic test cases."""
    rng = random.Random(seed)
    n = rng.randint(n_min, n_max)
    max_edges = n * (n - 1) // 2
    m = min(max_edges, max(n - 1, int(n * density)))
    graph = erdos_renyi(n, m, rng=rng)
    return ensure_connected(graph, rng=rng)


# ---------------------------------------------------------------------------
# Perf summary (bench-smoke rows surfaced at the end of the run)
# ---------------------------------------------------------------------------
#: Rows recorded via the ``perf_record`` fixture; the terminal-summary
#: hook prints them so a plain ``pytest -q`` run still surfaces the
#: serving qps/p99 numbers CI watches.
_PERF_ROWS: list[dict] = []

#: Bench-vs-baseline findings recorded via ``bench_delta_record`` (the
#: ``perf``-marked gate tests); printed as a delta table at the end.
_BENCH_DELTAS: list[dict] = []


@pytest.fixture
def perf_record():
    """A callable tests use to report perf rows (qps, p99, ...)."""
    return _PERF_ROWS.append


@pytest.fixture
def bench_delta_record():
    """A callable the perf-gate tests use to report bench-vs-baseline
    findings (:mod:`repro.bench.compare` dicts)."""
    return _BENCH_DELTAS.extend


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if _PERF_ROWS:
        terminalreporter.section("perf summary (recorded by tests)")
        for row in _PERF_ROWS:
            parts = [f"{k}={v}" for k, v in row.items()]
            terminalreporter.write_line("  " + "  ".join(parts))
    if _BENCH_DELTAS:
        from repro.bench.compare import render_report

        terminalreporter.section("bench vs committed baselines")
        terminalreporter.write_line(render_report(_BENCH_DELTAS))


# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------
@pytest.fixture
def path_graph() -> DynamicGraph:
    """0 - 1 - 2 - 3 - 4."""
    return DynamicGraph.from_edges([(i, i + 1) for i in range(4)])


#: Landmarks of the paper's Figure 2 example.
FIGURE2_LANDMARKS = [0, 4, 10]

#: Edge inserted in Examples 4.2/4.5/4.7.
FIGURE2_INSERTION = (2, 5)


@pytest.fixture
def paper_figure2_graph() -> DynamicGraph:
    """A 16-vertex graph reproducing the paper's Figure 2 example exactly.

    The paper's figure layout is not machine-readable, so this graph is
    *reconstructed from the worked examples*: with landmarks 0, 4, 10 and
    the insertion (2, 5), it yields the paper's affected sets
    ``Λ_0 = {5, 8, 9, 10, 13, 14}``, ``Λ_10 = {0, 1, 2}``, ``Λ_4 = ∅``
    (Example 4.2), repairs exactly {5, 9} plus the highway entry for 10
    with {8, 13, 14} covered (Example 4.7, landmark 0), and repairs
    {2} plus the highway entry for 0 with 1 covered (landmark 10).
    """
    edges = [
        (0, 1), (0, 2), (0, 3), (2, 4), (3, 12), (4, 5), (4, 6), (4, 7),
        (4, 12), (5, 9), (5, 10), (7, 11), (8, 9), (8, 10), (10, 13),
        (10, 14), (10, 15), (11, 15), (12, 15), (13, 14),
    ]
    return DynamicGraph.from_edges(edges, num_vertices=16)
