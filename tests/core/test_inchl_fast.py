"""Tests for the vectorized IncHL+ update engine (fast path).

The contract under test is byte-identity: every fast-path operation must
leave the labelling exactly equal to what the sequential Phase A/B/C
implementation produces, including the update statistics.
"""

import random

import pytest

from repro.core.construction import build_hcl
from repro.core.dynamic import DynamicHCL
from repro.core.inchl import apply_edge_insertion
from repro.core.inchl_fast import FastUpdateEngine
from repro.core.validation import check_matches_rebuild, check_query_exactness
from repro.exceptions import InvariantViolationError
from repro.graph.generators import grid_graph, ring_of_cliques
from repro.landmarks.selection import top_degree_landmarks

from tests.conftest import non_edges, random_connected_graph


def stats_tuple(stats):
    return (
        stats.affected_per_landmark,
        stats.affected_union,
        stats.entries_added,
        stats.entries_modified,
        stats.entries_removed,
        stats.highway_updates,
    )


class TestEngineDirect:
    def test_single_insertion_matches_sequential(self):
        for seed in (0, 1, 2):
            g_fast = random_connected_graph(seed, n_min=15, n_max=22)
            g_ref = g_fast.copy()
            landmarks = top_degree_landmarks(g_fast, 4)
            hcl_fast = build_hcl(g_fast, landmarks)
            hcl_ref = build_hcl(g_ref, landmarks)
            engine = FastUpdateEngine(g_fast, hcl_fast)
            for edge in non_edges(g_fast)[:8]:
                g_fast.add_edge(*edge)
                g_ref.add_edge(*edge)
                fast_stats = engine.insert_edge(*edge)
                ref_stats = apply_edge_insertion(g_ref, hcl_ref, *edge)
                assert hcl_fast == hcl_ref
                assert stats_tuple(fast_stats) == stats_tuple(ref_stats)

    def test_batch_insertion_matches_batch_reference(self):
        g_fast = random_connected_graph(5, n_min=14, n_max=20)
        g_ref = g_fast.copy()
        landmarks = top_degree_landmarks(g_fast, 4)
        hcl_fast = build_hcl(g_fast, landmarks)
        ref = DynamicHCL(g_ref, build_hcl(g_ref, landmarks))
        engine = FastUpdateEngine(g_fast, hcl_fast)
        batch = non_edges(g_fast)[:7]
        for edge in batch:
            g_fast.add_edge(*edge)
        fast_stats = engine.insert_edges_batch(batch)
        ref_stats = ref.insert_edges_batch(batch)
        assert hcl_fast == ref.labelling
        assert stats_tuple(fast_stats) == stats_tuple(ref_stats)
        assert fast_stats.batch_size == len(batch)

    def test_batch_workers_identical_to_serial(self):
        g_par = random_connected_graph(9, n_min=12, n_max=18)
        g_ser = g_par.copy()
        landmarks = top_degree_landmarks(g_par, 3)
        hcl_par = build_hcl(g_par, landmarks)
        hcl_ser = build_hcl(g_ser, landmarks)
        batch = non_edges(g_par)[:6]
        engine_par = FastUpdateEngine(g_par, hcl_par, workers=2)
        engine_ser = FastUpdateEngine(g_ser, hcl_ser)
        for g in (g_par, g_ser):
            for edge in batch:
                g.add_edge(*edge)
        engine_par.insert_edges_batch(batch)
        engine_ser.insert_edges_batch(batch)
        assert hcl_par == hcl_ser

    def test_empty_batch_rejected(self):
        graph = grid_graph(3, 3)
        hcl = build_hcl(graph, [0, 8])
        engine = FastUpdateEngine(graph, hcl)
        with pytest.raises(InvariantViolationError):
            engine.insert_edges_batch([])

    def test_old_distance_exposes_dense_rows(self):
        graph = grid_graph(3, 3)
        hcl = build_hcl(graph, [0])
        engine = FastUpdateEngine(graph, hcl)
        assert engine.old_distance(0, 8) == 4
        assert engine.old_distance(0, 0) == 0

    def test_disconnected_components_merge(self):
        graph = ring_of_cliques(2, 4)
        graph.add_vertex(50)
        graph.add_vertex(51)
        graph.add_edge(50, 51)
        g_ref = graph.copy()
        landmarks = top_degree_landmarks(graph, 2)
        hcl_fast = build_hcl(graph, landmarks)
        hcl_ref = build_hcl(g_ref, landmarks)
        engine = FastUpdateEngine(graph, hcl_fast)
        assert engine.old_distance(landmarks[0], 50) == float("inf")
        graph.add_edge(0, 50)
        g_ref.add_edge(0, 50)
        engine.insert_edge(0, 50)
        apply_edge_insertion(g_ref, hcl_ref, 0, 50)
        assert hcl_fast == hcl_ref
        check_query_exactness(graph, hcl_fast)

    def test_matches_detects_staleness(self):
        graph = random_connected_graph(10, n_min=8, n_max=12)
        hcl = build_hcl(graph, [0, 1])
        engine = FastUpdateEngine(graph, hcl)
        assert engine.matches(graph, hcl)
        u, v = non_edges(graph)[0]
        graph.add_edge(u, v)  # mutated around the engine
        assert not engine.matches(graph, hcl)
        # extra isolated vertices are tolerated (serving pre-registration)
        graph.remove_edge(u, v)
        graph.add_vertex(999)
        assert engine.matches(graph, hcl)


class TestOracleKnob:
    def test_fast_flag_per_call_and_default(self):
        g_fast = random_connected_graph(3, n_min=12, n_max=16)
        g_ref = g_fast.copy()
        landmarks = top_degree_landmarks(g_fast, 3)
        fast = DynamicHCL.build(g_fast, landmarks=landmarks, fast_updates=True)
        ref = DynamicHCL.build(g_ref, landmarks=landmarks)
        edges = non_edges(g_fast)[:6]
        fast.insert_edge(*edges[0])
        ref.insert_edge(*edges[0])
        assert fast.labelling == ref.labelling
        # per-call override in both directions
        fast.insert_edge(*edges[1], fast=False)
        ref.insert_edge(*edges[1], fast=True)
        assert fast.labelling == ref.labelling
        fast.insert_edges_batch(edges[2:4])
        ref.insert_edges_batch(edges[2:4], fast=True)
        assert fast.labelling == ref.labelling
        check_matches_rebuild(g_fast, fast.labelling)

    def test_engine_cached_and_rebuilt_after_invalidation(self):
        graph = random_connected_graph(7, n_min=10, n_max=14)
        oracle = DynamicHCL.build(graph, num_landmarks=3, fast_updates=True)
        edges = non_edges(graph)[:4]
        oracle.insert_edge(*edges[0])
        first = oracle._fast_engine
        assert first is not None
        oracle.insert_edge(*edges[1])
        assert oracle._fast_engine is first  # reused
        u, v = edges[0]
        oracle.remove_edge(u, v)
        assert oracle._fast_engine is first  # deletions stay on the engine
        oracle.insert_edge(u, v, fast=False)  # slow-path mutation it can't see
        assert oracle._fast_engine is None  # invalidated
        oracle.insert_edge(*edges[2])
        assert oracle._fast_engine is not None
        check_matches_rebuild(graph, oracle.labelling)

    def test_fast_after_landmark_maintenance(self):
        graph = random_connected_graph(4, n_min=12, n_max=16)
        g_ref = graph.copy()
        landmarks = top_degree_landmarks(graph, 3)
        fast = DynamicHCL.build(graph, landmarks=landmarks, fast_updates=True)
        ref = DynamicHCL.build(g_ref, landmarks=landmarks)
        edges = non_edges(graph)[:4]
        fast.insert_edge(*edges[0])
        ref.insert_edge(*edges[0])
        promoted = sorted(set(graph.vertices()) - set(fast.landmarks))[0]
        fast.add_landmark(promoted)
        ref.add_landmark(promoted)
        fast.insert_edge(*edges[1])
        ref.insert_edge(*edges[1])
        assert fast.labelling == ref.labelling
        check_query_exactness(graph, fast.labelling)

    def test_insert_vertex_then_fast_insert(self):
        graph = random_connected_graph(8, n_min=9, n_max=12)
        g_ref = graph.copy()
        landmarks = top_degree_landmarks(graph, 3)
        fast = DynamicHCL.build(graph, landmarks=landmarks, fast_updates=True)
        ref = DynamicHCL.build(g_ref, landmarks=landmarks)
        edges = non_edges(graph)[:2]
        fast.insert_edge(*edges[0])
        ref.insert_edge(*edges[0])
        new_vertex = max(graph.vertices()) + 1
        fast.insert_vertex(new_vertex, [0, 1])
        ref.insert_vertex(new_vertex, [0, 1])
        fast.insert_edge(*edges[1])
        ref.insert_edge(*edges[1])
        assert fast.labelling == ref.labelling

    def test_long_random_stream_byte_identical(self):
        rng = random.Random(123)
        g_fast = random_connected_graph(21, n_min=18, n_max=26)
        g_ref = g_fast.copy()
        landmarks = top_degree_landmarks(g_fast, 5)
        fast = DynamicHCL.build(g_fast, landmarks=landmarks, fast_updates=True)
        ref = DynamicHCL.build(g_ref, landmarks=landmarks)
        for _ in range(40):
            candidates = non_edges(g_fast)
            if not candidates:
                break
            if rng.random() < 0.3:
                batch = rng.sample(candidates, min(4, len(candidates)))
                fast.insert_edges_batch(batch)
                ref.insert_edges_batch(batch)
            else:
                edge = rng.choice(candidates)
                fast.insert_edge(*edge)
                ref.insert_edge(*edge)
            assert fast.labelling == ref.labelling
        check_matches_rebuild(g_fast, fast.labelling)
        check_query_exactness(g_fast, fast.labelling)
