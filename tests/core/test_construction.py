"""Tests for static HCL construction: cover property, minimality,
order-independence, and hand-checked small cases."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.construction import build_hcl
from repro.core.validation import (
    check_cover_property,
    check_minimality,
)
from repro.exceptions import GraphError, VertexNotFoundError
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import grid_graph, ring_of_cliques

from tests.conftest import FIGURE2_LANDMARKS, random_connected_graph


class TestHandChecked:
    def test_path_graph_single_landmark(self, path_graph):
        gamma = build_hcl(path_graph, [0])
        # Only landmark: every other vertex keeps its exact entry.
        assert gamma.labels.as_dict() == {
            1: {0: 1}, 2: {0: 2}, 3: {0: 3}, 4: {0: 4}
        }

    def test_path_graph_two_landmarks(self, path_graph):
        gamma = build_hcl(path_graph, [0, 4])
        # Vertices between the landmarks see both without intermediates.
        assert gamma.labels.label(2) == {0: 2, 4: 2}
        assert gamma.highway.distance(0, 4) == 4
        # Landmarks carry no labels.
        assert gamma.labels.label(0) == {}
        assert gamma.labels.label(4) == {}

    def test_landmark_between_blocks_entry(self):
        # 0 - 1 - 2 with landmarks 0 and 1: every 0-2 shortest path passes
        # landmark 1, so vertex 2 must not carry a 0-entry.
        g = DynamicGraph.from_edges([(0, 1), (1, 2)])
        gamma = build_hcl(g, [0, 1])
        assert gamma.labels.label(2) == {1: 1}
        assert gamma.highway.distance(0, 1) == 1

    def test_alternative_landmark_free_path_keeps_entry(self):
        # square 0-1-2-3-0 plus landmark on one of the two paths: the other
        # path is landmark-free so the entry must stay (the ∃-rule matters).
        g = DynamicGraph.from_edges([(0, 1), (1, 2), (0, 3), (3, 2)])
        gamma = build_hcl(g, [0, 1])
        # 2 is reachable from 0 in 2 hops via landmark 1 AND via plain 3.
        assert gamma.labels.entry(2, 0) is None  # some path passes 1 -> removed
        # ... by the minimal rule an entry is dropped when ANY shortest path
        # contains another landmark.
        assert gamma.labels.entry(3, 0) == 1

    def test_disconnected_component_unlabelled(self):
        g = DynamicGraph.from_edges([(0, 1)], num_vertices=4)
        g.add_edge(2, 3)
        gamma = build_hcl(g, [0])
        assert gamma.labels.label(2) == {}
        assert gamma.labels.label(3) == {}

    def test_unreachable_landmark_pair_inf(self):
        g = DynamicGraph.from_edges([(0, 1), (2, 3)])
        gamma = build_hcl(g, [0, 2])
        assert gamma.highway.distance(0, 2) == float("inf")

    def test_figure2_highway(self, paper_figure2_graph):
        gamma = build_hcl(paper_figure2_graph, FIGURE2_LANDMARKS)
        assert gamma.highway.distance(0, 4) == 2
        assert gamma.highway.distance(4, 10) == 2
        assert gamma.highway.distance(0, 10) == 4


class TestValidation:
    def test_empty_landmarks_rejected(self, path_graph):
        with pytest.raises(GraphError):
            build_hcl(path_graph, [])

    def test_unknown_landmark_rejected(self, path_graph):
        with pytest.raises(VertexNotFoundError):
            build_hcl(path_graph, [99])

    def test_size_accounting(self):
        g = grid_graph(4, 4)
        gamma = build_hcl(g, [0, 15])
        assert gamma.label_entries == gamma.labels.total_entries
        assert gamma.size_bytes() == gamma.labels.size_bytes() + gamma.highway.size_bytes()
        assert gamma.average_label_size(16) == gamma.labels.total_entries / 16

    def test_average_label_size_bad_n(self):
        gamma = build_hcl(grid_graph(2, 2), [0])
        with pytest.raises(ValueError):
            gamma.average_label_size(0)


class TestProperties:
    @given(st.integers(0, 400))
    @settings(max_examples=40, deadline=None)
    def test_cover_property_random_graphs(self, seed):
        g = random_connected_graph(seed)
        k = 1 + seed % min(5, g.num_vertices)
        landmarks = sorted(g.vertices())[:k]
        gamma = build_hcl(g, landmarks)
        check_cover_property(g, gamma)

    @given(st.integers(0, 400))
    @settings(max_examples=40, deadline=None)
    def test_minimality_random_graphs(self, seed):
        g = random_connected_graph(seed)
        k = 1 + seed % min(5, g.num_vertices)
        landmarks = sorted(g.vertices())[-k:]
        gamma = build_hcl(g, landmarks)
        check_minimality(g, gamma)

    @given(st.integers(0, 200), st.randoms(use_true_random=False))
    @settings(max_examples=20, deadline=None)
    def test_order_independence(self, seed, rng):
        """The minimal labelling is canonical: landmark order is irrelevant
        (the paper's order-independence property)."""
        g = random_connected_graph(seed)
        landmarks = sorted(g.vertices())[: min(5, g.num_vertices)]
        shuffled = list(landmarks)
        rng.shuffle(shuffled)
        a = build_hcl(g, landmarks)
        b = build_hcl(g, shuffled)
        assert a.labels == b.labels
        assert a.highway.as_dict() == b.highway.as_dict()

    def test_ring_of_cliques_labels_small(self):
        """Highway cover keeps labels tiny when landmarks dominate cuts."""
        g = ring_of_cliques(5, 4)
        landmarks = [0, 4, 8, 12, 16]  # one per clique
        gamma = build_hcl(g, landmarks)
        avg = gamma.average_label_size(g.num_vertices)
        assert avg <= len(landmarks)
