"""Tests for the fully-dynamic mixed insert/delete batch engine.

The contract is the same byte-identity the insert-only fast path ships
with, extended to deletions: every mixed batch applied through
``FastUpdateEngine.apply_mixed`` (and the ``DynamicHCL`` wrappers over
it) must leave the labelling exactly equal to a sequential replay —
inserts through IncHL+, deletes through DecHL — and must keep the
engine's dense per-landmark distance rows exact against BFS, including
after disconnections (rows go to unreachable, entries/highway rows are
dropped) and re-connections.
"""

import random

import pytest

from repro.core.construction import build_hcl
from repro.core.dechl import apply_edge_deletion_partial
from repro.core.dynamic import DynamicHCL
from repro.core.inchl import apply_edge_insertion
from repro.core.inchl_fast import FastUpdateEngine
from repro.core.validation import check_matches_rebuild, check_query_exactness
from repro.exceptions import GraphError, InvariantViolationError
from repro.graph.generators import grid_graph, ring_of_cliques
from repro.graph.traversal import bfs_distances
from repro.landmarks.selection import top_degree_landmarks

from tests.conftest import non_edges, random_connected_graph

UNREACH_SENTINEL = 2**30


def assert_rows_exact(engine, graph, landmarks):
    """The engine's dense distance rows must equal BFS on the live graph."""
    for k, r in enumerate(landmarks):
        table = bfs_distances(graph, r)
        row = engine._dist[k]
        for v in graph.vertices():
            i = engine._dyn.index(v)
            expected = table.get(v)
            if expected is None:
                assert row[i] >= UNREACH_SENTINEL, (r, v)
            else:
                assert row[i] == expected, (r, v)


def sequential_reference(graph, landmarks, inserts, deletes):
    """Inserts (IncHL+) then deletes (DecHL), one at a time."""
    hcl = build_hcl(graph, landmarks)
    for u, v in inserts:
        graph.add_edge(u, v)
        apply_edge_insertion(graph, hcl, u, v)
    for u, v in deletes:
        apply_edge_deletion_partial(graph, hcl, u, v)
    return hcl


class TestEngineMixed:
    def test_single_deletion_matches_dechl(self):
        for seed in (0, 3, 9):
            g_fast = random_connected_graph(seed, n_min=14, n_max=22, density=2.2)
            g_ref = g_fast.copy()
            landmarks = top_degree_landmarks(g_fast, 4)
            hcl_fast = build_hcl(g_fast, landmarks)
            hcl_ref = build_hcl(g_ref, landmarks)
            engine = FastUpdateEngine(g_fast, hcl_fast)
            rng = random.Random(seed)
            for _ in range(6):
                u, v = rng.choice(sorted(g_fast.edges()))
                g_fast.remove_edge(u, v)
                engine.remove_edge(u, v)
                apply_edge_deletion_partial(g_ref, hcl_ref, u, v)
                assert hcl_fast == hcl_ref
                assert_rows_exact(engine, g_fast, landmarks)

    def test_mixed_batch_matches_sequential_reference(self):
        for seed in (2, 5, 8):
            g_fast = random_connected_graph(seed, n_min=16, n_max=24, density=2.0)
            g_ref = g_fast.copy()
            landmarks = top_degree_landmarks(g_fast, 4)
            hcl_fast = build_hcl(g_fast, landmarks)
            engine = FastUpdateEngine(g_fast, hcl_fast)
            rng = random.Random(seed)
            inserts = non_edges(g_fast)[:5]
            deletes = rng.sample(sorted(g_fast.edges()), 4)
            for u, v in inserts:
                g_fast.add_edge(u, v)
            for u, v in deletes:
                g_fast.remove_edge(u, v)
            stats = engine.apply_mixed(inserts, deletes)
            hcl_ref = sequential_reference(g_ref, landmarks, inserts, deletes)
            assert hcl_fast == hcl_ref
            assert stats.batch_size == len(inserts) + len(deletes)
            assert_rows_exact(engine, g_fast, landmarks)
            check_query_exactness(g_fast, hcl_fast, num_pairs=40, rng=seed)

    def test_disconnection_drops_rows_and_entries(self):
        # A path graph: deleting any edge splits it, so the far side must
        # go unreachable in every landmark row on the cut side.
        from repro.core.query import query_distance

        graph = grid_graph(1, 8)
        hcl = build_hcl(graph, [0])
        engine = FastUpdateEngine(graph, hcl)
        graph.remove_edge(3, 4)
        stats = engine.remove_edge(3, 4)
        assert stats.disconnected == 4  # vertices 4..7 cut from landmark 0
        assert_rows_exact(engine, graph, [0])
        table = bfs_distances(graph, 0)
        for v in graph.vertices():
            assert query_distance(graph, hcl, 0, v) == table.get(v, float("inf"))
        # Reconnect: rows and labelling must snap back to exact.
        graph.add_edge(3, 4)
        engine.insert_edge(3, 4)
        assert_rows_exact(engine, graph, [0])
        check_matches_rebuild(graph, hcl)

    def test_churn_batch_delete_then_reinsert_via_oracle(self):
        oracle = DynamicHCL.build(grid_graph(3, 3), landmarks=[4])
        version = oracle.version
        stats = oracle.apply_events_batch(
            [("delete", (0, 1)), ("insert", (0, 1))], fast=True
        )
        # Net no-op: nothing repaired, but the epochs still advanced.
        assert stats.batch_size == 0
        assert oracle.version == version + 2
        assert oracle.graph.has_edge(0, 1)
        check_matches_rebuild(oracle.graph, oracle.labelling)

    def test_oracle_mixed_batch_matches_slow_route(self):
        for seed in (11, 12):
            graph = random_connected_graph(seed, n_min=15, n_max=22, density=2.2)
            fast = DynamicHCL.build(graph.copy(), num_landmarks=3)
            slow = DynamicHCL.build(graph.copy(), landmarks=list(fast.landmarks))
            rng = random.Random(seed)
            events = []
            sim = graph.copy()
            for _ in range(10):
                if rng.random() < 0.45 and sim.num_edges > 4:
                    u, v = rng.choice(sorted(sim.edges()))
                    sim.remove_edge(u, v)
                    events.append(("delete", (u, v)))
                else:
                    candidates = non_edges(sim)
                    if not candidates:
                        continue
                    u, v = rng.choice(candidates)
                    sim.add_edge(u, v)
                    events.append(("insert", (u, v)))
            fast.apply_events_batch(events, fast=True)
            slow.apply_events_batch(events, fast=False)
            assert fast.labelling == slow.labelling
            assert fast.version == slow.version
            assert sorted(fast.graph.edges()) == sorted(slow.graph.edges())

    def test_parallel_mixed_batch_is_byte_identical(self):
        graph = ring_of_cliques(4, 5)
        serial = DynamicHCL.build(graph.copy(), num_landmarks=4)
        parallel = DynamicHCL.build(graph.copy(), landmarks=list(serial.landmarks))
        rng = random.Random(42)
        inserts = non_edges(graph)[:6]
        deletes = rng.sample(sorted(graph.edges()), 5)
        events = [("insert", e) for e in inserts] + [("delete", e) for e in deletes]
        serial.apply_events_batch(events, workers=1, fast=True)
        parallel.apply_events_batch(events, workers=2, fast=True)
        assert serial.labelling == parallel.labelling

    def test_empty_mixed_batch_rejected(self):
        graph = grid_graph(3, 3)
        engine = FastUpdateEngine(graph, build_hcl(graph, [4]))
        with pytest.raises(InvariantViolationError):
            engine.apply_mixed([], [])

    def test_invalid_events_raise_before_mutation(self):
        oracle = DynamicHCL.build(grid_graph(3, 3), landmarks=[4])
        edges_before = sorted(oracle.graph.edges())
        version = oracle.version
        with pytest.raises(GraphError):
            oracle.apply_events_batch([("delete", (0, 7))], fast=True)  # absent
        with pytest.raises(GraphError):
            oracle.apply_events_batch([("insert", (0, 1))], fast=True)  # present
        with pytest.raises(GraphError):
            oracle.apply_events_batch([("insert", (3, 3))], fast=True)  # loop
        with pytest.raises(GraphError):
            oracle.apply_events_batch([("frob", (0, 1))], fast=True)  # kind
        assert sorted(oracle.graph.edges()) == edges_before
        assert oracle.version == version
        check_matches_rebuild(oracle.graph, oracle.labelling)

    def test_long_churn_stream_stays_exact(self):
        graph = random_connected_graph(99, n_min=18, n_max=26, density=2.0)
        oracle = DynamicHCL.build(graph, num_landmarks=3)
        reference = DynamicHCL.build(
            graph.copy(), landmarks=list(oracle.landmarks)
        )
        rng = random.Random(99)
        for step in range(8):
            events = []
            sim = oracle.graph.copy()
            for _ in range(rng.randint(1, 5)):
                if rng.random() < 0.4 and sim.num_edges > 4:
                    u, v = rng.choice(sorted(sim.edges()))
                    sim.remove_edge(u, v)
                    events.append(("delete", (u, v)))
                else:
                    candidates = non_edges(sim)
                    if not candidates:
                        continue
                    u, v = rng.choice(candidates)
                    sim.add_edge(u, v)
                    events.append(("insert", (u, v)))
            if not events:
                continue
            oracle.apply_events_batch(events, fast=True)
            reference.apply_events_batch(events, fast=False)
            assert oracle.labelling == reference.labelling
        engine = oracle._fast_engine
        assert engine is not None
        assert_rows_exact(engine, oracle.graph, list(oracle.landmarks))
