"""Tests for IncHL+ — the paper's core contribution.

The strongest properties verified here:

* **maintenance == rebuild** (Theorems 5.1 + 5.2 together): after any
  sequence of edge insertions, the maintained labelling is *identical* —
  entry for entry, highway cell for highway cell — to a from-scratch
  minimal construction on the final graph (the minimal labelling of a
  graph is canonical, so exact equality is the right check);
* **FindAffected == Lemma 4.3** against a brute-force BFS evaluation;
* the paper's Figure 2 worked example, reproduced exactly.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.construction import build_hcl
from repro.core.inchl import apply_edge_insertion, find_affected
from repro.core.query import landmark_distance
from repro.core.validation import (
    brute_force_affected,
    check_cover_property,
    check_matches_rebuild,
    check_minimality,
    check_query_exactness,
)
from repro.exceptions import InvariantViolationError
from repro.graph.dynamic_graph import DynamicGraph

from tests.conftest import (
    FIGURE2_INSERTION,
    FIGURE2_LANDMARKS,
    non_edges,
    random_connected_graph,
)


class TestPaperFigure2:
    """The worked example of Sections 4.1-4.2 (Examples 4.2, 4.5, 4.7)."""

    def test_affected_sets_match_paper(self, paper_figure2_graph):
        g = paper_figure2_graph
        gamma = build_hcl(g, FIGURE2_LANDMARKS)
        a, b = FIGURE2_INSERTION
        g.add_edge(a, b)
        stats = apply_edge_insertion(g, gamma, a, b)
        assert stats.affected_per_landmark[0] == 6   # {5, 8, 9, 10, 13, 14}
        assert stats.affected_per_landmark[4] == 0   # d(4,2) == d(4,5)
        assert stats.affected_per_landmark[10] == 3  # {0, 1, 2}

    def test_find_affected_exact_sets(self, paper_figure2_graph):
        g = paper_figure2_graph
        gamma = build_hcl(g, FIGURE2_LANDMARKS)
        g.add_edge(2, 5)
        # landmark 0: jump to 5 at depth d(0,2)+1 = 2
        search = find_affected(g, gamma, 0, anchor=2, root=5, anchor_dist=1)
        assert search.affected == {5, 8, 9, 10, 13, 14}
        assert search.new_dist == {5: 2, 9: 3, 10: 3, 8: 4, 13: 4, 14: 4}
        # landmark 10: jump to 2 at depth d(10,5)+1 = 2
        search10 = find_affected(g, gamma, 10, anchor=5, root=2, anchor_dist=1)
        assert search10.affected == {0, 1, 2}
        assert search10.new_dist == {2: 2, 0: 3, 1: 4}

    def test_repair_matches_example_4_7(self, paper_figure2_graph):
        g = paper_figure2_graph
        gamma = build_hcl(g, FIGURE2_LANDMARKS)
        before = gamma.labels.as_dict()
        g.add_edge(2, 5)
        apply_edge_insertion(g, gamma, 2, 5)
        after = gamma.labels
        # Landmark 0's repair: 5 and 9 get exact new entries...
        assert after.entry(5, 0) == 2
        assert after.entry(9, 0) == 3
        # ... the highway entry for affected landmark 10 is updated ...
        assert gamma.highway.distance(0, 10) == 3
        # ... and the covered vertices 8, 13, 14 carry no 0-entry.
        for v in (8, 13, 14):
            assert after.entry(v, 0) is None
        # Landmark 10's repair: 2 is repaired, 1 stays covered (via 0).
        assert after.entry(2, 10) == 2
        assert after.entry(1, 10) is None
        # Unaffected landmark 4: nothing about 4 changed anywhere.
        for v in g.vertices():
            assert after.entry(v, 4) == before.get(v, {}).get(4)

    def test_figure2_end_state_is_minimal_and_exact(self, paper_figure2_graph):
        g = paper_figure2_graph
        gamma = build_hcl(g, FIGURE2_LANDMARKS)
        g.add_edge(2, 5)
        apply_edge_insertion(g, gamma, 2, 5)
        check_cover_property(g, gamma)
        check_minimality(g, gamma)
        check_matches_rebuild(g, gamma)
        check_query_exactness(g, gamma)


class TestGuards:
    def test_edge_must_be_inserted_first(self, path_graph):
        gamma = build_hcl(path_graph, [0])
        with pytest.raises(InvariantViolationError):
            apply_edge_insertion(path_graph, gamma, 0, 4)

    def test_update_stats_bookkeeping(self, path_graph):
        gamma = build_hcl(path_graph, [0])
        path_graph.add_edge(0, 4)
        stats = apply_edge_insertion(path_graph, gamma, 0, 4)
        assert stats.edge == (0, 4)
        assert stats.total_affected == sum(stats.affected_per_landmark.values())
        assert stats.affected_union >= max(
            stats.affected_per_landmark.values(), default=0
        )
        assert stats.entries_modified + stats.entries_added > 0


class TestHandChecked:
    def test_path_shortcut(self, path_graph):
        gamma = build_hcl(path_graph, [0])
        path_graph.add_edge(0, 4)
        apply_edge_insertion(path_graph, gamma, 0, 4)
        assert gamma.labels.entry(4, 0) == 1
        assert gamma.labels.entry(3, 0) == 2
        check_matches_rebuild(path_graph, gamma)

    def test_equal_distance_no_change(self):
        # 1 and 2 are both at distance 1 from landmark 0; inserting (1, 2)
        # changes no labels at all.
        g = DynamicGraph.from_edges([(0, 1), (0, 2)])
        gamma = build_hcl(g, [0])
        before = gamma.labels.as_dict()
        g.add_edge(1, 2)
        stats = apply_edge_insertion(g, gamma, 1, 2)
        assert stats.affected_per_landmark == {0: 0}
        assert gamma.labels.as_dict() == before

    def test_connecting_components(self):
        g = DynamicGraph.from_edges([(0, 1)], num_vertices=4)
        g.add_edge(2, 3)
        gamma = build_hcl(g, [0])
        assert gamma.labels.label(2) == {}
        g.add_edge(1, 2)
        apply_edge_insertion(g, gamma, 1, 2)
        assert gamma.labels.entry(2, 0) == 2
        assert gamma.labels.entry(3, 0) == 3
        check_matches_rebuild(g, gamma)

    def test_connecting_components_with_landmark_inside(self):
        g = DynamicGraph.from_edges([(0, 1)], num_vertices=5)
        g.add_edge(2, 3)
        g.add_edge(3, 4)
        gamma = build_hcl(g, [0, 3])
        assert gamma.highway.distance(0, 3) == float("inf")
        g.add_edge(1, 2)
        apply_edge_insertion(g, gamma, 1, 2)
        assert gamma.highway.distance(0, 3) == 3
        check_matches_rebuild(g, gamma)

    def test_entry_removal_when_new_path_hits_landmark(self):
        # Path 0..4 with landmarks 0 and 3: vertex 4 initially reaches 0
        # only through 3 (no entry).  Inserting (0, 4) gives it a direct
        # landmark-free path: the entry must APPEAR.  Then the reverse
        # case: vertex 2's entry for 0 must survive.
        g = DynamicGraph.from_edges([(i, i + 1) for i in range(4)])
        gamma = build_hcl(g, [0, 3])
        assert gamma.labels.entry(4, 0) is None
        g.add_edge(0, 4)
        apply_edge_insertion(g, gamma, 0, 4)
        assert gamma.labels.entry(4, 0) == 1
        check_matches_rebuild(g, gamma)

    def test_covered_entry_appears_after_shortcut(self):
        # 0-1-2 plus landmark 5 adjacent to 0: vertex 2 reaches 5 only
        # through landmark 0 (no 5-entry).  Inserting (5, 2) creates a
        # landmark-free path so the 5-entry must appear with distance 1.
        g = DynamicGraph.from_edges([(0, 1), (1, 2), (5, 0)])
        gamma = build_hcl(g, [0, 5])
        assert gamma.labels.entry(2, 5) is None
        g.add_edge(5, 2)
        apply_edge_insertion(g, gamma, 5, 2)
        assert gamma.labels.entry(2, 5) == 1
        check_matches_rebuild(g, gamma)


class TestAffectedAgainstBruteForce:
    @given(st.integers(0, 500), st.randoms(use_true_random=False))
    @settings(max_examples=50, deadline=None)
    def test_affected_counts_match_lemma_4_3(self, seed, rng):
        g = random_connected_graph(seed, n_max=22)
        k = 1 + seed % min(4, g.num_vertices)
        landmarks = sorted(g.vertices(), key=lambda v: -g.degree(v))[:k]
        gamma = build_hcl(g, landmarks)
        candidates = non_edges(g)
        if not candidates:
            return
        a, b = rng.choice(candidates)
        g.add_edge(a, b)
        stats = apply_edge_insertion(g, gamma, a, b)
        for r in landmarks:
            expected = brute_force_affected(g, r, a, b)
            expected.discard(r)
            assert stats.affected_per_landmark[r] == len(expected), (
                f"landmark {r}: edge ({a},{b})"
            )

    @given(st.integers(0, 300), st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_new_distances_are_exact(self, seed, rng):
        from repro.graph.traversal import bfs_distances

        g = random_connected_graph(seed, n_max=20)
        landmarks = sorted(g.vertices())[:2]
        gamma = build_hcl(g, landmarks)
        candidates = non_edges(g)
        if not candidates:
            return
        a, b = rng.choice(candidates)
        r = landmarks[0]
        da = landmark_distance(gamma, r, a)
        db = landmark_distance(gamma, r, b)
        if da == db:
            return
        if da > db:
            a, b, da = b, a, db
        g.add_edge(a, b)
        search = find_affected(g, gamma, r, anchor=a, root=b, anchor_dist=da)
        truth = bfs_distances(g, r)
        for v, d in search.new_dist.items():
            assert truth[v] == d


class TestMaintenanceEqualsRebuild:
    @given(st.integers(0, 1000), st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_insertion_sequences(self, seed, rng):
        """THE theorem test: after up to 8 insertions the maintained
        labelling equals the canonical rebuild, and queries stay exact."""
        g = random_connected_graph(seed, n_max=20)
        k = 1 + seed % min(5, g.num_vertices)
        landmarks = sorted(g.vertices(), key=lambda v: -g.degree(v))[:k]
        gamma = build_hcl(g, landmarks)
        for _ in range(8):
            candidates = non_edges(g)
            if not candidates:
                break
            a, b = rng.choice(candidates)
            g.add_edge(a, b)
            apply_edge_insertion(g, gamma, a, b)
            check_matches_rebuild(g, gamma)
        check_query_exactness(g, gamma, num_pairs=50, rng=rng)

    @given(st.integers(0, 300), st.randoms(use_true_random=False))
    @settings(max_examples=20, deadline=None)
    def test_insertions_into_disconnected_graph(self, seed, rng):
        """Start from a forest of components and merge them online."""
        from repro.graph.generators import erdos_renyi

        rng2 = rng
        g = erdos_renyi(16, 10, rng=seed)  # likely disconnected
        landmarks = sorted(g.vertices(), key=lambda v: -g.degree(v))[:3]
        gamma = build_hcl(g, landmarks)
        for _ in range(10):
            candidates = non_edges(g)
            if not candidates:
                break
            a, b = rng2.choice(candidates)
            g.add_edge(a, b)
            apply_edge_insertion(g, gamma, a, b)
            check_matches_rebuild(g, gamma)

    def test_long_sequence_single_graph(self):
        """One deep sequence (30 insertions) with full validation at end."""
        import random

        rng = random.Random(99)
        g = random_connected_graph(31, n_max=25)
        landmarks = sorted(g.vertices(), key=lambda v: -g.degree(v))[:4]
        gamma = build_hcl(g, landmarks)
        for _ in range(30):
            candidates = non_edges(g)
            if not candidates:
                break
            a, b = rng.choice(candidates)
            g.add_edge(a, b)
            apply_edge_insertion(g, gamma, a, b)
        check_cover_property(g, gamma)
        check_minimality(g, gamma)
        check_matches_rebuild(g, gamma)
        check_query_exactness(g, gamma)
