"""Tests for batch edge insertion (one find/repair sweep per landmark).

The postcondition is identical to sequential IncHL+: the batch result must
equal both the sequentially maintained labelling and a from-scratch
minimal rebuild of the final graph.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.batch import (
    BatchUpdateStats,
    apply_edge_insertions_batch,
    find_affected_batch,
)
from repro.core.construction import build_hcl
from repro.core.inchl import apply_edge_insertion
from repro.core.validation import check_matches_rebuild, check_query_exactness
from repro.exceptions import InvariantViolationError
from repro.graph.dynamic_graph import DynamicGraph

from tests.conftest import non_edges, random_connected_graph


def path_graph(n):
    return DynamicGraph.from_edges([(i, i + 1) for i in range(n - 1)])


def run_batch(graph, landmarks, batch):
    """Apply ``batch`` via the batch algorithm; return (graph', labelling, stats)."""
    labelling = build_hcl(graph, landmarks)
    for a, b in batch:
        graph.add_edge(a, b)
    stats = apply_edge_insertions_batch(graph, labelling, batch)
    return labelling, stats


class TestEquivalence:
    def test_single_edge_batch_equals_sequential(self):
        graph = random_connected_graph(3)
        landmarks = sorted(graph.vertices())[:3]
        edge = non_edges(graph)[0]

        seq_graph = graph.copy()
        seq_labelling = build_hcl(seq_graph, landmarks)
        seq_graph.add_edge(*edge)
        seq_stats = apply_edge_insertion(seq_graph, seq_labelling, *edge)

        batch_labelling, batch_stats = run_batch(graph, landmarks, [edge])
        assert batch_labelling == seq_labelling
        assert batch_stats.affected_per_landmark == seq_stats.affected_per_landmark
        assert batch_stats.affected_union == seq_stats.affected_union

    @given(seed=st.integers(0, 10**6), batch_size=st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_batch_equals_rebuild(self, seed, batch_size):
        graph = random_connected_graph(seed)
        rng = random.Random(seed + 1)
        candidates = non_edges(graph)
        if not candidates:
            return
        batch = rng.sample(candidates, min(batch_size, len(candidates)))
        landmarks = sorted(graph.vertices(), key=graph.degree, reverse=True)[:3]
        labelling, _ = run_batch(graph, landmarks, batch)
        check_matches_rebuild(graph, labelling)

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_batch_equals_sequential(self, seed):
        graph = random_connected_graph(seed)
        rng = random.Random(seed + 2)
        candidates = non_edges(graph)
        if not candidates:
            return
        batch = rng.sample(candidates, min(4, len(candidates)))
        landmarks = sorted(graph.vertices())[:2]

        seq_graph = graph.copy()
        seq_labelling = build_hcl(seq_graph, landmarks)
        for a, b in batch:
            seq_graph.add_edge(a, b)
            apply_edge_insertion(seq_graph, seq_labelling, a, b)

        batch_labelling, _ = run_batch(graph, landmarks, batch)
        assert batch_labelling == seq_labelling

    def test_interacting_seeds_chain(self):
        """Shortcuts into a long path interact: the second edge's anchor
        distance drops because of the first — the case sequential IncHL+
        never sees and the bucket queue must resolve."""
        graph = path_graph(12)
        batch = [(0, 11), (0, 9), (5, 11)]
        labelling, _ = run_batch(graph, [0], batch)
        check_matches_rebuild(graph, labelling)
        check_query_exactness(graph, labelling)

    def test_edges_sharing_endpoint(self):
        graph = path_graph(10)
        batch = [(0, 5), (5, 9), (0, 9)]
        labelling, _ = run_batch(graph, [0, 9], batch)
        check_matches_rebuild(graph, labelling)

    def test_batch_into_disconnected_component(self):
        graph = DynamicGraph.from_edges([(0, 1), (1, 2), (3, 4), (4, 5)])
        labelling, _ = run_batch(graph.copy(), [0], [(2, 3), (0, 5)])
        # rebuild comparison needs the mutated graph; redo explicitly
        graph2 = DynamicGraph.from_edges([(0, 1), (1, 2), (3, 4), (4, 5)])
        labelling2 = build_hcl(graph2, [0])
        graph2.add_edge(2, 3)
        graph2.add_edge(0, 5)
        apply_edge_insertions_batch(graph2, labelling2, [(2, 3), (0, 5)])
        check_matches_rebuild(graph2, labelling2)

    def test_edge_inside_landmark_free_component(self):
        """Both endpoints unreachable from the landmark: no seeds at all
        (regression test for the inf + 1 <= inf seed guard)."""
        graph = DynamicGraph.from_edges([(0, 1), (2, 3), (4, 5)])
        labelling = build_hcl(graph, [0])
        graph.add_edge(3, 4)
        stats = apply_edge_insertions_batch(graph, labelling, [(3, 4)])
        assert stats.total_affected == 0
        check_matches_rebuild(graph, labelling)

    def test_many_landmarks(self):
        graph = random_connected_graph(41, n_min=15, n_max=25)
        batch = non_edges(graph)[:5]
        landmarks = sorted(graph.vertices())[:6]
        labelling, _ = run_batch(graph, landmarks, batch)
        check_matches_rebuild(graph, labelling)


class TestFindAffectedBatch:
    def test_no_seeds_yields_empty(self):
        graph = path_graph(5)
        labelling = build_hcl(graph, [0])
        search = find_affected_batch(graph, labelling, 0, [])
        assert search.num_affected == 0

    def test_single_seed_matches_single_edge_find(self):
        from repro.core.inchl import find_affected

        graph = path_graph(8)
        labelling = build_hcl(graph, [0])
        graph.add_edge(0, 6)
        single = find_affected(graph, labelling, 0, 0, 6, 0)
        batch = find_affected_batch(graph, labelling, 0, [(0, 6, 0)])
        assert batch.new_dist == single.new_dist


class TestInterface:
    def test_empty_batch_rejected(self):
        graph = path_graph(4)
        labelling = build_hcl(graph, [0])
        with pytest.raises(InvariantViolationError):
            apply_edge_insertions_batch(graph, labelling, [])

    def test_missing_edge_rejected(self):
        graph = path_graph(4)
        labelling = build_hcl(graph, [0])
        with pytest.raises(InvariantViolationError):
            apply_edge_insertions_batch(graph, labelling, [(0, 2)])

    def test_stats_shape(self):
        graph = path_graph(6)
        labelling = build_hcl(graph, [0, 5])
        graph.add_edge(0, 3)
        graph.add_edge(2, 5)
        stats = apply_edge_insertions_batch(graph, labelling, [(0, 3), (2, 5)])
        assert isinstance(stats, BatchUpdateStats)
        assert stats.batch_size == 2
        assert stats.edges == [(0, 3), (2, 5)]
        assert set(stats.affected_per_landmark) == {0, 5}
        assert stats.affected_union <= stats.total_affected
