"""Decremental updates for the directed and weighted variants."""

from hypothesis import given, settings, strategies as st

from repro.core.directed import DirectedHCL
from repro.core.weighted_hcl import WeightedHCL
from repro.graph.digraph import DynamicDiGraph
from repro.graph.traversal import INF, bfs_distances_directed, dijkstra_distances
from repro.graph.weighted import WeightedGraph

from tests.core.test_directed import _random_digraph
from tests.core.test_weighted_hcl import _WEIGHTS, _random_weighted


class TestDirectedDeletion:
    def test_deleting_shortcut_restores_long_route(self):
        g = DynamicDiGraph.from_edges([(0, 1), (1, 2), (2, 3), (0, 3)])
        oracle = DirectedHCL(g, landmarks=[0])
        assert oracle.query(0, 3) == 1
        relevant = oracle.remove_edge(0, 3)
        assert relevant["forward"] == [0]
        assert oracle.query(0, 3) == 3

    def test_disconnecting_deletion(self):
        g = DynamicDiGraph.from_edges([(0, 1), (1, 2)])
        oracle = DirectedHCL(g, landmarks=[0])
        oracle.remove_edge(1, 2)
        assert oracle.query(0, 2) == INF
        assert oracle.query(0, 1) == 1

    def test_irrelevant_deletion_touches_nothing(self):
        # arc 2->1 is never on a shortest path from 0 (0->1 is direct)
        g = DynamicDiGraph.from_edges([(0, 1), (0, 2), (2, 1)])
        oracle = DirectedHCL(g, landmarks=[0])
        relevant = oracle.remove_edge(2, 1)
        assert relevant == {"forward": [], "backward": []}
        assert oracle.query(0, 1) == 1

    @given(st.integers(0, 400), st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_mixed_directed_updates_match_rebuild(self, seed, rng):
        g = _random_digraph(seed, n_max=10)
        vertices = sorted(g.vertices())
        landmarks = vertices[:2]
        oracle = DirectedHCL(g, landmarks=landmarks)
        for _ in range(6):
            if rng.random() < 0.45 and g.num_edges > 1:
                u, v = rng.choice(list(g.edges()))
                oracle.remove_edge(u, v)
            else:
                candidates = [
                    (u, v)
                    for u in vertices
                    for v in vertices
                    if u != v and not g.has_edge(u, v)
                ]
                if not candidates:
                    continue
                u, v = rng.choice(candidates)
                oracle.insert_edge(u, v)
            fresh = DirectedHCL(g, landmarks=landmarks)
            assert oracle.forward_labels == fresh.forward_labels
            assert oracle.backward_labels == fresh.backward_labels
            assert oracle.highway.as_dict() == fresh.highway.as_dict()
        for u in vertices:
            truth = bfs_distances_directed(g, u, forward=True)
            for v in vertices:
                assert oracle.query(u, v) == truth.get(v, INF)


class TestWeightedDeletion:
    def test_deleting_shortcut(self):
        g = WeightedGraph.from_edges([(0, 1, 2.0), (1, 2, 2.0), (0, 2, 1.0)])
        oracle = WeightedHCL(g, landmarks=[0])
        assert oracle.query(0, 2) == 1.0
        relevant = oracle.remove_edge(0, 2)
        assert relevant == [0]
        assert oracle.query(0, 2) == 4.0

    def test_irrelevant_heavy_edge(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0), (0, 2, 1.0), (1, 2, 50.0)])
        oracle = WeightedHCL(g, landmarks=[0])
        assert oracle.remove_edge(1, 2) == []
        assert oracle.query(1, 2) == 2.0

    @given(st.integers(0, 400), st.randoms(use_true_random=False))
    @settings(max_examples=25, deadline=None)
    def test_mixed_weighted_updates_match_rebuild(self, seed, rng):
        g = _random_weighted(seed, n_max=10)
        vertices = sorted(g.vertices())
        landmarks = vertices[:2]
        oracle = WeightedHCL(g, landmarks=landmarks)
        for _ in range(5):
            if rng.random() < 0.45 and g.num_edges > 1:
                u, v, _w = rng.choice(list(g.edges()))
                oracle.remove_edge(u, v)
            else:
                candidates = [
                    (u, v)
                    for i, u in enumerate(vertices)
                    for v in vertices[i + 1 :]
                    if not g.has_edge(u, v)
                ]
                if not candidates:
                    continue
                u, v = rng.choice(candidates)
                oracle.insert_edge(u, v, rng.choice(_WEIGHTS))
            fresh = WeightedHCL(g, landmarks=landmarks)
            assert oracle.labels == fresh.labels
            assert oracle.highway.as_dict() == fresh.highway.as_dict()
        for u in vertices:
            truth = dijkstra_distances(g, u)
            for v in vertices:
                assert oracle.query(u, v) == truth.get(v, INF)
