"""Tests for the validation helpers themselves (they must catch breakage)."""

import pytest

from repro.core.construction import build_hcl
from repro.core.validation import (
    brute_force_affected,
    check_cover_property,
    check_matches_rebuild,
    check_minimality,
    check_query_exactness,
)
from repro.exceptions import InvariantViolationError
from repro.graph.generators import grid_graph


@pytest.fixture
def valid_setup():
    g = grid_graph(3, 3)
    return g, build_hcl(g, [0, 8])


class TestCheckersAcceptValid:
    def test_all_pass_on_fresh_build(self, valid_setup):
        g, gamma = valid_setup
        check_cover_property(g, gamma)
        check_minimality(g, gamma)
        check_query_exactness(g, gamma)
        check_matches_rebuild(g, gamma)

    def test_sampled_query_check(self, valid_setup):
        g, gamma = valid_setup
        check_query_exactness(g, gamma, num_pairs=10, rng=0)


class TestCheckersRejectCorruption:
    def test_cover_catches_wrong_distance(self, valid_setup):
        g, gamma = valid_setup
        v = next(iter(gamma.labels.vertices_with_labels()))
        r, d = next(iter(gamma.labels.label(v).items()))
        gamma.labels.set_entry(v, r, d + 1)
        with pytest.raises(InvariantViolationError, match="cover|minimality"):
            check_cover_property(g, gamma)

    def test_minimality_catches_extra_entry(self, valid_setup):
        g, gamma = valid_setup
        # grid centre 4: every 0-8 shortest path… pick a vertex without an
        # entry for landmark 0 and give it a (correct-distance) extra entry.
        from repro.graph.traversal import bfs_distances

        dist = bfs_distances(g, 0)
        target = None
        for v in g.vertices():
            if v not in (0, 8) and not gamma.labels.has_entry(v, 0):
                target = v
                break
        if target is None:
            pytest.skip("no pruned entry in this labelling")
        gamma.labels.set_entry(target, 0, dist[target])
        with pytest.raises(InvariantViolationError, match="minimality"):
            check_minimality(g, gamma)

    def test_minimality_catches_missing_entry(self, valid_setup):
        g, gamma = valid_setup
        v = next(iter(gamma.labels.vertices_with_labels()))
        r = next(iter(gamma.labels.label(v)))
        gamma.labels.remove_entry(v, r)
        with pytest.raises(InvariantViolationError):
            check_minimality(g, gamma)

    def test_minimality_catches_landmark_entry(self, valid_setup):
        g, gamma = valid_setup
        gamma.labels.set_entry(0, 8, 4)
        with pytest.raises(InvariantViolationError, match="landmark"):
            check_minimality(g, gamma)

    def test_rebuild_catches_label_drift(self, valid_setup):
        g, gamma = valid_setup
        v = next(iter(gamma.labels.vertices_with_labels()))
        r = next(iter(gamma.labels.label(v)))
        gamma.labels.remove_entry(v, r)
        with pytest.raises(InvariantViolationError, match="labels differ"):
            check_matches_rebuild(g, gamma)

    def test_rebuild_catches_highway_drift(self, valid_setup):
        g, gamma = valid_setup
        gamma.highway.set_distance(0, 8, 2)
        with pytest.raises(InvariantViolationError, match="highway"):
            check_matches_rebuild(g, gamma)

    def test_query_check_catches_corruption(self, valid_setup):
        g, gamma = valid_setup
        for v in list(gamma.labels.vertices_with_labels()):
            for r, d in list(gamma.labels.label(v).items()):
                gamma.labels.set_entry(v, r, max(0, d - 1))
        with pytest.raises(InvariantViolationError):
            check_query_exactness(g, gamma)


class TestBruteForceAffected:
    def test_simple_path(self, path_graph):
        path_graph.add_edge(0, 4)
        affected = brute_force_affected(path_graph, 0, 0, 4)
        assert affected == {3, 4}

    def test_no_affected_on_parallel_edge(self):
        from repro.graph.dynamic_graph import DynamicGraph

        g = DynamicGraph.from_edges([(0, 1), (0, 2)])
        g.add_edge(1, 2)
        affected = brute_force_affected(g, 0, 1, 2)
        assert affected == set()
