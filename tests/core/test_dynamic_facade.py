"""Tests for the DynamicHCL user-facing oracle."""

import pytest

from repro.core.dynamic import DynamicHCL
from repro.core.validation import check_matches_rebuild, check_query_exactness
from repro.exceptions import EdgeExistsError, GraphError
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import grid_graph
from repro.graph.traversal import INF

from tests.conftest import random_connected_graph


class TestBuild:
    def test_build_with_count(self):
        oracle = DynamicHCL.build(grid_graph(4, 4), num_landmarks=3)
        assert len(oracle.landmarks) == 3

    def test_build_with_explicit_landmarks(self):
        oracle = DynamicHCL.build(grid_graph(3, 3), landmarks=[0, 8])
        assert oracle.landmarks == [0, 8]

    def test_build_with_strategy(self):
        g = grid_graph(4, 4)
        oracle = DynamicHCL.build(g, num_landmarks=4, strategy="random", rng=3)
        assert len(oracle.landmarks) == 4

    def test_build_unknown_strategy(self):
        with pytest.raises(GraphError):
            DynamicHCL.build(grid_graph(2, 2), num_landmarks=1, strategy="nope")

    def test_graph_is_shared_by_reference(self):
        g = grid_graph(3, 3)
        oracle = DynamicHCL.build(g, num_landmarks=1)
        assert oracle.graph is g


class TestQueries:
    def test_query_and_bound(self):
        oracle = DynamicHCL.build(grid_graph(3, 3), landmarks=[4])
        assert oracle.query(0, 8) == 4
        assert oracle.distance_bound(0, 8) >= oracle.query(0, 8)

    def test_bound_trivial_cases(self):
        oracle = DynamicHCL.build(grid_graph(3, 3), landmarks=[4])
        assert oracle.distance_bound(3, 3) == 0
        assert oracle.distance_bound(4, 0) == 2  # landmark endpoint is exact

    def test_disconnected_query(self):
        g = DynamicGraph.from_edges([(0, 1)], num_vertices=3)
        oracle = DynamicHCL.build(g, landmarks=[0])
        assert oracle.query(0, 2) == INF


class TestUpdates:
    def test_insert_edge_updates_labels_and_queries(self):
        oracle = DynamicHCL.build(grid_graph(3, 3), landmarks=[4])
        assert oracle.query(0, 8) == 4
        stats = oracle.insert_edge(0, 8)
        assert oracle.query(0, 8) == 1
        assert stats.edge == (0, 8)

    def test_duplicate_insert_rejected(self):
        oracle = DynamicHCL.build(grid_graph(2, 2), landmarks=[0])
        with pytest.raises(EdgeExistsError):
            oracle.insert_edge(0, 1)

    def test_insert_vertex(self):
        oracle = DynamicHCL.build(grid_graph(3, 3), landmarks=[4])
        stats_list = oracle.insert_vertex(100, [0, 8])
        assert len(stats_list) == 2
        assert oracle.query(100, 4) == 3  # 100-0-1-4 (or 100-8-5-4)
        check_matches_rebuild(oracle.graph, oracle.labelling)

    def test_insert_isolated_vertex(self):
        oracle = DynamicHCL.build(grid_graph(2, 2), landmarks=[0])
        oracle.insert_vertex(50, [])
        assert oracle.query(50, 0) == INF
        check_matches_rebuild(oracle.graph, oracle.labelling)

    def test_remove_edge_roundtrip(self):
        oracle = DynamicHCL.build(grid_graph(3, 3), landmarks=[0, 8])
        d_before = oracle.query(2, 6)
        oracle.insert_edge(2, 6)
        assert oracle.query(2, 6) == 1
        oracle.remove_edge(2, 6)
        assert oracle.query(2, 6) == d_before
        check_matches_rebuild(oracle.graph, oracle.labelling)

    def test_size_accounting_stable_under_updates(self):
        """IncHL+ keeps sizes minimal: after random updates, size equals
        that of a fresh build (the paper's 'labelling sizes remain stable'
        observation in its strongest form)."""
        import random

        rng = random.Random(5)
        g = random_connected_graph(77, n_max=20)
        oracle = DynamicHCL.build(g, num_landmarks=3)
        for _ in range(10):
            candidates = [
                (u, v)
                for u in g.vertices()
                for v in g.vertices()
                if u < v and not g.has_edge(u, v)
            ]
            if not candidates:
                break
            u, v = rng.choice(candidates)
            oracle.insert_edge(u, v)
        from repro.core.construction import build_hcl

        fresh = build_hcl(g, oracle.landmarks)
        assert oracle.label_entries == fresh.labels.total_entries
        assert oracle.size_bytes() == fresh.labels.size_bytes() + fresh.highway.size_bytes()

    def test_queries_exact_after_mixed_updates(self):
        import random

        rng = random.Random(17)
        g = random_connected_graph(123, n_max=18)
        oracle = DynamicHCL.build(g, num_landmarks=2)
        for step in range(12):
            if step % 3 == 2 and g.num_edges > 1:
                u, v = rng.choice(list(g.edges()))
                oracle.remove_edge(u, v)
            else:
                candidates = [
                    (u, v)
                    for u in g.vertices()
                    for v in g.vertices()
                    if u < v and not g.has_edge(u, v)
                ]
                if not candidates:
                    continue
                u, v = rng.choice(candidates)
                oracle.insert_edge(u, v)
        check_query_exactness(g, oracle.labelling, num_pairs=60, rng=rng)
