"""Model-based property tests for the core data structures.

LabelStore and Highway are the two mutable stores every algorithm in the
library leans on; here hypothesis drives them through random operation
sequences against trivially-correct dict models, and random labellings
through the serialization round-trip.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.construction import build_hcl
from repro.core.highway import Highway
from repro.core.labels import LabelStore
from repro.exceptions import NotALandmarkError
from repro.graph.traversal import INF
from repro.utils.serialization import load_labelling, save_labelling

from tests.conftest import random_connected_graph

# One operation: (op, vertex, landmark, distance)
_ops = st.lists(
    st.tuples(
        st.sampled_from(["set", "remove", "clear_landmark"]),
        st.integers(0, 9),
        st.integers(0, 4),
        st.integers(0, 20),
    ),
    max_size=40,
)


class TestLabelStoreModel:
    @given(ops=_ops)
    @settings(max_examples=60, deadline=None)
    def test_matches_dict_model(self, ops):
        store = LabelStore()
        model: dict[int, dict[int, int]] = {}
        for op, v, r, d in ops:
            if op == "set":
                store.set_entry(v, r, d)
                model.setdefault(v, {})[r] = d
            elif op == "remove":
                removed = store.remove_entry(v, r)
                assert removed == (r in model.get(v, {}))
                if removed:
                    del model[v][r]
                    if not model[v]:
                        del model[v]
            else:  # clear_landmark
                cleared = store.clear_landmark(r)
                expected = sum(1 for lbl in model.values() if r in lbl)
                assert cleared == expected
                for v2 in list(model):
                    model[v2].pop(r, None)
                    if not model[v2]:
                        del model[v2]
        assert store.as_dict() == model
        assert store.total_entries == sum(len(lbl) for lbl in model.values())
        for v2, lbl in model.items():
            assert store.label(v2) == lbl
            assert store.label_size(v2) == len(lbl)
        # Copies are independent.
        clone = store.copy()
        clone.set_entry(99, 0, 1)
        assert not store.has_entry(99, 0)

    @given(ops=_ops)
    @settings(max_examples=30, deadline=None)
    def test_equality_follows_content(self, ops):
        a = LabelStore()
        b = LabelStore()
        for op, v, r, d in ops:
            if op == "set":
                a.set_entry(v, r, d)
                b.set_entry(v, r, d)
        assert a == b
        b.set_entry(50, 0, 1)
        assert a != b


_highway_ops = st.lists(
    st.tuples(
        st.sampled_from(["set", "remove", "clear_row"]),
        st.integers(0, 4),
        st.integers(0, 4),
        st.integers(1, 30),
    ),
    max_size=30,
)


class TestHighwayModel:
    @given(ops=_highway_ops)
    @settings(max_examples=60, deadline=None)
    def test_matches_symmetric_model(self, ops):
        landmarks = [0, 1, 2, 3, 4]
        highway = Highway(landmarks)
        model: dict[tuple[int, int], float] = {}
        for op, r1, r2, d in ops:
            key = (min(r1, r2), max(r1, r2))
            if op == "set":
                if r1 == r2:
                    continue
                highway.set_distance(r1, r2, d)
                model[key] = d
            elif op == "remove":
                if r1 == r2:
                    continue
                removed = highway.remove_distance(r1, r2)
                assert removed == (key in model)
                model.pop(key, None)
            else:  # clear_row
                highway.clear_row(r1)
                for k in list(model):
                    if r1 in k:
                        del model[k]
        for r1 in landmarks:
            for r2 in landmarks:
                if r1 == r2:
                    assert highway.distance(r1, r2) == 0
                else:
                    key = (min(r1, r2), max(r1, r2))
                    expected = model.get(key, INF)
                    assert highway.distance(r1, r2) == expected
                    assert highway.distance(r2, r1) == expected

    def test_add_then_remove_landmark_roundtrip(self):
        highway = Highway([0, 1])
        highway.set_distance(0, 1, 3)
        highway.add_landmark(7)
        highway.set_distance(0, 7, 2)
        highway.set_distance(1, 7, 4)
        highway.remove_landmark(7)
        assert highway.landmarks == [0, 1]
        assert highway.distance(0, 1) == 3
        with pytest.raises(NotALandmarkError):
            highway.distance(0, 7)

    def test_diagonal_cannot_be_removed(self):
        highway = Highway([0, 1])
        with pytest.raises(ValueError):
            highway.remove_distance(0, 0)


class TestSerializationRoundTrip:
    @given(seed=st.integers(0, 10**6), num_landmarks=st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_random_labelling_roundtrips(self, seed, num_landmarks, tmp_path_factory):
        graph = random_connected_graph(seed)
        vertices = sorted(graph.vertices())
        labelling = build_hcl(graph, vertices[:num_landmarks])
        path = tmp_path_factory.mktemp("ser") / "labelling.json"
        save_labelling(labelling, path)
        restored = load_labelling(path)
        assert restored.highway == labelling.highway
        assert restored.labels == labelling.labels

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_disconnected_labelling_roundtrips(self, seed, tmp_path_factory):
        rng = random.Random(seed)
        from repro.graph.generators import erdos_renyi

        n = rng.randint(8, 20)
        graph = erdos_renyi(n, max(1, n // 2), rng=rng)
        labelling = build_hcl(graph, sorted(graph.vertices())[:2])
        path = tmp_path_factory.mktemp("ser") / "labelling.json.gz"
        save_labelling(labelling, path)
        assert load_labelling(path) == labelling
