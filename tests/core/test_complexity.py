"""Empirical checks of the paper's Section 5 complexity claims.

The analysis bounds IncHL+ by ``O(|R| · m · d · l)`` where ``m`` is the
number of affected vertices, and observes that in practice (i) ``m`` is
orders of magnitude smaller than ``|V|`` and (ii) the average label size
``l`` is significantly smaller than ``|R|``.  These tests pin those
empirical facts on the dataset stand-ins so a performance regression in
the pruning logic fails loudly.
"""

from repro.core.dynamic import DynamicHCL
from repro.workloads.datasets import build_dataset
from repro.workloads.updates import sample_edge_insertions


class TestAffectedSetsAreSmall:
    def test_affected_fraction_social(self):
        spec, graph = build_dataset("flickr-s", profile="smoke")
        oracle = DynamicHCL.build(graph, num_landmarks=spec.num_landmarks)
        fractions = []
        for u, v in sample_edge_insertions(graph, 30, rng=1):
            stats = oracle.insert_edge(u, v)
            fractions.append(stats.affected_union / graph.num_vertices)
        # median affected fraction stays well below 100% of V
        fractions.sort()
        assert fractions[len(fractions) // 2] < 0.25

    def test_web_graphs_have_larger_affected_sets(self):
        """The paper's Figure 1 / scalability observation: high-avg-distance
        (web) graphs see larger affected sets than social graphs."""

        def median_affected(name):
            spec, graph = build_dataset(name, profile="smoke")
            oracle = DynamicHCL.build(graph, num_landmarks=spec.num_landmarks)
            fractions = sorted(
                oracle.insert_edge(u, v).affected_union / graph.num_vertices
                for u, v in sample_edge_insertions(graph, 30, rng=2)
            )
            return fractions[len(fractions) // 2]

        assert median_affected("indochina-s") > median_affected("twitter-s")


class TestLabelSizes:
    def test_average_label_size_below_landmark_count(self):
        """The paper: 'l is also significantly smaller than |R|'."""
        for name in ("flickr-s", "indochina-s", "clueweb09-s"):
            spec, graph = build_dataset(name, profile="smoke")
            oracle = DynamicHCL.build(graph, num_landmarks=spec.num_landmarks)
            l_avg = oracle.label_entries / graph.num_vertices
            assert l_avg < spec.num_landmarks, name

    def test_labelling_much_smaller_than_pll(self):
        """HCL's raison d'être: far fewer entries than a 2-hop cover."""
        from repro.baselines.pll import PrunedLandmarkLabelling

        spec, graph = build_dataset("skitter-s", profile="smoke")
        oracle = DynamicHCL.build(graph.copy(), num_landmarks=spec.num_landmarks)
        pll = PrunedLandmarkLabelling(graph.copy())
        assert oracle.label_entries * 2 < pll.label_entries

    def test_size_stable_under_update_stream(self):
        """Table 1 narrative: IncHL+ sizes 'remain stable' under updates
        (within the minimal size of the evolving graph)."""
        spec, graph = build_dataset("flickr-s", profile="smoke")
        oracle = DynamicHCL.build(graph, num_landmarks=spec.num_landmarks)
        before = oracle.label_entries
        for u, v in sample_edge_insertions(graph, 40, rng=3):
            oracle.insert_edge(u, v)
        # inserting shortcuts can only shrink or mildly perturb the minimal
        # labelling; it must not balloon the way IncPLL's does
        assert oracle.label_entries <= before * 1.2


class TestUpdateWorkScalesWithAffected:
    def test_stats_account_for_all_label_changes(self):
        spec, graph = build_dataset("skitter-s", profile="smoke")
        oracle = DynamicHCL.build(graph, num_landmarks=spec.num_landmarks)
        for u, v in sample_edge_insertions(graph, 20, rng=4):
            stats = oracle.insert_edge(u, v)
            changes = (
                stats.entries_added
                + stats.entries_modified
                + stats.entries_removed
                + stats.highway_updates
            )
            # every label change touches an affected vertex of some landmark
            assert changes <= stats.total_affected
