"""Tests for the weighted HCL extension (paper Section 5)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.weighted_hcl import WeightedHCL
from repro.exceptions import GraphError, VertexNotFoundError
from repro.graph.traversal import INF, dijkstra_distances
from repro.graph.weighted import WeightedGraph

from tests.conftest import random_connected_graph

#: Exactly representable weights keep parent detection exact (module doc).
_WEIGHTS = [0.5, 1.0, 2.0, 2.5, 4.0]


def _random_weighted(seed: int, n_max: int = 14) -> WeightedGraph:
    import random

    rng = random.Random(seed)
    base = random_connected_graph(seed, n_max=n_max)
    g = WeightedGraph(base.vertices())
    for u, v in base.edges():
        g.add_edge(u, v, rng.choice(_WEIGHTS))
    return g


def _check_exact(g: WeightedGraph, oracle: WeightedHCL) -> None:
    for u in g.vertices():
        truth = dijkstra_distances(g, u)
        for v in g.vertices():
            assert oracle.query(u, v) == truth.get(v, INF), (u, v)


class TestConstruction:
    def test_weighted_path(self):
        g = WeightedGraph.from_edges([(0, 1, 2.0), (1, 2, 3.0)])
        oracle = WeightedHCL(g, landmarks=[0])
        assert oracle.labels.entry(2, 0) == 5.0
        assert oracle.query(0, 2) == 5.0

    def test_landmark_on_path_prunes_entry(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
        oracle = WeightedHCL(g, landmarks=[0, 1])
        assert oracle.labels.entry(2, 0) is None
        assert oracle.highway.distance(0, 1) == 1.0
        assert oracle.query(0, 2) == 2.0

    def test_weighted_detour_beats_hops(self):
        # direct heavy edge vs light two-hop detour
        g = WeightedGraph.from_edges([(0, 1, 10.0), (0, 2, 1.0), (2, 1, 1.0)])
        oracle = WeightedHCL(g, landmarks=[0])
        assert oracle.query(0, 1) == 2.0

    def test_sub_unit_weights(self):
        g = WeightedGraph.from_edges([(0, 1, 0.5), (1, 2, 0.5)])
        oracle = WeightedHCL(g, landmarks=[0, 2])
        assert oracle.highway.distance(0, 2) == 1.0

    def test_validation(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0)])
        with pytest.raises(VertexNotFoundError):
            WeightedHCL(g, landmarks=[5])
        with pytest.raises(GraphError):
            WeightedHCL(g, landmarks=[])

    @given(st.integers(0, 300))
    @settings(max_examples=25, deadline=None)
    def test_static_exactness(self, seed):
        g = _random_weighted(seed)
        vertices = sorted(g.vertices(), key=lambda v: -g.degree(v))
        k = 1 + seed % min(3, len(vertices))
        oracle = WeightedHCL(g, landmarks=vertices[:k])
        _check_exact(g, oracle)


class TestIncrementalWeighted:
    def test_shortcut_insertion(self):
        g = WeightedGraph.from_edges([(0, 1, 2.0), (1, 2, 2.0)])
        oracle = WeightedHCL(g, landmarks=[0])
        oracle.insert_edge(0, 2, 1.0)
        assert oracle.query(0, 2) == 1.0
        assert oracle.labels.entry(2, 0) == 1.0
        _check_exact(g, oracle)

    def test_heavy_edge_changes_nothing(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
        oracle = WeightedHCL(g, landmarks=[0])
        before = oracle.labels.as_dict()
        counts = oracle.insert_edge(0, 2, 100.0)
        assert counts == {0: 0}
        assert oracle.labels.as_dict() == before
        _check_exact(g, oracle)

    def test_equal_length_path_still_repairs_minimality(self):
        # new edge creates an equal-length path through landmark 1: the
        # 0-entry of vertex 2 must be dropped (∃-rule).
        g = WeightedGraph.from_edges([(0, 1, 1.0), (0, 2, 2.0)])
        oracle = WeightedHCL(g, landmarks=[0, 1])
        assert oracle.labels.entry(2, 0) == 2.0
        oracle.insert_edge(1, 2, 1.0)
        assert oracle.labels.entry(2, 0) is None
        _check_exact(g, oracle)

    def test_highway_update(self):
        g = WeightedGraph.from_edges([(0, 1, 4.0), (1, 2, 4.0)])
        oracle = WeightedHCL(g, landmarks=[0, 2])
        assert oracle.highway.distance(0, 2) == 8.0
        oracle.insert_edge(0, 2, 3.0)
        assert oracle.highway.distance(0, 2) == 3.0
        _check_exact(g, oracle)

    def test_insert_vertex_weighted(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0)])
        oracle = WeightedHCL(g, landmarks=[0])
        oracle.insert_vertex(5, [(0, 2.0), (1, 0.5)])
        assert oracle.query(5, 0) == 1.5
        _check_exact(g, oracle)

    @given(st.integers(0, 500), st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_insertion_sequences_stay_exact(self, seed, rng):
        g = _random_weighted(seed, n_max=12)
        vertices = sorted(g.vertices(), key=lambda v: -g.degree(v))
        k = 1 + seed % min(3, len(vertices))
        oracle = WeightedHCL(g, landmarks=vertices[:k])
        all_vertices = sorted(g.vertices())
        for _ in range(5):
            candidates = [
                (u, v)
                for i, u in enumerate(all_vertices)
                for v in all_vertices[i + 1 :]
                if not g.has_edge(u, v)
            ]
            if not candidates:
                break
            u, v = rng.choice(candidates)
            oracle.insert_edge(u, v, rng.choice(_WEIGHTS))
            _check_exact(g, oracle)

    @given(st.integers(0, 300), st.randoms(use_true_random=False))
    @settings(max_examples=20, deadline=None)
    def test_labels_match_rebuild(self, seed, rng):
        """Maintained weighted labelling equals a from-scratch rebuild."""
        g = _random_weighted(seed, n_max=10)
        vertices = sorted(g.vertices())
        landmarks = vertices[:2]
        oracle = WeightedHCL(g, landmarks=landmarks)
        for _ in range(4):
            candidates = [
                (u, v)
                for i, u in enumerate(vertices)
                for v in vertices[i + 1 :]
                if not g.has_edge(u, v)
            ]
            if not candidates:
                break
            u, v = rng.choice(candidates)
            oracle.insert_edge(u, v, rng.choice(_WEIGHTS))
            fresh = WeightedHCL(g, landmarks=landmarks)
            assert oracle.labels == fresh.labels
            assert oracle.highway.as_dict() == fresh.highway.as_dict()
