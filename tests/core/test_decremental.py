"""Tests for the decremental extension (the paper's future work)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.construction import build_hcl
from repro.core.decremental import (
    apply_edge_deletion,
    relevant_landmarks_for_deletion,
)
from repro.core.validation import (
    check_matches_rebuild,
    check_query_exactness,
)
from repro.exceptions import InvariantViolationError
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.traversal import INF

from tests.conftest import random_connected_graph


class TestRelevance:
    def test_edge_off_all_dags_skipped(self):
        # triangle hanging off a path: deleting the triangle's far edge
        # cannot touch shortest paths from landmark 0.
        g = DynamicGraph.from_edges([(0, 1), (1, 2), (1, 3), (2, 3)])
        gamma = build_hcl(g, [0])
        assert relevant_landmarks_for_deletion(gamma, 2, 3) == []

    def test_tree_edge_is_relevant(self, path_graph):
        gamma = build_hcl(path_graph, [0])
        assert relevant_landmarks_for_deletion(gamma, 2, 3) == [0]

    def test_unreachable_component_edge_skipped(self):
        g = DynamicGraph.from_edges([(0, 1), (2, 3)])
        gamma = build_hcl(g, [0])
        assert relevant_landmarks_for_deletion(gamma, 2, 3) == []


class TestDeletion:
    def test_missing_edge_rejected(self, path_graph):
        gamma = build_hcl(path_graph, [0])
        with pytest.raises(InvariantViolationError):
            apply_edge_deletion(path_graph, gamma, 0, 4)

    def test_disconnecting_deletion(self, path_graph):
        gamma = build_hcl(path_graph, [0])
        apply_edge_deletion(path_graph, gamma, 2, 3)
        assert gamma.labels.entry(4, 0) is None
        assert gamma.labels.entry(1, 0) == 1
        check_matches_rebuild(path_graph, gamma)

    def test_highway_becomes_unreachable(self, path_graph):
        gamma = build_hcl(path_graph, [0, 4])
        assert gamma.highway.distance(0, 4) == 4
        apply_edge_deletion(path_graph, gamma, 1, 2)
        assert gamma.highway.distance(0, 4) == INF
        check_matches_rebuild(path_graph, gamma)

    def test_deletion_can_add_entries(self):
        # Vertex 2 reaches landmark 0 only through landmark 3 (0-3-2), so
        # it carries no 0-entry.  Deleting (3, 2) reroutes via the
        # landmark-free detour 0-5-6-2: the entry must APPEAR — the case
        # that makes decremental updates genuinely hard (docs/DESIGN.md §4.4).
        g = DynamicGraph.from_edges([(0, 3), (3, 2), (0, 5), (5, 6), (6, 2)])
        gamma = build_hcl(g, [0, 3])
        assert gamma.labels.entry(2, 0) is None
        apply_edge_deletion(g, gamma, 3, 2)
        check_matches_rebuild(g, gamma)
        assert gamma.labels.entry(2, 0) == 3

    @given(st.integers(0, 500), st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_deletion_sequences_match_rebuild(self, seed, rng):
        g = random_connected_graph(seed, n_max=18)
        k = 1 + seed % min(4, g.num_vertices)
        landmarks = sorted(g.vertices(), key=lambda v: -g.degree(v))[:k]
        gamma = build_hcl(g, landmarks)
        for _ in range(6):
            edges = list(g.edges())
            if not edges:
                break
            u, v = rng.choice(edges)
            apply_edge_deletion(g, gamma, u, v)
            check_matches_rebuild(g, gamma)
        check_query_exactness(g, gamma, num_pairs=40, rng=rng)

    @given(st.integers(0, 300), st.randoms(use_true_random=False))
    @settings(max_examples=25, deadline=None)
    def test_mixed_insert_delete_sequences(self, seed, rng):
        """Fully dynamic: interleave insertions and deletions."""
        from repro.core.inchl import apply_edge_insertion
        from tests.conftest import non_edges

        g = random_connected_graph(seed, n_max=16)
        landmarks = sorted(g.vertices())[:3]
        gamma = build_hcl(g, landmarks)
        for _ in range(8):
            if rng.random() < 0.5 and g.num_edges > 1:
                u, v = rng.choice(list(g.edges()))
                apply_edge_deletion(g, gamma, u, v)
            else:
                candidates = non_edges(g)
                if not candidates:
                    continue
                u, v = rng.choice(candidates)
                g.add_edge(u, v)
                apply_edge_insertion(g, gamma, u, v)
            check_matches_rebuild(g, gamma)
