"""Tests for shortest-path extraction on top of the distance oracle."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.construction import build_hcl
from repro.core.inchl import apply_edge_insertion
from repro.core.paths import approximate_path_via_landmarks, shortest_path
from repro.core.query import query_distance, upper_bound
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import grid_graph

from tests.conftest import random_connected_graph


def assert_valid_path(graph, path):
    for u, v in zip(path, path[1:]):
        assert graph.has_edge(u, v), f"({u}, {v}) missing from path {path}"


class TestShortestPath:
    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_path_is_shortest(self, seed):
        graph = random_connected_graph(seed)
        vertices = sorted(graph.vertices())
        labelling = build_hcl(graph, vertices[:3])
        u, v = vertices[0], vertices[-1]
        path = shortest_path(graph, labelling, u, v)
        assert path[0] == u and path[-1] == v
        assert_valid_path(graph, path)
        assert len(path) - 1 == query_distance(graph, labelling, u, v)

    def test_same_vertex(self):
        graph = grid_graph(2, 2)
        labelling = build_hcl(graph, [0])
        assert shortest_path(graph, labelling, 3, 3) == [3]

    def test_adjacent_vertices(self):
        graph = grid_graph(2, 2)
        labelling = build_hcl(graph, [0])
        assert shortest_path(graph, labelling, 0, 1) == [0, 1]

    def test_disconnected_returns_none(self):
        graph = DynamicGraph.from_edges([(0, 1), (2, 3)])
        labelling = build_hcl(graph, [0])
        assert shortest_path(graph, labelling, 0, 3) is None

    def test_landmark_endpoints(self):
        graph = grid_graph(3, 3)
        labelling = build_hcl(graph, [0, 8])
        path = shortest_path(graph, labelling, 0, 8)
        assert len(path) - 1 == 4
        assert_valid_path(graph, path)

    def test_stays_exact_after_updates(self):
        graph = random_connected_graph(31, n_min=12, n_max=20)
        vertices = sorted(graph.vertices())
        labelling = build_hcl(graph, vertices[:2])
        from tests.conftest import non_edges

        a, b = non_edges(graph)[0]
        graph.add_edge(a, b)
        apply_edge_insertion(graph, labelling, a, b)
        path = shortest_path(graph, labelling, vertices[0], vertices[-1])
        assert len(path) - 1 == query_distance(
            graph, labelling, vertices[0], vertices[-1]
        )
        assert_valid_path(graph, path)


class TestApproximatePath:
    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_length_equals_upper_bound(self, seed):
        graph = random_connected_graph(seed)
        vertices = sorted(graph.vertices())
        landmarks = vertices[:2]
        labelling = build_hcl(graph, landmarks)
        non_landmarks = [v for v in vertices if v not in landmarks]
        if len(non_landmarks) < 2:
            return
        u, v = non_landmarks[0], non_landmarks[-1]
        path = approximate_path_via_landmarks(graph, labelling, u, v)
        bound = upper_bound(labelling, u, v)
        if path is None:
            assert bound == float("inf")
            return
        assert_valid_path(graph, path)
        assert path[0] == u and path[-1] == v
        assert len(path) - 1 == bound

    def test_exact_when_landmark_on_path(self):
        """Center landmark of a grid lies on a corner-to-corner path."""
        graph = grid_graph(3, 3)
        labelling = build_hcl(graph, [4])
        path = approximate_path_via_landmarks(graph, labelling, 0, 8)
        assert len(path) - 1 == query_distance(graph, labelling, 0, 8) == 4
        assert 4 in path

    def test_same_vertex(self):
        graph = grid_graph(2, 2)
        labelling = build_hcl(graph, [0])
        assert approximate_path_via_landmarks(graph, labelling, 2, 2) == [2]

    def test_landmark_endpoint(self):
        graph = grid_graph(3, 3)
        labelling = build_hcl(graph, [4])
        path = approximate_path_via_landmarks(graph, labelling, 4, 8)
        assert path[0] == 4 and path[-1] == 8
        assert len(path) - 1 == 2

    def test_unreachable_landmark_endpoint(self):
        graph = DynamicGraph.from_edges([(0, 1), (2, 3)])
        labelling = build_hcl(graph, [0])
        assert approximate_path_via_landmarks(graph, labelling, 0, 3) is None

    def test_no_common_labels_returns_none(self):
        graph = DynamicGraph.from_edges([(0, 1), (2, 3)])
        labelling = build_hcl(graph, [0])
        # vertex 3 has no labels at all (other component, no landmark)
        assert approximate_path_via_landmarks(graph, labelling, 1, 3) is None
