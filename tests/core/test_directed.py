"""Tests for the directed HCL extension (paper Section 5)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.directed import DirectedHCL, DirectedHighway
from repro.exceptions import GraphError, NotALandmarkError, VertexNotFoundError
from repro.graph.digraph import DynamicDiGraph
from repro.graph.traversal import INF, bfs_distances_directed

from tests.conftest import random_connected_graph


def _random_digraph(seed: int, n_max: int = 14) -> DynamicDiGraph:
    """Random digraph derived from a connected undirected base: each base
    edge yields one or both arc directions (seed-dependent)."""
    import random

    rng = random.Random(seed)
    base = random_connected_graph(seed, n_max=n_max)
    g = DynamicDiGraph(base.vertices())
    for u, v in base.edges():
        mode = rng.randrange(3)
        if mode == 0:
            g.add_edge(u, v)
        elif mode == 1:
            g.add_edge(v, u)
        else:
            g.add_edge(u, v)
            g.add_edge(v, u)
    return g


def _directed_truth(g: DynamicDiGraph, u: int) -> dict[int, int]:
    return bfs_distances_directed(g, u, forward=True)


def _check_exact(g: DynamicDiGraph, oracle: DirectedHCL, pairs=None) -> None:
    vertices = list(g.vertices())
    if pairs is None:
        pairs = [(u, v) for u in vertices for v in vertices]
    truth_cache = {}
    for u, v in pairs:
        if u not in truth_cache:
            truth_cache[u] = _directed_truth(g, u)
        assert oracle.query(u, v) == truth_cache[u].get(v, INF), (u, v)


class TestDirectedHighway:
    def test_asymmetric(self):
        h = DirectedHighway([1, 2])
        h.set_distance(1, 2, 3)
        assert h.distance(1, 2) == 3
        assert h.distance(2, 1) == INF

    def test_diagonal(self):
        h = DirectedHighway([1])
        assert h.distance(1, 1) == 0
        with pytest.raises(ValueError):
            h.set_distance(1, 1, 2)

    def test_non_landmark(self):
        h = DirectedHighway([1])
        with pytest.raises(NotALandmarkError):
            h.distance(1, 9)
        with pytest.raises(NotALandmarkError):
            h.row(9)
        with pytest.raises(NotALandmarkError):
            h.column(9)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            DirectedHighway([1, 1])

    def test_row_and_column_views(self):
        h = DirectedHighway([1, 2])
        h.set_distance(1, 2, 5)
        assert h.row(1) == {1: 0, 2: 5}
        assert h.column(2) == {1: 5, 2: 0}


class TestConstruction:
    def test_cycle(self):
        g = DynamicDiGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        oracle = DirectedHCL(g, landmarks=[0])
        assert oracle.query(0, 2) == 2
        assert oracle.query(2, 0) == 1
        assert oracle.query(1, 2) == 1

    def test_one_way_unreachable(self):
        g = DynamicDiGraph.from_edges([(0, 1), (1, 2)])
        oracle = DirectedHCL(g, landmarks=[0])
        assert oracle.query(0, 2) == 2
        assert oracle.query(2, 0) == INF

    def test_landmark_validation(self):
        g = DynamicDiGraph.from_edges([(0, 1)])
        with pytest.raises(VertexNotFoundError):
            DirectedHCL(g, landmarks=[9])
        with pytest.raises(GraphError):
            DirectedHCL(g, landmarks=[])

    def test_auto_landmark_selection(self):
        g = DynamicDiGraph.from_edges([(0, 1), (0, 2), (1, 0), (2, 0), (1, 2)])
        oracle = DirectedHCL(g, num_landmarks=1)
        assert oracle.landmarks == [0]  # highest total degree

    def test_label_direction_split(self):
        g = DynamicDiGraph.from_edges([(0, 1), (1, 2)])
        oracle = DirectedHCL(g, landmarks=[0])
        # forward labels reached from 0; backward labels reach 0 (none here)
        assert oracle.forward_labels.entry(2, 0) == 2
        assert oracle.backward_labels.entry(2, 0) is None

    def test_size_accounting(self):
        g = DynamicDiGraph.from_edges([(0, 1), (1, 2)])
        oracle = DirectedHCL(g, landmarks=[0])
        assert oracle.size_bytes() >= oracle.label_entries * 8

    def test_unknown_query_vertices(self):
        g = DynamicDiGraph.from_edges([(0, 1)])
        oracle = DirectedHCL(g, landmarks=[0])
        with pytest.raises(VertexNotFoundError):
            oracle.query(0, 42)

    @given(st.integers(0, 400))
    @settings(max_examples=30, deadline=None)
    def test_static_exactness_random_digraphs(self, seed):
        g = _random_digraph(seed)
        vertices = sorted(g.vertices())
        k = 1 + seed % min(3, len(vertices))
        oracle = DirectedHCL(g, landmarks=vertices[:k])
        _check_exact(g, oracle)


class TestIncrementalDirected:
    def test_arc_insertion_shortens_one_direction(self):
        g = DynamicDiGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        oracle = DirectedHCL(g, landmarks=[0])
        assert oracle.query(0, 3) == 3
        oracle.insert_edge(0, 3)
        assert oracle.query(0, 3) == 1
        assert oracle.query(3, 0) == 1  # unchanged direction
        _check_exact(g, oracle)

    def test_highway_updates_directed(self):
        g = DynamicDiGraph.from_edges([(0, 1), (1, 2), (2, 3)])
        oracle = DirectedHCL(g, landmarks=[0, 3])
        assert oracle.highway.distance(0, 3) == 3
        assert oracle.highway.distance(3, 0) == INF
        oracle.insert_edge(3, 0)
        assert oracle.highway.distance(3, 0) == 1
        assert oracle.highway.distance(0, 3) == 3
        _check_exact(g, oracle)

    def test_insert_vertex_directed(self):
        g = DynamicDiGraph.from_edges([(0, 1), (1, 0)])
        oracle = DirectedHCL(g, landmarks=[0])
        oracle.insert_vertex(5, out_neighbors=[0], in_neighbors=[1])
        assert oracle.query(5, 0) == 1
        assert oracle.query(0, 5) == 2  # 0 -> 1 -> 5
        _check_exact(g, oracle)

    @given(st.integers(0, 600), st.randoms(use_true_random=False))
    @settings(max_examples=50, deadline=None)
    def test_insertion_sequences_stay_exact(self, seed, rng):
        g = _random_digraph(seed, n_max=12)
        vertices = sorted(g.vertices())
        k = 1 + seed % min(3, len(vertices))
        oracle = DirectedHCL(g, landmarks=vertices[:k])
        for _ in range(6):
            candidates = [
                (u, v)
                for u in vertices
                for v in vertices
                if u != v and not g.has_edge(u, v)
            ]
            if not candidates:
                break
            a, b = rng.choice(candidates)
            oracle.insert_edge(a, b)
            _check_exact(g, oracle)

    @given(st.integers(0, 200), st.randoms(use_true_random=False))
    @settings(max_examples=20, deadline=None)
    def test_labels_match_rebuild(self, seed, rng):
        """Maintained directed labelling equals a from-scratch rebuild."""
        g = _random_digraph(seed, n_max=10)
        vertices = sorted(g.vertices())
        oracle = DirectedHCL(g, landmarks=vertices[:2])
        for _ in range(4):
            candidates = [
                (u, v)
                for u in vertices
                for v in vertices
                if u != v and not g.has_edge(u, v)
            ]
            if not candidates:
                break
            a, b = rng.choice(candidates)
            oracle.insert_edge(a, b)
            fresh = DirectedHCL(g, landmarks=vertices[:2])
            assert oracle.forward_labels == fresh.forward_labels
            assert oracle.backward_labels == fresh.backward_labels
            assert oracle.highway.as_dict() == fresh.highway.as_dict()


class TestDirectedShortestPath:
    def test_path_matches_query_and_arcs(self):
        graph = DynamicDiGraph.from_edges(
            [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)]
        )
        oracle = DirectedHCL(graph, landmarks=[0])
        path = oracle.shortest_path(0, 3)
        assert path[0] == 0 and path[-1] == 3
        assert len(path) - 1 == oracle.query(0, 3)
        for u, v in zip(path, path[1:]):
            assert graph.has_edge(u, v)

    def test_respects_direction(self):
        graph = DynamicDiGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        oracle = DirectedHCL(graph, landmarks=[0])
        assert oracle.shortest_path(0, 2) == [0, 1, 2]
        assert oracle.shortest_path(2, 0) == [2, 0]

    def test_unreachable_returns_none(self):
        graph = DynamicDiGraph.from_edges([(0, 1)])
        oracle = DirectedHCL(graph, landmarks=[0])
        assert oracle.shortest_path(1, 0) is None

    def test_same_vertex(self):
        graph = DynamicDiGraph.from_edges([(0, 1)])
        oracle = DirectedHCL(graph, landmarks=[0])
        assert oracle.shortest_path(1, 1) == [1]

    def test_exact_after_updates(self):
        import random

        rng = random.Random(8)
        graph = DynamicDiGraph(range(12))
        arcs = set()
        for _ in range(30):
            u, v = rng.randrange(12), rng.randrange(12)
            if u != v and (u, v) not in arcs:
                arcs.add((u, v))
                graph.add_edge(u, v)
        oracle = DirectedHCL(graph, num_landmarks=2)
        for _ in range(4):
            u, v = rng.randrange(12), rng.randrange(12)
            if u != v and not graph.has_edge(u, v):
                oracle.insert_edge(u, v)
        for u in range(12):
            for v in range(12):
                expected = oracle.query(u, v)
                path = oracle.shortest_path(u, v)
                if expected == float("inf"):
                    assert path is None
                else:
                    assert len(path) - 1 == expected
