"""Tests for DecHL — fine-grained decremental maintenance.

The strongest property: after any deletion (or interleaved
insert/delete sequence), the maintained labelling equals the canonical
minimal labelling of the final graph, exactly.  The affected set is also
checked against a brute-force evaluation of "some old shortest path
passes through the deleted edge".
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.construction import build_hcl
from repro.core.dechl import (
    DeletionStats,
    apply_edge_deletion_partial,
    apply_vertex_deletion,
    find_affected_deletion,
)
from repro.core.inchl import apply_edge_insertion
from repro.core.query import query_distance
from repro.core.validation import check_matches_rebuild, check_query_exactness
from repro.exceptions import InvariantViolationError, LabellingError
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.traversal import INF, bfs_distances

from tests.conftest import non_edges, random_connected_graph


def brute_force_deletion_affected(old_graph, r, a, b):
    """Λ_r per the deletion transpose of Lemma 4.3, on the *old* graph."""
    from_r = bfs_distances(old_graph, r)
    from_a = bfs_distances(old_graph, a)
    from_b = bfs_distances(old_graph, b)
    affected = set()
    ra, rb = from_r.get(a, INF), from_r.get(b, INF)
    for v in old_graph.vertices():
        rv = from_r.get(v, INF)
        if rv == INF:
            continue
        if ra + 1 + from_b.get(v, INF) == rv or rb + 1 + from_a.get(v, INF) == rv:
            affected.add(v)
    return affected


def path_graph(n):
    return DynamicGraph.from_edges([(i, i + 1) for i in range(n - 1)])


class TestSingleDeletion:
    def test_path_middle_edge_disconnects(self):
        graph = path_graph(6)
        labelling = build_hcl(graph, [0])
        apply_edge_deletion_partial(graph, labelling, 2, 3)
        assert not graph.has_edge(2, 3)
        check_matches_rebuild(graph, labelling)
        assert query_distance(graph, labelling, 0, 5) == INF
        assert query_distance(graph, labelling, 0, 2) == 2

    def test_redundant_edge_cheap(self):
        """Deleting one edge of a 4-cycle reroutes, never disconnects."""
        graph = DynamicGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        labelling = build_hcl(graph, [0])
        stats = apply_edge_deletion_partial(graph, labelling, 1, 2)
        check_matches_rebuild(graph, labelling)
        assert query_distance(graph, labelling, 0, 2) == 2

    def test_equal_level_edge_touches_nothing(self):
        """An edge between equal BFS levels lies on no shortest path."""
        graph = DynamicGraph.from_edges([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
        labelling = build_hcl(graph, [0])
        before = labelling.copy()
        stats = apply_edge_deletion_partial(graph, labelling, 1, 2)
        assert stats.total_affected == 0
        assert labelling == before
        check_matches_rebuild(graph, labelling)

    def test_landmark_adjacent_deletion(self):
        graph = path_graph(5)
        labelling = build_hcl(graph, [0, 4])
        apply_edge_deletion_partial(graph, labelling, 0, 1)
        check_matches_rebuild(graph, labelling)

    def test_highway_pair_removed_on_disconnect(self):
        graph = path_graph(4)
        labelling = build_hcl(graph, [0, 3])
        assert labelling.highway.distance(0, 3) == 3
        apply_edge_deletion_partial(graph, labelling, 1, 2)
        assert labelling.highway.distance(0, 3) == INF
        check_matches_rebuild(graph, labelling)

    def test_uncovering_adds_entries(self):
        """Deleting the only landmark-covered path must *add* entries —
        the case that makes decremental genuinely harder (module doc)."""
        # 0 (landmark) - 1 (landmark) - 2: vertex 2 covered by 1.
        # Removing (1, 2) leaves the detour 0 - 3 - 2 with no landmark.
        graph = DynamicGraph.from_edges([(0, 1), (1, 2), (0, 3), (3, 2)])
        labelling = build_hcl(graph, [0, 1])
        assert not labelling.labels.has_entry(2, 0)
        stats = apply_edge_deletion_partial(graph, labelling, 1, 2)
        assert labelling.labels.entry(2, 0) == 2
        assert stats.entries_added >= 1
        check_matches_rebuild(graph, labelling)

    def test_deletion_in_landmark_free_component(self):
        """Both endpoints unreachable from every landmark: no relevant
        landmark (regression test for the inf + 1 == inf level guard)."""
        graph = DynamicGraph.from_edges([(0, 1), (2, 3), (3, 4), (2, 4)])
        labelling = build_hcl(graph, [0])
        stats = apply_edge_deletion_partial(graph, labelling, 2, 3)
        assert stats.total_affected == 0
        check_matches_rebuild(graph, labelling)

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_random_deletion_matches_rebuild(self, seed):
        graph = random_connected_graph(seed)
        rng = random.Random(seed + 7)
        landmarks = sorted(graph.vertices(), key=graph.degree, reverse=True)[:3]
        labelling = build_hcl(graph, landmarks)
        edge = rng.choice(list(graph.edges()))
        apply_edge_deletion_partial(graph, labelling, *edge)
        check_matches_rebuild(graph, labelling)

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_affected_set_matches_brute_force(self, seed):
        graph = random_connected_graph(seed)
        rng = random.Random(seed + 9)
        r = sorted(graph.vertices())[0]
        labelling = build_hcl(graph, [r])
        a, b = rng.choice(list(graph.edges()))
        old = bfs_distances(graph, r)
        da, db = old.get(a, INF), old.get(b, INF)
        if abs(da - db) != 1:
            return  # irrelevant landmark: Λ_r = ∅ by construction
        if da > db:
            a, b = b, a
            da, db = db, da
        expected = brute_force_deletion_affected(graph, r, a, b)
        before = graph.copy()
        graph.remove_edge(a, b)
        search = find_affected_deletion(graph, labelling, r, a, b, int(db))
        assert search.affected == expected


class TestSequences:
    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_interleaved_inserts_and_deletes(self, seed):
        graph = random_connected_graph(seed, n_min=8, n_max=20)
        rng = random.Random(seed + 11)
        landmarks = sorted(graph.vertices())[:2]
        labelling = build_hcl(graph, landmarks)
        for _ in range(6):
            if rng.random() < 0.5:
                candidates = non_edges(graph)
                if not candidates:
                    continue
                a, b = rng.choice(candidates)
                graph.add_edge(a, b)
                apply_edge_insertion(graph, labelling, a, b)
            else:
                edges = list(graph.edges())
                if not edges:
                    continue
                a, b = rng.choice(edges)
                apply_edge_deletion_partial(graph, labelling, a, b)
        check_matches_rebuild(graph, labelling)
        check_query_exactness(graph, labelling, num_pairs=30, rng=seed)

    def test_delete_then_reinsert_roundtrip(self):
        graph = random_connected_graph(55)
        landmarks = sorted(graph.vertices())[:3]
        labelling = build_hcl(graph, landmarks)
        snapshot = labelling.copy()
        edge = next(iter(graph.edges()))
        apply_edge_deletion_partial(graph, labelling, *edge)
        graph.add_edge(*edge)
        apply_edge_insertion(graph, labelling, *edge)
        assert labelling == snapshot


class TestVertexDeletion:
    def test_matches_rebuild_after_removal(self):
        graph = random_connected_graph(19)
        landmarks = sorted(graph.vertices(), key=graph.degree, reverse=True)[:2]
        labelling = build_hcl(graph, landmarks)
        victim = next(
            v for v in sorted(graph.vertices()) if v not in labelling.landmark_set
        )
        apply_vertex_deletion(graph, labelling, victim)
        assert not graph.has_vertex(victim)
        check_matches_rebuild(graph, labelling)
        assert labelling.labels.label(victim) == {}

    def test_landmark_deletion_rejected(self):
        graph = path_graph(4)
        labelling = build_hcl(graph, [0])
        with pytest.raises(LabellingError):
            apply_vertex_deletion(graph, labelling, 0)


class TestInterface:
    def test_missing_edge_rejected(self):
        graph = path_graph(4)
        labelling = build_hcl(graph, [0])
        with pytest.raises(InvariantViolationError):
            apply_edge_deletion_partial(graph, labelling, 0, 3)

    def test_stats_shape(self):
        graph = path_graph(6)
        labelling = build_hcl(graph, [0, 5])
        stats = apply_edge_deletion_partial(graph, labelling, 2, 3)
        assert isinstance(stats, DeletionStats)
        assert stats.edge == (2, 3)
        assert set(stats.affected_per_landmark) == {0, 5}
        assert stats.affected_union <= stats.total_affected
        assert stats.total_affected > 0
