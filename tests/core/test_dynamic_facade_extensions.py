"""Tests for the DynamicHCL facade extensions (batch, decremental,
landmark maintenance, paths, fast construction)."""

import pytest

from repro.core.construction import build_hcl
from repro.core.dynamic import DynamicHCL
from repro.core.validation import check_matches_rebuild
from repro.exceptions import GraphError, LabellingError
from repro.graph.generators import grid_graph

from tests.conftest import non_edges, random_connected_graph


def make_oracle(seed=47, num_landmarks=2):
    graph = random_connected_graph(seed, n_min=12, n_max=20)
    return DynamicHCL.build(graph, num_landmarks=num_landmarks)


class TestConstructionModes:
    def test_csr_construction_equals_python(self):
        graph = random_connected_graph(8, n_min=12, n_max=20)
        python = DynamicHCL.build(graph.copy(), num_landmarks=3)
        csr = DynamicHCL.build(graph.copy(), num_landmarks=3, construction="csr")
        assert python.labelling == csr.labelling

    def test_unknown_construction_rejected(self):
        with pytest.raises(ValueError):
            DynamicHCL.build(grid_graph(2, 2), num_landmarks=1, construction="gpu")


class TestBatchInsert:
    def test_batch_matches_rebuild(self):
        oracle = make_oracle(seed=52)
        batch = non_edges(oracle.graph)[:4]
        stats = oracle.insert_edges_batch(batch)
        assert stats.batch_size == len(batch)
        for a, b in batch:
            assert oracle.graph.has_edge(a, b)
            assert oracle.query(a, b) == 1
        check_matches_rebuild(oracle.graph, oracle.labelling)

    def test_batch_equals_sequential_facade(self):
        seed = 61
        batch_oracle = make_oracle(seed)
        seq_oracle = DynamicHCL(
            batch_oracle.graph.copy(),
            build_hcl(batch_oracle.graph, batch_oracle.landmarks),
        )
        edges = non_edges(batch_oracle.graph)[:3]
        batch_oracle.insert_edges_batch(edges)
        seq_oracle.insert_edges(edges)
        assert batch_oracle.labelling == seq_oracle.labelling


class TestRemoveEdge:
    def test_partial_strategy_default(self):
        oracle = make_oracle(seed=71)
        edge = next(iter(oracle.graph.edges()))
        stats = oracle.remove_edge(*edge)
        assert not oracle.graph.has_edge(*edge)
        assert hasattr(stats, "affected_per_landmark")
        check_matches_rebuild(oracle.graph, oracle.labelling)

    def test_rebuild_strategy(self):
        oracle = make_oracle(seed=72)
        edge = next(iter(oracle.graph.edges()))
        oracle.remove_edge(*edge, strategy="rebuild")
        check_matches_rebuild(oracle.graph, oracle.labelling)

    def test_strategies_agree(self):
        seed = 73
        partial = make_oracle(seed)
        rebuild = DynamicHCL(
            partial.graph.copy(), build_hcl(partial.graph, partial.landmarks)
        )
        edge = sorted(partial.graph.edges())[0]
        partial.remove_edge(*edge, strategy="partial")
        rebuild.remove_edge(*edge, strategy="rebuild")
        assert partial.labelling == rebuild.labelling

    def test_unknown_strategy_rejected(self):
        oracle = make_oracle(seed=74)
        edge = next(iter(oracle.graph.edges()))
        with pytest.raises(GraphError):
            oracle.remove_edge(*edge, strategy="magic")


class TestRemoveVertex:
    def test_remove_plain_vertex(self):
        oracle = make_oracle(seed=81)
        victim = next(
            v
            for v in sorted(oracle.graph.vertices())
            if v not in oracle.labelling.landmark_set
        )
        oracle.remove_vertex(victim)
        assert not oracle.graph.has_vertex(victim)
        check_matches_rebuild(oracle.graph, oracle.labelling)

    def test_remove_landmark_vertex_requires_demotion(self):
        oracle = make_oracle(seed=82, num_landmarks=2)
        landmark = oracle.landmarks[0]
        with pytest.raises(LabellingError):
            oracle.remove_vertex(landmark)
        oracle.remove_landmark(landmark)
        oracle.remove_vertex(landmark)
        assert not oracle.graph.has_vertex(landmark)
        check_matches_rebuild(oracle.graph, oracle.labelling)


class TestLandmarkMaintenance:
    def test_add_and_remove_roundtrip(self):
        oracle = make_oracle(seed=91)
        snapshot = oracle.labelling.copy()
        extra = next(
            v
            for v in sorted(oracle.graph.vertices())
            if v not in oracle.labelling.landmark_set
        )
        oracle.add_landmark(extra)
        assert extra in oracle.labelling.landmark_set
        check_matches_rebuild(oracle.graph, oracle.labelling)
        oracle.remove_landmark(extra)
        assert oracle.labelling == snapshot


class TestPaths:
    def test_shortest_path_matches_query(self):
        oracle = make_oracle(seed=95)
        vertices = sorted(oracle.graph.vertices())
        u, v = vertices[0], vertices[-1]
        path = oracle.shortest_path(u, v)
        assert len(path) - 1 == oracle.query(u, v)

    def test_approximate_path_matches_bound(self):
        oracle = make_oracle(seed=96)
        vertices = [
            v
            for v in sorted(oracle.graph.vertices())
            if v not in oracle.labelling.landmark_set
        ]
        u, v = vertices[0], vertices[-1]
        path = oracle.approximate_path(u, v)
        assert len(path) - 1 == oracle.distance_bound(u, v)
