"""Tests for the label store (L)."""

import pytest

from repro.core.labels import LabelStore


class TestEntries:
    def test_empty_label(self):
        store = LabelStore()
        assert store.label(42) == {}
        assert store.entry(42, 0) is None
        assert not store.has_entry(42, 0)
        assert store.total_entries == 0

    def test_set_and_get(self):
        store = LabelStore()
        store.set_entry(5, 0, 3)
        assert store.entry(5, 0) == 3
        assert store.has_entry(5, 0)
        assert store.label_size(5) == 1

    def test_modify_keeps_count(self):
        store = LabelStore()
        store.set_entry(5, 0, 3)
        store.set_entry(5, 0, 2)
        assert store.total_entries == 1
        assert store.entry(5, 0) == 2

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            LabelStore().set_entry(1, 0, -1)

    def test_remove_entry(self):
        store = LabelStore()
        store.set_entry(5, 0, 3)
        assert store.remove_entry(5, 0) is True
        assert store.total_entries == 0
        assert store.label(5) == {}

    def test_remove_missing_entry(self):
        store = LabelStore()
        assert store.remove_entry(5, 0) is False
        store.set_entry(5, 1, 2)
        assert store.remove_entry(5, 0) is False
        assert store.total_entries == 1

    def test_empty_labels_reclaimed(self):
        store = LabelStore()
        store.set_entry(5, 0, 3)
        store.remove_entry(5, 0)
        assert len(store) == 0

    def test_clear_landmark(self):
        store = LabelStore()
        store.set_entry(1, 0, 1)
        store.set_entry(2, 0, 2)
        store.set_entry(2, 7, 3)
        removed = store.clear_landmark(0)
        assert removed == 2
        assert store.total_entries == 1
        assert store.entry(2, 7) == 3
        assert list(store.vertices_with_labels()) == [2]


class TestAccounting:
    def test_total_entries_across_vertices(self):
        store = LabelStore()
        store.set_entry(1, 0, 1)
        store.set_entry(2, 0, 2)
        store.set_entry(2, 3, 1)
        assert store.total_entries == 3
        assert sorted(store.vertices_with_labels()) == [1, 2]

    def test_size_bytes(self):
        store = LabelStore()
        store.set_entry(1, 0, 1)
        store.set_entry(2, 0, 2)
        assert store.size_bytes() == 16
        assert store.size_bytes(bytes_per_entry=4) == 8

    def test_items_view(self):
        store = LabelStore()
        store.set_entry(1, 0, 1)
        assert dict(store.items()) == {1: {0: 1}}

    def test_copy_independent(self):
        store = LabelStore()
        store.set_entry(1, 0, 1)
        clone = store.copy()
        clone.set_entry(1, 5, 2)
        assert store.total_entries == 1
        assert clone.total_entries == 2

    def test_equality(self):
        a = LabelStore()
        b = LabelStore()
        a.set_entry(1, 0, 1)
        assert a != b
        b.set_entry(1, 0, 1)
        assert a == b

    def test_as_dict_snapshot(self):
        store = LabelStore()
        store.set_entry(1, 0, 1)
        snapshot = store.as_dict()
        snapshot[1][0] = 99
        assert store.entry(1, 0) == 1


class TestBulkSetNew:
    def test_matches_individual_set_entry(self):
        bulk = LabelStore()
        loop = LabelStore()
        bulk.set_entry(2, 9, 4)
        loop.set_entry(2, 9, 4)
        bulk.bulk_set_new(0, [1, 2, 3], 5)
        for v in (1, 2, 3):
            loop.set_entry(v, 0, 5)
        assert bulk == loop
        assert bulk.total_entries == loop.total_entries == 4

    def test_empty_bulk_is_noop(self):
        store = LabelStore()
        store.bulk_set_new(0, [], 3)
        assert store.total_entries == 0

    def test_negative_distance_rejected(self):
        store = LabelStore()
        import pytest

        with pytest.raises(ValueError):
            store.bulk_set_new(0, [1], -1)
