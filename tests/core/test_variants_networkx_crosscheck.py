"""Directed and weighted oracle cross-validation against networkx.

The Section 5 variants (forward/backward labels for digraphs, Dijkstra
labelling for weighted graphs) get the same external-oracle treatment as
the undirected core: random graphs, random update sequences, answers
compared against networkx's shortest-path machinery.
"""

import random

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.directed import DirectedHCL
from repro.core.weighted_hcl import WeightedHCL
from repro.graph.digraph import DynamicDiGraph
from repro.graph.weighted import WeightedGraph

INF = float("inf")


def random_digraph(seed: int) -> DynamicDiGraph:
    rng = random.Random(seed)
    n = rng.randint(6, 18)
    graph = DynamicDiGraph(range(n))
    arcs = set()
    for _ in range(rng.randint(n, 3 * n)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and (u, v) not in arcs:
            arcs.add((u, v))
            graph.add_edge(u, v)
    return graph


def random_weighted_graph(seed: int) -> WeightedGraph:
    rng = random.Random(seed)
    n = rng.randint(6, 16)
    graph = WeightedGraph(range(n))
    # A random spanning tree keeps it connected, then extra chords.
    order = list(range(n))
    rng.shuffle(order)
    for i, v in enumerate(order[1:], start=1):
        graph.add_edge(v, order[rng.randrange(i)], round(rng.uniform(0.5, 4.0), 2))
    for _ in range(n):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v, round(rng.uniform(0.5, 4.0), 2))
    return graph


def digraph_to_networkx(graph: DynamicDiGraph) -> nx.DiGraph:
    g = nx.DiGraph()
    g.add_nodes_from(graph.vertices())
    g.add_edges_from(graph.edges())
    return g


def weighted_to_networkx(graph: WeightedGraph) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(graph.vertices())
    g.add_weighted_edges_from(graph.edges())
    return g


class TestDirectedCrosscheck:
    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_static_queries_match(self, seed):
        graph = random_digraph(seed)
        nxg = digraph_to_networkx(graph)
        oracle = DirectedHCL(graph, num_landmarks=3)
        lengths = dict(nx.all_pairs_shortest_path_length(nxg))
        vertices = sorted(graph.vertices())
        for u in vertices[::2]:
            for v in vertices[::3]:
                expected = lengths.get(u, {}).get(v, INF)
                assert oracle.query(u, v) == expected, (u, v)

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_queries_match_after_insertions(self, seed):
        rng = random.Random(seed + 1)
        graph = random_digraph(seed)
        oracle = DirectedHCL(graph, num_landmarks=2)
        vertices = sorted(graph.vertices())
        for _ in range(4):
            u, v = rng.choice(vertices), rng.choice(vertices)
            if u == v or graph.has_edge(u, v):
                continue
            oracle.insert_edge(u, v)
        nxg = digraph_to_networkx(graph)
        lengths = dict(nx.all_pairs_shortest_path_length(nxg))
        for u in vertices[::2]:
            for v in vertices[::3]:
                expected = lengths.get(u, {}).get(v, INF)
                assert oracle.query(u, v) == expected, (u, v)

    def test_asymmetry_preserved(self):
        graph = DynamicDiGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        oracle = DirectedHCL(graph, landmarks=[0])
        assert oracle.query(0, 2) == 2
        assert oracle.query(2, 0) == 1


class TestWeightedCrosscheck:
    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_static_queries_match(self, seed):
        graph = random_weighted_graph(seed)
        nxg = weighted_to_networkx(graph)
        oracle = WeightedHCL(graph, num_landmarks=3)
        vertices = sorted(graph.vertices())
        for u in vertices[::2]:
            for v in vertices[::3]:
                expected = nx.dijkstra_path_length(nxg, u, v)
                assert oracle.query(u, v) == pytest.approx(expected), (u, v)

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_queries_match_after_insertions(self, seed):
        rng = random.Random(seed + 2)
        graph = random_weighted_graph(seed)
        oracle = WeightedHCL(graph, num_landmarks=2)
        vertices = sorted(graph.vertices())
        for _ in range(3):
            u, v = rng.choice(vertices), rng.choice(vertices)
            if u == v or graph.has_edge(u, v):
                continue
            oracle.insert_edge(u, v, round(rng.uniform(0.1, 2.0), 2))
        nxg = weighted_to_networkx(graph)
        for u in vertices[::2]:
            for v in vertices[::3]:
                expected = nx.dijkstra_path_length(nxg, u, v)
                assert oracle.query(u, v) == pytest.approx(expected), (u, v)

    def test_shortcut_with_larger_weight_is_ignored(self):
        graph = WeightedGraph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
        oracle = WeightedHCL(graph, landmarks=[1])
        assert oracle.query(0, 2) == 2.0
        oracle.insert_edge(0, 2, 5.0)
        assert oracle.query(0, 2) == 2.0
