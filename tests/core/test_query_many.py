"""`query_many` / `query_distances_many`: batch answers == per-pair answers."""

from __future__ import annotations

import pytest

from repro.core.construction import build_hcl
from repro.core.dynamic import DynamicHCL
from repro.core.query import query_distance, query_distances_many
from repro.exceptions import VertexNotFoundError
from repro.graph.generators import grid_graph
from repro.utils.rng import ensure_rng
from tests.conftest import random_connected_graph

INF = float("inf")


@pytest.mark.parametrize("seed", [1, 5, 23])
def test_batch_equals_single_queries(seed):
    graph = random_connected_graph(seed)
    oracle = DynamicHCL.build(graph, num_landmarks=min(3, graph.num_vertices))
    vertices = sorted(graph.vertices())
    rng = ensure_rng(seed)
    pairs = [
        (rng.choice(vertices), rng.choice(vertices)) for _ in range(50)
    ]
    assert oracle.query_many(pairs) == [oracle.query(u, v) for u, v in pairs]


def test_covers_landmark_identical_and_disconnected_cases():
    graph = grid_graph(3, 3)
    graph.add_vertex(99)  # isolated: unreachable from the grid
    gamma = build_hcl(graph, [4])
    pairs = [(4, 7), (7, 4), (2, 2), (0, 99), (99, 4), (0, 8)]
    batch = query_distances_many(graph, gamma, pairs)
    assert batch == [query_distance(graph, gamma, u, v) for u, v in pairs]
    assert batch[3] == INF and batch[4] == INF


def test_empty_batch_and_order_preservation():
    graph = grid_graph(3, 3)
    gamma = build_hcl(graph, [4])
    assert query_distances_many(graph, gamma, []) == []
    assert query_distances_many(graph, gamma, [(0, 8), (0, 1)]) == [4, 1]


def test_unknown_vertex_raises():
    graph = grid_graph(2, 2)
    gamma = build_hcl(graph, [0])
    with pytest.raises(VertexNotFoundError):
        query_distances_many(graph, gamma, [(0, 1), (0, 777)])


def test_batch_reflects_updates():
    oracle = DynamicHCL.build(grid_graph(3, 3), landmarks=[4])
    assert oracle.query_many([(0, 8)]) == [4]
    oracle.insert_edge(0, 8)
    assert oracle.query_many([(0, 8)]) == [1]
