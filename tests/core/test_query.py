"""Tests for the query engine: Q(u, v, Γ) must be exact everywhere."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.construction import build_hcl
from repro.core.query import landmark_distance, query_distance, upper_bound
from repro.exceptions import VertexNotFoundError
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import grid_graph
from repro.graph.traversal import INF

from tests.conftest import (
    all_pairs_distances,
    random_connected_graph,
)


class TestLandmarkDistance:
    def test_self_distance(self, path_graph):
        gamma = build_hcl(path_graph, [2])
        assert landmark_distance(gamma, 2, 2) == 0

    def test_landmark_to_landmark_uses_highway(self, path_graph):
        gamma = build_hcl(path_graph, [0, 4])
        assert landmark_distance(gamma, 0, 4) == 4

    def test_landmark_to_vertex(self, path_graph):
        gamma = build_hcl(path_graph, [0])
        assert landmark_distance(gamma, 0, 3) == 3

    def test_unreachable(self):
        g = DynamicGraph.from_edges([(0, 1)], num_vertices=3)
        gamma = build_hcl(g, [0])
        assert landmark_distance(gamma, 0, 2) == INF

    def test_via_other_landmark(self):
        # 0 -- 1 -- 2: entry of 0 at vertex 2 is pruned (landmark 1 on the
        # path) so the decoder must go via the highway.
        g = DynamicGraph.from_edges([(0, 1), (1, 2)])
        gamma = build_hcl(g, [0, 1])
        assert landmark_distance(gamma, 0, 2) == 2


class TestUpperBound:
    def test_upper_bound_is_exact_through_landmark(self):
        g = grid_graph(3, 3)
        gamma = build_hcl(g, [4])  # centre vertex
        # every 0-8 shortest path passes the centre -> bound is exact
        assert upper_bound(gamma, 0, 8) == 4

    def test_upper_bound_overestimates_when_avoiding_landmark(self, path_graph):
        gamma = build_hcl(path_graph, [4])
        # d(0,1) = 1, but via landmark 4 the bound is 4 + 3 = 7
        assert upper_bound(gamma, 0, 1) == 7

    def test_empty_label_gives_inf(self):
        g = DynamicGraph.from_edges([(0, 1)], num_vertices=4)
        g.add_edge(2, 3)
        gamma = build_hcl(g, [0])
        assert upper_bound(gamma, 2, 3) == INF


class TestQueryDistance:
    def test_same_vertex(self, path_graph):
        gamma = build_hcl(path_graph, [0])
        assert query_distance(path_graph, gamma, 3, 3) == 0

    def test_unknown_vertices(self, path_graph):
        gamma = build_hcl(path_graph, [0])
        with pytest.raises(VertexNotFoundError):
            query_distance(path_graph, gamma, 0, 99)
        with pytest.raises(VertexNotFoundError):
            query_distance(path_graph, gamma, 99, 0)

    def test_landmark_endpoints(self, path_graph):
        gamma = build_hcl(path_graph, [0, 4])
        assert query_distance(path_graph, gamma, 0, 3) == 3
        assert query_distance(path_graph, gamma, 3, 4) == 1
        assert query_distance(path_graph, gamma, 0, 4) == 4

    def test_sparsified_search_beats_bound(self, path_graph):
        gamma = build_hcl(path_graph, [4])
        # bound through landmark 4 is 7, true distance 1 found by search
        assert query_distance(path_graph, gamma, 0, 1) == 1

    def test_disconnected(self):
        g = DynamicGraph.from_edges([(0, 1)], num_vertices=4)
        g.add_edge(2, 3)
        gamma = build_hcl(g, [0])
        assert query_distance(g, gamma, 0, 2) == INF
        assert query_distance(g, gamma, 2, 3) == 1

    @given(st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_exhaustive_exactness_random_graphs(self, seed):
        """Q equals BFS truth on every pair of a random connected graph."""
        g = random_connected_graph(seed, n_max=18)
        k = 1 + seed % min(4, g.num_vertices)
        landmarks = sorted(g.vertices(), key=lambda v: -g.degree(v))[:k]
        gamma = build_hcl(g, landmarks)
        truth = all_pairs_distances(g)
        for u in g.vertices():
            for v in g.vertices():
                assert query_distance(g, gamma, u, v) == truth[u].get(v, INF)

    @given(st.integers(0, 200))
    @settings(max_examples=15, deadline=None)
    def test_all_landmarks_degenerate(self, seed):
        """Every vertex a landmark: labels empty, highway answers all."""
        g = random_connected_graph(seed, n_max=10)
        gamma = build_hcl(g, list(g.vertices()))
        assert gamma.labels.total_entries == 0
        truth = all_pairs_distances(g)
        for u in g.vertices():
            for v in g.vertices():
                assert query_distance(g, gamma, u, v) == truth[u].get(v, INF)
