"""Tests for the highway data structure (H = (R, δ_H))."""

import pytest

from repro.core.highway import Highway
from repro.exceptions import NotALandmarkError
from repro.graph.traversal import INF


class TestBasics:
    def test_diagonal_is_zero(self):
        h = Highway([1, 2, 3])
        assert h.distance(2, 2) == 0

    def test_unset_pair_is_unreachable(self):
        h = Highway([1, 2])
        assert h.distance(1, 2) == INF

    def test_set_is_symmetric(self):
        h = Highway([1, 2])
        h.set_distance(1, 2, 5)
        assert h.distance(1, 2) == 5
        assert h.distance(2, 1) == 5

    def test_overwrite(self):
        h = Highway([1, 2])
        h.set_distance(1, 2, 5)
        h.set_distance(2, 1, 3)
        assert h.distance(1, 2) == 3

    def test_duplicate_landmarks_rejected(self):
        with pytest.raises(ValueError):
            Highway([1, 1])

    def test_membership(self):
        h = Highway([4, 9])
        assert 4 in h
        assert 5 not in h
        assert len(h) == 2
        assert h.landmark_set == frozenset({4, 9})

    def test_non_landmark_rejected(self):
        h = Highway([1, 2])
        with pytest.raises(NotALandmarkError):
            h.distance(1, 3)
        with pytest.raises(NotALandmarkError):
            h.distance(3, 1)
        with pytest.raises(NotALandmarkError):
            h.set_distance(3, 1, 2)
        with pytest.raises(NotALandmarkError):
            h.row(3)

    def test_diagonal_write_must_be_zero(self):
        h = Highway([1])
        h.set_distance(1, 1, 0)  # allowed no-op
        with pytest.raises(ValueError):
            h.set_distance(1, 1, 2)

    def test_zero_distance_between_distinct_rejected(self):
        h = Highway([1, 2])
        with pytest.raises(ValueError):
            h.set_distance(1, 2, 0)


class TestRowsAndCopies:
    def test_row_contains_diagonal(self):
        h = Highway([1, 2])
        h.set_distance(1, 2, 4)
        assert h.row(1) == {1: 0, 2: 4}

    def test_clear_row(self):
        h = Highway([1, 2, 3])
        h.set_distance(1, 2, 4)
        h.set_distance(2, 3, 1)
        h.clear_row(2)
        assert h.distance(1, 2) == INF
        assert h.distance(2, 3) == INF
        assert h.distance(2, 2) == 0

    def test_clear_row_non_landmark(self):
        with pytest.raises(NotALandmarkError):
            Highway([1]).clear_row(9)

    def test_copy_independent(self):
        h = Highway([1, 2])
        h.set_distance(1, 2, 4)
        clone = h.copy()
        clone.set_distance(1, 2, 9)
        assert h.distance(1, 2) == 4

    def test_equality(self):
        a = Highway([1, 2])
        b = Highway([1, 2])
        a.set_distance(1, 2, 3)
        assert a != b
        b.set_distance(1, 2, 3)
        assert a == b

    def test_size_bytes(self):
        h = Highway(list(range(10)))
        assert h.size_bytes() == 45 * 4
