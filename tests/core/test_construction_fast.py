"""Tests for the vectorized HCL construction fast path.

The contract is exact equality with the reference construction — same
entries, same highway cells — on every input, so every test is an
equivalence check plus the standard labelling invariants.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.construction import build_hcl
from repro.core.construction_fast import build_hcl_fast
from repro.core.validation import (
    check_cover_property,
    check_minimality,
    check_query_exactness,
)
from repro.exceptions import GraphError, VertexNotFoundError
from repro.graph.csr import CSRGraph
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import (
    barabasi_albert,
    erdos_renyi,
    grid_graph,
    ring_of_cliques,
)

from tests.conftest import random_connected_graph


def assert_same_labelling(graph, landmarks):
    reference = build_hcl(graph, landmarks)
    fast = build_hcl_fast(graph, landmarks)
    assert fast.highway == reference.highway
    assert fast.labels == reference.labels


class TestEquivalence:
    def test_grid(self):
        assert_same_labelling(grid_graph(4, 5), [0, 19, 9])

    def test_ring_of_cliques(self):
        assert_same_labelling(ring_of_cliques(4, 5), [0, 5, 10])

    def test_barabasi_albert(self):
        graph = barabasi_albert(120, 3, rng=5)
        landmarks = sorted(graph.vertices(), key=graph.degree, reverse=True)[:8]
        assert_same_labelling(graph, landmarks)

    def test_adjacent_landmarks(self):
        graph = grid_graph(3, 3)
        assert_same_labelling(graph, [0, 1])

    def test_all_vertices_landmarks(self):
        graph = grid_graph(2, 3)
        assert_same_labelling(graph, list(graph.vertices()))

    @given(seed=st.integers(0, 10**6), num_landmarks=st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_random_connected(self, seed, num_landmarks):
        graph = random_connected_graph(seed)
        vertices = sorted(graph.vertices())
        landmarks = vertices[: min(num_landmarks, len(vertices))]
        assert_same_labelling(graph, landmarks)

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_random_disconnected(self, seed):
        import random

        rng = random.Random(seed)
        n = rng.randint(8, 25)
        graph = erdos_renyi(n, max(1, n // 2), rng=rng)
        landmarks = sorted(graph.vertices())[:3]
        assert_same_labelling(graph, landmarks)

    def test_invariants_hold(self):
        graph = random_connected_graph(23, n_min=20, n_max=30)
        landmarks = sorted(graph.vertices(), key=graph.degree, reverse=True)[:4]
        labelling = build_hcl_fast(graph, landmarks)
        check_cover_property(graph, labelling)
        check_minimality(graph, labelling)
        check_query_exactness(graph, labelling, num_pairs=50, rng=1)


class TestInterface:
    def test_reused_csr_snapshot(self):
        graph = grid_graph(4, 4)
        csr = CSRGraph.from_graph(graph)
        first = build_hcl_fast(graph, [0, 15], csr=csr)
        second = build_hcl_fast(graph, [5, 10], csr=csr)
        assert first == build_hcl(graph, [0, 15])
        assert second == build_hcl(graph, [5, 10])

    def test_no_landmarks_rejected(self):
        with pytest.raises(GraphError):
            build_hcl_fast(grid_graph(2, 2), [])

    def test_unknown_landmark_rejected(self):
        with pytest.raises(VertexNotFoundError):
            build_hcl_fast(grid_graph(2, 2), [99])

    def test_landmark_order_preserved(self):
        graph = grid_graph(3, 3)
        labelling = build_hcl_fast(graph, [8, 0, 4])
        assert labelling.landmarks == [8, 0, 4]

    def test_isolated_vertex_gets_no_entries(self):
        graph = DynamicGraph([0, 1, 2, 3])
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        labelling = build_hcl_fast(graph, [0])
        assert labelling.labels.label(3) == {}
        assert labelling == build_hcl(graph, [0])
