"""Stateful property testing: hypothesis drives a DynamicHCL oracle through
arbitrary interleavings of insertions (single and batch), deletions (edge
and vertex), landmark promotions/demotions and queries, checking exactness
and canonical minimality throughout."""

import random

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.core.dynamic import DynamicHCL
from repro.core.validation import check_matches_rebuild
from repro.graph.generators import ensure_connected, erdos_renyi
from repro.graph.traversal import INF

from tests.conftest import reference_bfs


class DynamicOracleMachine(RuleBasedStateMachine):
    """The oracle must behave exactly like BFS on the evolving graph."""

    @initialize(seed=st.integers(0, 10_000))
    def setup(self, seed):
        rng = random.Random(seed)
        n = rng.randint(6, 16)
        m = rng.randint(n - 1, 2 * n)
        self.graph = ensure_connected(
            erdos_renyi(n, min(m, n * (n - 1) // 2), rng=rng), rng=rng
        )
        self.rng = rng
        k = rng.randint(1, 3)
        self.oracle = DynamicHCL.build(self.graph, num_landmarks=k)
        self.next_vertex = n
        self.steps = 0

    def _non_edges(self):
        vs = sorted(self.graph.vertices())
        return [
            (u, v)
            for i, u in enumerate(vs)
            for v in vs[i + 1 :]
            if not self.graph.has_edge(u, v)
        ]

    @rule()
    def insert_random_edge(self):
        candidates = self._non_edges()
        if not candidates:
            return
        u, v = self.rng.choice(candidates)
        self.oracle.insert_edge(u, v)
        self.steps += 1

    @rule()
    def delete_random_edge(self):
        edges = list(self.graph.edges())
        if len(edges) <= 1:
            return
        u, v = self.rng.choice(edges)
        self.oracle.remove_edge(u, v)
        self.steps += 1

    @rule(degree=st.integers(1, 3))
    def insert_vertex(self, degree):
        vs = list(self.graph.vertices())
        neighbors = self.rng.sample(vs, min(degree, len(vs)))
        self.oracle.insert_vertex(self.next_vertex, neighbors)
        self.next_vertex += 1
        self.steps += 1

    @rule(count=st.integers(2, 4))
    def insert_edge_batch(self, count):
        candidates = self._non_edges()
        if len(candidates) < count:
            return
        batch = self.rng.sample(candidates, count)
        self.oracle.insert_edges_batch(batch)
        self.steps += 1

    @rule()
    def remove_random_vertex(self):
        candidates = [
            v
            for v in self.graph.vertices()
            if v not in self.oracle.labelling.landmark_set
        ]
        if len(candidates) <= 3:
            return
        self.oracle.remove_vertex(self.rng.choice(candidates))
        self.steps += 1

    @rule()
    def promote_landmark(self):
        candidates = [
            v
            for v in self.graph.vertices()
            if v not in self.oracle.labelling.landmark_set
        ]
        if not candidates or len(self.oracle.landmarks) >= 5:
            return
        self.oracle.add_landmark(self.rng.choice(candidates))
        self.steps += 1

    @rule()
    def demote_landmark(self):
        if len(self.oracle.landmarks) <= 1:
            return
        self.oracle.remove_landmark(self.rng.choice(self.oracle.landmarks))
        self.steps += 1

    @rule()
    def query_random_pair(self):
        vs = list(self.graph.vertices())
        u = self.rng.choice(vs)
        v = self.rng.choice(vs)
        expected = reference_bfs(self.graph, u).get(v, INF)
        assert self.oracle.query(u, v) == expected

    @rule()
    def extract_random_path(self):
        vs = list(self.graph.vertices())
        u = self.rng.choice(vs)
        v = self.rng.choice(vs)
        expected = reference_bfs(self.graph, u).get(v, INF)
        path = self.oracle.shortest_path(u, v)
        if expected == INF:
            assert path is None
        else:
            assert len(path) - 1 == expected
            assert path[0] == u and path[-1] == v
            for x, y in zip(path, path[1:]):
                assert self.graph.has_edge(x, y)

    @invariant()
    def labelling_is_canonical(self):
        if getattr(self, "steps", 0) > 0:
            check_matches_rebuild(self.graph, self.oracle.labelling)
            self.steps = 0  # only re-verify after mutations


DynamicOracleMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=12, deadline=None
)
TestDynamicOracleStateful = DynamicOracleMachine.TestCase
