"""Tests for online landmark maintenance (promote/demote).

Both operations must land on the canonical minimal labelling for the new
landmark set — the same labelling a from-scratch build produces.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.construction import build_hcl
from repro.core.inchl import apply_edge_insertion
from repro.core.validation import check_matches_rebuild, check_query_exactness
from repro.exceptions import LabellingError, VertexNotFoundError
from repro.graph.dynamic_graph import DynamicGraph
from repro.landmarks.maintenance import add_landmark, remove_landmark

from tests.conftest import non_edges, random_connected_graph


def assert_equals_fresh_build(graph, labelling):
    fresh = build_hcl(graph, labelling.landmarks)
    assert labelling.highway == fresh.highway
    assert labelling.labels == fresh.labels


class TestAddLandmark:
    def test_small_graph(self):
        graph = DynamicGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4)])
        labelling = build_hcl(graph, [0])
        add_landmark(graph, labelling, 4)
        assert labelling.landmarks == [0, 4]
        assert_equals_fresh_build(graph, labelling)

    def test_promoted_vertex_loses_label(self):
        graph = DynamicGraph.from_edges([(0, 1), (1, 2), (2, 3)])
        labelling = build_hcl(graph, [0])
        assert labelling.labels.has_entry(2, 0)
        add_landmark(graph, labelling, 2)
        assert labelling.labels.label(2) == {}
        assert labelling.highway.distance(0, 2) == 2

    def test_removal_count_reported(self):
        # Path 0-1-2-3-4, landmark 0: all of 1..4 labelled.  Promoting 2
        # covers 3 and 4 (and absorbs 2's own entry).
        graph = DynamicGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4)])
        labelling = build_hcl(graph, [0])
        removed = add_landmark(graph, labelling, 2)
        assert removed == 2  # entries (3, r=0) and (4, r=0)
        assert_equals_fresh_build(graph, labelling)

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_random_promotion_equals_fresh_build(self, seed):
        graph = random_connected_graph(seed)
        rng = random.Random(seed + 3)
        vertices = sorted(graph.vertices())
        landmarks = vertices[:2]
        labelling = build_hcl(graph, landmarks)
        candidates = [v for v in vertices if v not in landmarks]
        add_landmark(graph, labelling, rng.choice(candidates))
        assert_equals_fresh_build(graph, labelling)

    def test_promotion_in_other_component(self):
        graph = DynamicGraph.from_edges([(0, 1), (2, 3)])
        labelling = build_hcl(graph, [0])
        add_landmark(graph, labelling, 2)
        assert_equals_fresh_build(graph, labelling)
        assert labelling.highway.distance(0, 2) == float("inf")

    def test_existing_landmark_rejected(self):
        graph = DynamicGraph.from_edges([(0, 1)])
        labelling = build_hcl(graph, [0])
        with pytest.raises(LabellingError):
            add_landmark(graph, labelling, 0)

    def test_unknown_vertex_rejected(self):
        graph = DynamicGraph.from_edges([(0, 1)])
        labelling = build_hcl(graph, [0])
        with pytest.raises(VertexNotFoundError):
            add_landmark(graph, labelling, 99)

    def test_incremental_updates_compose_after_promotion(self):
        graph = random_connected_graph(77)
        labelling = build_hcl(graph, sorted(graph.vertices())[:2])
        promoted = next(
            v for v in sorted(graph.vertices()) if v not in labelling.landmark_set
        )
        add_landmark(graph, labelling, promoted)
        edge = non_edges(graph)[0]
        graph.add_edge(*edge)
        apply_edge_insertion(graph, labelling, *edge)
        check_matches_rebuild(graph, labelling)


class TestRemoveLandmark:
    def test_small_graph(self):
        graph = DynamicGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4)])
        labelling = build_hcl(graph, [0, 2])
        rebuilt = remove_landmark(graph, labelling, 2)
        assert labelling.landmarks == [0]
        assert rebuilt == [0]
        assert_equals_fresh_build(graph, labelling)

    def test_demoted_vertex_regains_entries(self):
        graph = DynamicGraph.from_edges([(0, 1), (1, 2), (2, 3)])
        labelling = build_hcl(graph, [0, 2])
        remove_landmark(graph, labelling, 2)
        assert labelling.labels.entry(2, 0) == 2

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_random_demotion_equals_fresh_build(self, seed):
        graph = random_connected_graph(seed)
        rng = random.Random(seed + 5)
        vertices = sorted(graph.vertices())
        landmarks = vertices[:3]
        labelling = build_hcl(graph, landmarks)
        remove_landmark(graph, labelling, rng.choice(landmarks))
        assert_equals_fresh_build(graph, labelling)

    def test_unreachable_landmark_skips_rebuilds(self):
        graph = DynamicGraph.from_edges([(0, 1), (2, 3), (3, 4)])
        labelling = build_hcl(graph, [0, 2])
        rebuilt = remove_landmark(graph, labelling, 2)
        assert rebuilt == []  # 0 cannot reach 2: nothing to repair
        assert_equals_fresh_build(graph, labelling)

    def test_non_landmark_rejected(self):
        graph = DynamicGraph.from_edges([(0, 1)])
        labelling = build_hcl(graph, [0])
        with pytest.raises(LabellingError):
            remove_landmark(graph, labelling, 1)

    def test_last_landmark_rejected(self):
        graph = DynamicGraph.from_edges([(0, 1)])
        labelling = build_hcl(graph, [0])
        with pytest.raises(LabellingError):
            remove_landmark(graph, labelling, 0)


class TestRoundTrips:
    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_add_then_remove_restores(self, seed):
        graph = random_connected_graph(seed)
        rng = random.Random(seed + 13)
        vertices = sorted(graph.vertices())
        labelling = build_hcl(graph, vertices[:2])
        snapshot = labelling.copy()
        extra = rng.choice([v for v in vertices if v not in vertices[:2]])
        add_landmark(graph, labelling, extra)
        remove_landmark(graph, labelling, extra)
        assert labelling == snapshot

    def test_resize_landmark_set_online(self):
        """Grow |R| from 2 to 5 and back while answering exact queries."""
        graph = random_connected_graph(101, n_min=15, n_max=25)
        by_degree = sorted(graph.vertices(), key=graph.degree, reverse=True)
        labelling = build_hcl(graph, by_degree[:2])
        for v in by_degree[2:5]:
            add_landmark(graph, labelling, v)
            check_query_exactness(graph, labelling, num_pairs=20, rng=v)
        for v in by_degree[2:5]:
            remove_landmark(graph, labelling, v)
        assert sorted(labelling.landmarks) == sorted(by_degree[:2])
        assert_equals_fresh_build(graph, labelling)
