"""Tests for landmark selection strategies."""

import pytest

from repro.exceptions import GraphError
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import barabasi_albert, grid_graph
from repro.landmarks.selection import (
    betweenness_landmarks,
    random_landmarks,
    select_landmarks,
    spread_degree_landmarks,
    top_degree_landmarks,
)


@pytest.fixture
def star_plus_path():
    """Vertex 0 is a hub of degree 5; a path hangs off vertex 1."""
    edges = [(0, i) for i in range(1, 6)] + [(1, 6), (6, 7), (7, 8)]
    return DynamicGraph.from_edges(edges)


class TestTopDegree:
    def test_picks_hub_first(self, star_plus_path):
        assert top_degree_landmarks(star_plus_path, 1) == [0]

    def test_tie_break_by_id(self):
        g = grid_graph(2, 2)  # all degree 2
        assert top_degree_landmarks(g, 2) == [0, 1]

    def test_count_validation(self, star_plus_path):
        with pytest.raises(GraphError):
            top_degree_landmarks(star_plus_path, 0)
        with pytest.raises(GraphError):
            top_degree_landmarks(star_plus_path, 100)


class TestRandom:
    def test_deterministic_with_seed(self, star_plus_path):
        a = random_landmarks(star_plus_path, 3, rng=5)
        b = random_landmarks(star_plus_path, 3, rng=5)
        assert a == b

    def test_distinct_and_valid(self, star_plus_path):
        picks = random_landmarks(star_plus_path, 4, rng=1)
        assert len(set(picks)) == 4
        assert all(star_plus_path.has_vertex(v) for v in picks)


class TestBetweenness:
    def test_bridge_vertex_ranks_high(self, star_plus_path):
        # vertex 1 bridges the star and the path: highest betweenness after
        # (or alongside) the hub.
        picks = betweenness_landmarks(star_plus_path, 2, num_sources=9, rng=0)
        assert 1 in picks or 0 in picks

    def test_count(self, star_plus_path):
        assert len(betweenness_landmarks(star_plus_path, 3, rng=0)) == 3


class TestSpread:
    def test_landmarks_non_adjacent_when_possible(self):
        g = grid_graph(4, 4)
        picks = spread_degree_landmarks(g, 3)
        for i, u in enumerate(picks):
            for v in picks[i + 1 :]:
                assert not g.has_edge(u, v)

    def test_falls_back_when_constraint_impossible(self):
        g = DynamicGraph.from_edges([(0, 1), (0, 2), (1, 2)])  # triangle
        picks = spread_degree_landmarks(g, 3)
        assert sorted(picks) == [0, 1, 2]


class TestDispatch:
    def test_named_strategies(self):
        g = barabasi_albert(60, attach=2, rng=0)
        for strategy in ("degree", "random", "betweenness", "spread"):
            picks = select_landmarks(g, 5, strategy, rng=0)
            assert len(picks) == 5
            assert len(set(picks)) == 5

    def test_unknown_strategy(self):
        with pytest.raises(GraphError, match="unknown landmark strategy"):
            select_landmarks(grid_graph(2, 2), 1, "magic")

    def test_degree_is_default(self):
        g = barabasi_albert(60, attach=2, rng=0)
        assert select_landmarks(g, 4) == top_degree_landmarks(g, 4)
