"""Smoke tests: every example script runs to completion.

The examples are living documentation — broken ones are worse than none.
They run real workloads (10k-vertex builds), so the full sweep is gated
behind ``REPRO_RUN_EXAMPLES=1``; the cheapest script runs unconditionally
as a canary.

    REPRO_RUN_EXAMPLES=1 pytest tests/test_examples.py
"""

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))

#: The cheapest script — always run, as a canary for the example surface.
CANARY = "path_finding.py"

run_all = os.environ.get("REPRO_RUN_EXAMPLES") == "1"


def run_example(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=600,
        check=False,
    )


def test_examples_directory_complete():
    expected = {
        "quickstart.py",
        "social_network.py",
        "web_graph.py",
        "network_monitoring.py",
        "compare_methods.py",
        "fully_dynamic.py",
        "landmark_tuning.py",
        "path_finding.py",
        "large_scale.py",
    }
    assert set(ALL_EXAMPLES) == expected


def test_canary_example_runs():
    result = run_example(CANARY)
    assert result.returncode == 0, result.stderr
    assert "Done" in result.stdout


@pytest.mark.skipif(not run_all, reason="set REPRO_RUN_EXAMPLES=1 to run all")
@pytest.mark.parametrize("name", [n for n in ALL_EXAMPLES if n != CANARY])
def test_example_runs(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"
