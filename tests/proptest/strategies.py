"""Seeded generators shared by the property suite and the fuzz harness.

Everything is deterministic under an integer seed: graph family, graph
size, landmark count, and the insertion stream are all drawn from one
``random.Random``.  The families come from :mod:`repro.graph.generators`
so the suite sweeps every topology class the benchmarks use.
"""

from __future__ import annotations

import random

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import (
    barabasi_albert,
    ensure_connected,
    erdos_renyi,
    grid_graph,
    powerlaw_cluster,
    random_tree,
    ring_of_cliques,
    watts_strogatz,
)

__all__ = [
    "GRAPH_FAMILIES",
    "random_graph",
    "insertion_stream",
    "mixed_event_stream",
    "random_batches",
]


def _er(rng: random.Random, n: int) -> DynamicGraph:
    return erdos_renyi(n, int(n * rng.uniform(1.2, 2.5)), rng=rng)


def _ba(rng: random.Random, n: int) -> DynamicGraph:
    return barabasi_albert(n, rng.randint(1, 3), rng=rng)


def _ws(rng: random.Random, n: int) -> DynamicGraph:
    return watts_strogatz(max(n, 6), 4, rng.uniform(0.05, 0.4), rng=rng)


def _plc(rng: random.Random, n: int) -> DynamicGraph:
    return powerlaw_cluster(n, 2, rng.uniform(0.1, 0.6), rng=rng)


def _tree(rng: random.Random, n: int) -> DynamicGraph:
    return random_tree(n, rng=rng)


def _grid(rng: random.Random, n: int) -> DynamicGraph:
    side = max(2, int(n**0.5))
    return grid_graph(side, side)


def _cliques(rng: random.Random, n: int) -> DynamicGraph:
    return ring_of_cliques(max(2, n // 5), rng.randint(3, 5))


#: name -> builder(rng, approx_size).  Disconnected families are allowed:
#: component merges are exactly where affected regions are largest.
GRAPH_FAMILIES = {
    "erdos-renyi": _er,
    "barabasi-albert": _ba,
    "watts-strogatz": _ws,
    "powerlaw-cluster": _plc,
    "random-tree": _tree,
    "grid": _grid,
    "ring-of-cliques": _cliques,
}


def random_graph(
    seed: int,
    family: str | None = None,
    n_min: int = 8,
    n_max: int = 40,
    connected: bool = False,
) -> tuple[DynamicGraph, random.Random]:
    """A seeded random graph plus the stream RNG that continues the seed."""
    rng = random.Random(seed)
    if family is None:
        family = rng.choice(sorted(GRAPH_FAMILIES))
    graph = GRAPH_FAMILIES[family](rng, rng.randint(n_min, n_max))
    if connected:
        graph = ensure_connected(graph, rng=rng)
    return graph, rng


def insertion_stream(
    graph: DynamicGraph, count: int, rng: random.Random
) -> list[tuple[int, int]]:
    """``count`` distinct insertable edges w.r.t. the *evolving* graph.

    Edges are sampled against a simulation that applies earlier picks, so
    replaying the stream in order never raises; fewer than ``count`` are
    returned only when the graph saturates.
    """
    vertices = sorted(graph.vertices())
    live = {tuple(sorted(e)) for e in graph.edges()}
    stream: list[tuple[int, int]] = []
    attempts = 0
    while len(stream) < count and attempts < 50 * count:
        attempts += 1
        u, v = rng.sample(vertices, 2)
        key = (u, v) if u < v else (v, u)
        if key in live:
            continue
        live.add(key)
        stream.append((u, v))
    return stream


def mixed_event_stream(
    graph: DynamicGraph,
    count: int,
    rng: random.Random,
    delete_ratio: float = 0.35,
    churn_ratio: float = 0.15,
) -> list[tuple[str, tuple[int, int]]]:
    """``count`` mixed ``(kind, (u, v))`` events valid under sequential
    replay against the *evolving* graph.

    Deletions pick live edges (disconnections allowed — that is where the
    decremental affected regions are largest); ``churn_ratio`` biases a
    slice of insertions toward *re-inserting recently deleted edges*, the
    cancellation case the batch engine collapses to a net no-op.  Replay
    in order never raises; fewer events come back only on saturation.
    """
    vertices = sorted(graph.vertices())
    live = {tuple(sorted(e)) for e in graph.edges()}
    removed: list[tuple[int, int]] = []
    events: list[tuple[str, tuple[int, int]]] = []
    attempts = 0
    while len(events) < count and attempts < 80 * count:
        attempts += 1
        roll = rng.random()
        if roll < churn_ratio and removed:
            key = removed.pop(rng.randrange(len(removed)))
            if key in live:
                continue
            live.add(key)
            events.append(("insert", key))
        elif roll < churn_ratio + delete_ratio and live:
            key = rng.choice(sorted(live))
            live.remove(key)
            removed.append(key)
            events.append(("delete", key))
        else:
            u, v = rng.sample(vertices, 2)
            key = (u, v) if u < v else (v, u)
            if key in live:
                continue
            live.add(key)
            events.append(("insert", key))
    return events


def random_batches(
    stream: list[tuple[int, int]], rng: random.Random, max_batch: int = 6
) -> list[list[tuple[int, int]]]:
    """Partition a stream into random consecutive batches (>= 1 edge)."""
    batches: list[list[tuple[int, int]]] = []
    i = 0
    while i < len(stream):
        size = rng.randint(1, max_batch)
        batches.append(stream[i : i + size])
        i += size
    return batches
