"""Property-based equivalence suite for the incremental-update engines.

Randomized (but fully seeded) graphs × insertion streams, asserting the
three invariants the fast path is allowed to assume nothing about:

(a) the fast-path labelling is byte-identical to the sequential
    Phase A/B/C labelling after every update;
(b) every oracle query matches BFS ground truth;
(c) batch application equals one-at-a-time application.

Shared helpers live in :mod:`tests.proptest.strategies`; deterministic
seed-matrix tests in ``test_equivalence.py``; hypothesis-driven stateful
streams in ``test_streams.py``.  Heavier stress variants are marked
``slow`` and run in the nightly CI job.
"""
