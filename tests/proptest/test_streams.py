"""Hypothesis-driven stateful streams over the fast/slow engine pair.

Hypothesis owns the op schedule (insert / batch-insert / delete /
landmark promotion) and shrinks any failing schedule to a minimal one;
the invariants are re-checked after every op:

* fast labelling == sequentially maintained labelling (byte-identity);
* label-store entry count bookkeeping stays consistent;
* sampled queries equal BFS ground truth.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core.dynamic import DynamicHCL
from repro.graph.traversal import bfs_distances
from repro.landmarks.selection import top_degree_landmarks

from tests.proptest.strategies import (
    insertion_stream,
    mixed_event_stream,
    random_graph,
)

_SETTINGS = settings(
    max_examples=12,
    stateful_step_count=18,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@settings(max_examples=20, deadline=None, derandomize=True)
@given(seed=st.integers(min_value=0, max_value=2**20), length=st.integers(1, 25))
def test_fast_stream_matches_sequential(seed, length):
    """Pure insertion streams under hypothesis-chosen seeds/lengths."""
    graph, rng = random_graph(seed)
    landmarks = top_degree_landmarks(graph, rng.randint(1, 5))
    fast = DynamicHCL.build(graph.copy(), landmarks=landmarks, fast_updates=True)
    seq = DynamicHCL.build(graph.copy(), landmarks=landmarks)
    for u, v in insertion_stream(graph, length, rng):
        fast.insert_edge(u, v)
        seq.insert_edge(u, v)
        assert fast.labelling == seq.labelling


class FastSlowMachine(RuleBasedStateMachine):
    """Stateful fuzz: arbitrary op interleavings must keep engines equal."""

    @initialize(seed=st.integers(min_value=0, max_value=2**16))
    def setup(self, seed):
        graph, rng = random_graph(seed, n_min=10, n_max=28, connected=True)
        self.rng = rng
        landmarks = top_degree_landmarks(graph, rng.randint(2, 4))
        self.fast = DynamicHCL.build(
            graph.copy(), landmarks=landmarks, fast_updates=True
        )
        self.seq = DynamicHCL.build(graph.copy(), landmarks=landmarks)

    @rule(count=st.integers(1, 4))
    def insert_batch(self, count):
        stream = insertion_stream(self.fast.graph, count, self.rng)
        if not stream:
            return
        if len(stream) == 1:
            self.fast.insert_edge(*stream[0])
            self.seq.insert_edge(*stream[0])
        else:
            self.fast.insert_edges_batch(stream)
            self.seq.insert_edges_batch(stream)

    @rule()
    def insert_one(self):
        stream = insertion_stream(self.fast.graph, 1, self.rng)
        if not stream:
            return
        self.fast.insert_edge(*stream[0])
        self.seq.insert_edge(*stream[0])

    @rule()
    def delete_one(self):
        graph = self.fast.graph
        if graph.num_edges <= graph.num_vertices:
            return  # keep the graph from thinning out to a forest
        edges = list(graph.edges())
        u, v = edges[self.rng.randrange(len(edges))]
        self.fast.remove_edge(u, v)
        self.seq.remove_edge(u, v)

    @rule(count=st.integers(2, 5))
    def mixed_batch(self, count):
        """One mixed insert/delete batch through ``apply_events_batch``:
        the fast engine collapses it to a net BatchHL sweep, the slow
        oracle replays it sequentially — byte-identity must survive."""
        events = mixed_event_stream(self.fast.graph, count, self.rng)
        if not events:
            return
        self.fast.apply_events_batch(events, fast=True)
        self.seq.apply_events_batch(events, fast=False)

    @rule()
    def promote_landmark(self):
        graph = self.fast.graph
        candidates = sorted(set(graph.vertices()) - set(self.fast.landmarks))
        if not candidates or len(self.fast.landmarks) >= 6:
            return
        v = candidates[self.rng.randrange(len(candidates))]
        self.fast.add_landmark(v)
        self.seq.add_landmark(v)

    @invariant()
    def labellings_equal(self):
        if not hasattr(self, "fast"):
            return
        assert self.fast.labelling == self.seq.labelling
        assert (
            self.fast.labelling.labels.total_entries
            == sum(len(lbl) for _, lbl in self.fast.labelling.labels.items())
        )

    @invariant()
    def sampled_queries_exact(self):
        if not hasattr(self, "fast"):
            return
        vertices = sorted(self.fast.graph.vertices())
        if len(vertices) < 2:
            return
        u, v = self.rng.sample(vertices, 2)
        expected = bfs_distances(self.fast.graph, u).get(v, float("inf"))
        assert self.fast.query(u, v) == expected


FastSlowMachine.TestCase.settings = _SETTINGS
TestFastSlowMachine = FastSlowMachine.TestCase
