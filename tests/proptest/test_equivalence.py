"""Property (a)+(b)+(c): fast == slow == ground truth, per graph family.

A deterministic seed matrix (family × seed) drives random insertion
streams through four independently maintained oracles:

* ``seq``   — sequential dict kernels, one edge at a time (the reference);
* ``fast``  — vectorized CSR engine, one edge at a time;
* ``batch`` — sequential batch kernel, random batch splits;
* ``fastb`` — vectorized CSR engine, the same batch splits.

After every step all labellings must be *equal* (same highway cells, same
label entries — byte-identity in the stores' canonical dict form), and at
checkpoints every pairwise query must match BFS ground truth.
"""

import random

import pytest

from repro.core.dynamic import DynamicHCL
from repro.graph.traversal import bfs_distances
from repro.landmarks.selection import top_degree_landmarks

from tests.proptest.strategies import (
    GRAPH_FAMILIES,
    insertion_stream,
    mixed_event_stream,
    random_batches,
    random_graph,
)

FAMILIES = sorted(GRAPH_FAMILIES)
SEEDS = [101, 202]
STRESS_SEEDS = [303, 404, 505]


def build_oracles(graph, rng):
    """Four oracles over independent copies of ``graph``, same landmarks."""
    num_landmarks = rng.randint(1, 6)
    landmarks = top_degree_landmarks(graph, num_landmarks)
    seq = DynamicHCL.build(graph.copy(), landmarks=landmarks)
    fast = DynamicHCL.build(graph.copy(), landmarks=landmarks, fast_updates=True)
    batch = DynamicHCL.build(graph.copy(), landmarks=landmarks)
    fastb = DynamicHCL.build(graph.copy(), landmarks=landmarks, fast_updates=True)
    return seq, fast, batch, fastb


def assert_queries_match_bfs(oracle, rng, samples=25):
    vertices = sorted(oracle.graph.vertices())
    for _ in range(samples):
        u, v = rng.sample(vertices, 2) if len(vertices) > 1 else (vertices[0],) * 2
        expected = bfs_distances(oracle.graph, u).get(v, float("inf"))
        assert oracle.query(u, v) == expected, (u, v)


def run_stream(family: str, seed: int, stream_length: int):
    graph, rng = random_graph(seed, family=family)
    seq, fast, batch, fastb = build_oracles(graph, rng)
    stream = insertion_stream(graph, stream_length, rng)
    if not stream:
        pytest.skip("graph saturated; no insertable edges")
    batches = random_batches(stream, rng)

    # (a) fast vs slow, per single update.
    for i, (u, v) in enumerate(stream):
        seq.insert_edge(u, v)
        fast.insert_edge(u, v)
        assert fast.labelling == seq.labelling, (family, seed, i)

    # (c) batch-apply equals one-at-a-time apply, in both engines.
    for j, chunk in enumerate(batches):
        batch.insert_edges_batch(chunk)
        fastb.insert_edges_batch(chunk)
        assert batch.labelling == fastb.labelling, (family, seed, "batch", j)
    assert batch.labelling == seq.labelling, (family, seed, "batch-vs-seq")
    assert fastb.labelling == seq.labelling, (family, seed, "fastb-vs-seq")

    # (b) queries match BFS ground truth on the final graph.
    assert_queries_match_bfs(fast, rng)
    assert_queries_match_bfs(fastb, rng)


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("seed", SEEDS)
def test_fast_slow_batch_equivalence(family, seed):
    run_stream(family, seed, stream_length=14)


@pytest.mark.slow
@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("seed", STRESS_SEEDS)
def test_fast_slow_batch_equivalence_stress(family, seed):
    """Nightly-scale streams: bigger graphs, longer streams."""
    import zlib

    graph, rng = random_graph(
        seed * 7 + zlib.crc32(family.encode()) % 1000, family=family,
        n_min=40, n_max=120,
    )
    seq, fast, batch, fastb = build_oracles(graph, rng)
    stream = insertion_stream(graph, 60, rng)
    if not stream:
        pytest.skip("graph saturated; no insertable edges")
    for i, (u, v) in enumerate(stream):
        seq.insert_edge(u, v)
        fast.insert_edge(u, v)
    assert fast.labelling == seq.labelling
    for chunk in random_batches(stream, rng, max_batch=12):
        batch.insert_edges_batch(chunk)
        fastb.insert_edges_batch(chunk)
    assert batch.labelling == seq.labelling
    assert fastb.labelling == seq.labelling
    assert_queries_match_bfs(fast, rng, samples=60)


def run_mixed_stream(family: str, seed: int, stream_length: int,
                     max_batch: int = 6, workers: int | None = None):
    """Mixed insert/delete matrix: four maintenance routes over the same
    event stream must stay byte-identical at every step.

    * ``seq``   — one event at a time on the reference kernels (IncHL+
      insertions, DecHL deletions);
    * ``fast``  — one event at a time on the vectorized mixed engine;
    * ``batch`` — random event batches through ``apply_events_batch`` on
      the reference route;
    * ``fastb`` — the same batches through the BatchHL-style mixed batch
      engine (optionally with ``workers`` fanned out).
    """
    graph, rng = random_graph(seed, family=family)
    seq, fast, batch, fastb = build_oracles(graph, rng)
    events = mixed_event_stream(graph, stream_length, rng)
    if not events:
        pytest.skip("graph saturated; no applicable events")
    batches = random_batches(events, rng, max_batch=max_batch)

    for i, (kind, (u, v)) in enumerate(events):
        if kind == "insert":
            seq.insert_edge(u, v)
            fast.insert_edge(u, v)
        else:
            seq.remove_edge(u, v)
            fast.remove_edge(u, v)
        assert fast.labelling == seq.labelling, (family, seed, i, kind)

    for j, chunk in enumerate(batches):
        batch.apply_events_batch(chunk, fast=False)
        fastb.apply_events_batch(chunk, workers=workers, fast=True)
        assert batch.labelling == fastb.labelling, (family, seed, "batch", j)
    assert batch.labelling == seq.labelling, (family, seed, "batch-vs-seq")
    assert fastb.labelling == seq.labelling, (family, seed, "fastb-vs-seq")
    assert fast.version == seq.version == batch.version == fastb.version

    assert_queries_match_bfs(fast, rng)
    assert_queries_match_bfs(fastb, rng)


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("seed", SEEDS)
def test_mixed_stream_equivalence(family, seed):
    run_mixed_stream(family, seed, stream_length=14)


@pytest.mark.parametrize("family", ["random-tree", "ring-of-cliques"])
def test_mixed_stream_equivalence_parallel(family):
    """Disconnection-heavy families with the batch finds fanned out: the
    worker pool must not perturb byte-identity."""
    run_mixed_stream(family, 606, stream_length=12, workers=2)


@pytest.mark.slow
@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("seed", STRESS_SEEDS)
def test_mixed_stream_equivalence_stress(family, seed):
    """Nightly-scale mixed streams: bigger graphs, longer streams."""
    import zlib

    graph, rng = random_graph(
        seed * 11 + zlib.crc32(family.encode()) % 1000, family=family,
        n_min=40, n_max=100,
    )
    seq, fast, batch, fastb = build_oracles(graph, rng)
    events = mixed_event_stream(graph, 50, rng)
    if not events:
        pytest.skip("graph saturated; no applicable events")
    for kind, (u, v) in events:
        if kind == "insert":
            seq.insert_edge(u, v)
            fast.insert_edge(u, v)
        else:
            seq.remove_edge(u, v)
            fast.remove_edge(u, v)
    assert fast.labelling == seq.labelling
    for chunk in random_batches(events, rng, max_batch=10):
        batch.apply_events_batch(chunk, fast=False)
        fastb.apply_events_batch(chunk, fast=True)
    assert batch.labelling == seq.labelling
    assert fastb.labelling == seq.labelling
    assert_queries_match_bfs(fastb, rng, samples=60)


def test_mixed_ops_keep_engines_equal():
    """Interleaved deletions/landmark changes between fast insertions."""
    rng = random.Random(9090)
    graph, _ = random_graph(77, family="erdos-renyi", n_min=20, n_max=30,
                            connected=True)
    landmarks = top_degree_landmarks(graph, 3)
    fast = DynamicHCL.build(graph.copy(), landmarks=landmarks, fast_updates=True)
    ref = DynamicHCL.build(graph.copy(), landmarks=landmarks)
    for step in range(30):
        action = rng.random()
        if action < 0.55:
            stream = insertion_stream(fast.graph, 1, rng)
            if not stream:
                continue
            fast.insert_edge(*stream[0])
            ref.insert_edge(*stream[0])
        elif action < 0.75:
            stream = insertion_stream(fast.graph, rng.randint(2, 5), rng)
            if not stream:
                continue
            fast.insert_edges_batch(stream)
            ref.insert_edges_batch(stream)
        else:
            edges = list(fast.graph.edges())
            if fast.graph.num_edges <= fast.graph.num_vertices:
                continue
            u, v = edges[rng.randrange(len(edges))]
            fast.remove_edge(u, v)
            ref.remove_edge(u, v)
        assert fast.labelling == ref.labelling, step
    assert_queries_match_bfs(fast, rng)
