"""Landmark sharding equivalence over the replay matrix.

For every graph family × seed, a full oracle and an N-shard partition of
it replay the same mixed insert/delete stream.  After the replay:

* the **reassembled** per-shard labellings are byte-identical (canonical
  ``save_labelling`` form) to the sequentially maintained full oracle —
  sharded maintenance loses nothing and invents nothing;
* the element-wise **min over per-shard answers** equals the full
  oracle's answer (and BFS ground truth) on sampled pairs — the router's
  scatter-gather reduction is exact.
"""

from __future__ import annotations

import random

import pytest

from repro.cluster.shards import ShardPlan, make_shard_oracle
from repro.core.dynamic import DynamicHCL
from repro.core.sharding import reassemble_labellings
from repro.graph.traversal import bfs_distances
from repro.landmarks.selection import top_degree_landmarks
from repro.utils.serialization import save_labelling

from tests.proptest.strategies import (
    GRAPH_FAMILIES,
    mixed_event_stream,
    random_graph,
)

FAMILIES = sorted(GRAPH_FAMILIES)
SEEDS = [101, 202]


def labelling_bytes(labelling, tmp_path, name: str) -> bytes:
    path = tmp_path / f"{name}.labels.json"
    save_labelling(labelling, path)
    return path.read_bytes()


def replay(oracle, events) -> None:
    for kind, (u, v) in events:
        if kind == "insert":
            oracle.insert_edge(u, v)
        else:
            oracle.remove_edge(u, v)


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("seed", SEEDS)
def test_sharded_replay_matches_full_oracle(family, seed, tmp_path):
    graph, rng = random_graph(seed, family=family, n_min=12, n_max=40)
    num_landmarks = rng.randint(2, 6)
    landmarks = top_degree_landmarks(graph, num_landmarks)
    num_shards = min(2 if num_landmarks < 4 else rng.choice([2, 3]),
                     num_landmarks)

    full = DynamicHCL.build(graph.copy(), landmarks=landmarks)
    plan = ShardPlan.for_landmarks(full.landmarks, num_shards)
    shards = [
        make_shard_oracle(full, plan, i) for i in range(num_shards)
    ]

    events = mixed_event_stream(graph, 30, rng)
    if not events:
        pytest.skip("graph saturated; no events")
    replay(full, events)
    for shard in shards:
        replay(shard, events)

    # Byte-identity after landmark-partition reassembly.
    reassembled = reassemble_labellings([s.labelling for s in shards])
    assert labelling_bytes(reassembled, tmp_path, "reassembled") == (
        labelling_bytes(full.labelling, tmp_path, "full")
    ), (family, seed)

    # Scatter-gather min over shard-local answers is globally exact.
    vertices = sorted(full.graph.vertices())
    check_rng = random.Random(seed * 31)
    for _ in range(25):
        if len(vertices) > 1:
            u, v = check_rng.sample(vertices, 2)
        else:
            u = v = vertices[0]
        expected = bfs_distances(full.graph, u).get(v, float("inf"))
        assert full.query(u, v) == expected, (family, seed, u, v)
        gathered = min(s.query(u, v) for s in shards)
        assert gathered == expected, (family, seed, u, v)
