"""Tests for the static pruned landmark labelling baseline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.pll import PrunedLandmarkLabelling, pll_query
from repro.core.labels import LabelStore
from repro.exceptions import ConstructionBudgetExceeded, GraphError
from repro.graph.generators import barabasi_albert, grid_graph
from repro.graph.traversal import INF

from tests.conftest import all_pairs_distances, random_connected_graph


class TestPllQueryHelper:
    def test_same_vertex(self):
        assert pll_query(LabelStore(), 3, 3) == 0

    def test_no_common_hub(self):
        store = LabelStore()
        store.set_entry(1, 0, 1)
        store.set_entry(2, 9, 1)
        assert pll_query(store, 1, 2) == INF

    def test_min_over_common_hubs(self):
        store = LabelStore()
        store.set_entry(1, 0, 3)
        store.set_entry(1, 5, 1)
        store.set_entry(2, 0, 1)
        store.set_entry(2, 5, 2)
        assert pll_query(store, 1, 2) == 3  # via hub 5


class TestConstruction:
    def test_every_vertex_has_self_entry(self):
        g = grid_graph(3, 3)
        pll = PrunedLandmarkLabelling(g)
        for v in g.vertices():
            assert pll.labels.entry(v, v) == 0

    def test_pruning_reduces_size(self):
        """2-hop labels must be far below the n²/2 un-pruned worst case."""
        g = barabasi_albert(150, attach=3, rng=1)
        pll = PrunedLandmarkLabelling(g)
        assert pll.label_entries < 150 * 150 / 4

    def test_rank_follows_degree_order(self):
        g = barabasi_albert(50, attach=2, rng=0)
        pll = PrunedLandmarkLabelling(g)
        degrees = [g.degree(v) for v in sorted(g.vertices(), key=pll.rank)]
        assert degrees == sorted(degrees, reverse=True)

    def test_explicit_order(self):
        g = grid_graph(2, 2)
        pll = PrunedLandmarkLabelling(g, order=[3, 2, 1, 0])
        assert pll.rank(3) == 0

    def test_invalid_order_rejected(self):
        g = grid_graph(2, 2)
        with pytest.raises(GraphError):
            PrunedLandmarkLabelling(g, order=[0, 1])

    def test_budget_enforced(self):
        g = barabasi_albert(300, attach=3, rng=0)
        with pytest.raises(ConstructionBudgetExceeded):
            PrunedLandmarkLabelling(g, time_budget_s=0.0)

    def test_size_bytes(self):
        g = grid_graph(2, 2)
        pll = PrunedLandmarkLabelling(g)
        assert pll.size_bytes() == pll.label_entries * 8


class TestQueries:
    def test_grid_exact(self):
        g = grid_graph(4, 4)
        pll = PrunedLandmarkLabelling(g)
        truth = all_pairs_distances(g)
        for u in g.vertices():
            for v in g.vertices():
                assert pll.query(u, v) == truth[u].get(v, INF)

    def test_disconnected(self):
        from repro.graph.dynamic_graph import DynamicGraph

        g = DynamicGraph.from_edges([(0, 1)], num_vertices=4)
        g.add_edge(2, 3)
        pll = PrunedLandmarkLabelling(g)
        assert pll.query(0, 2) == INF
        assert pll.query(2, 3) == 1

    @given(st.integers(0, 400))
    @settings(max_examples=30, deadline=None)
    def test_exhaustive_random_graphs(self, seed):
        g = random_connected_graph(seed, n_max=18)
        pll = PrunedLandmarkLabelling(g)
        truth = all_pairs_distances(g)
        for u in g.vertices():
            for v in g.vertices():
                assert pll.query(u, v) == truth[u].get(v, INF)

    @given(st.integers(0, 200), st.randoms(use_true_random=False))
    @settings(max_examples=15, deadline=None)
    def test_any_order_still_exact(self, seed, rng):
        """Correctness must not depend on the hub order (only size does)."""
        g = random_connected_graph(seed, n_max=14)
        order = list(g.vertices())
        rng.shuffle(order)
        pll = PrunedLandmarkLabelling(g, order=order)
        truth = all_pairs_distances(g)
        for u in g.vertices():
            for v in g.vertices():
                assert pll.query(u, v) == truth[u].get(v, INF)
