"""Tests for IncPLL: exactness restored after insertions, entries never
removed (size growth — the behaviour the paper contrasts IncHL+ against)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.incpll import IncPLL
from repro.graph.generators import grid_graph
from repro.graph.traversal import INF

from tests.conftest import (
    all_pairs_distances,
    non_edges,
    random_connected_graph,
)


class TestBasics:
    def test_query_before_updates(self):
        oracle = IncPLL(grid_graph(3, 3))
        assert oracle.query(0, 8) == 4

    def test_insert_edge_restores_exactness(self):
        oracle = IncPLL(grid_graph(3, 3))
        oracle.insert_edge(0, 8)
        assert oracle.query(0, 8) == 1
        assert oracle.query(1, 8) == 2

    def test_insert_returns_resumed_count(self):
        oracle = IncPLL(grid_graph(3, 3))
        resumed = oracle.insert_edge(0, 8)
        assert resumed > 0

    def test_size_never_decreases(self):
        import random

        rng = random.Random(0)
        g = random_connected_graph(42, n_max=16)
        oracle = IncPLL(g)
        sizes = [oracle.label_entries]
        for _ in range(6):
            candidates = non_edges(g)
            if not candidates:
                break
            u, v = rng.choice(candidates)
            oracle.insert_edge(u, v)
            sizes.append(oracle.label_entries)
        assert sizes == sorted(sizes)

    def test_stale_entries_accumulate(self):
        """After a shortcut insertion an old (now overestimating) entry
        remains — IncPLL does not remove outdated entries (the behaviour
        the paper's IncHL+ is built to avoid).

        Hub 0 is the top hub (degree 5).  Vertex 2 initially stores
        (1, 3) for the path 1-3-4-2.  Inserting (0, 2) shortens d(1, 2)
        to 2 via hub 0; the resumed BFS of hub 1 is pruned at 0, so the
        stale (1, 3) entry survives while queries stay exact via hub 0.
        """
        from repro.graph.dynamic_graph import DynamicGraph

        g = DynamicGraph.from_edges(
            [(0, 5), (0, 6), (0, 7), (0, 8), (0, 1), (1, 3), (3, 4), (4, 2)]
        )
        oracle = IncPLL(g)
        assert oracle.pll.labels.entry(2, 1) == 3
        entries_before = oracle.label_entries
        oracle.insert_edge(0, 2)
        truth = all_pairs_distances(g)
        assert truth[1][2] == 2
        assert oracle.pll.labels.entry(2, 1) == 3  # stale, never removed
        assert oracle.query(1, 2) == 2  # ... yet queries stay exact
        assert oracle.label_entries >= entries_before

    def test_insert_vertex(self):
        oracle = IncPLL(grid_graph(3, 3))
        oracle.insert_vertex(100, [0, 8])
        assert oracle.query(100, 0) == 1
        assert oracle.query(100, 4) == 3
        # the new vertex is the lowest-priority hub
        assert oracle.pll.rank(100) == 9

    def test_size_bytes_accounting(self):
        oracle = IncPLL(grid_graph(2, 2))
        assert oracle.size_bytes() == oracle.label_entries * 8


class TestExactness:
    @given(st.integers(0, 500), st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_insertion_sequences_stay_exact(self, seed, rng):
        g = random_connected_graph(seed, n_max=16)
        oracle = IncPLL(g)
        for _ in range(6):
            candidates = non_edges(g)
            if not candidates:
                break
            u, v = rng.choice(candidates)
            oracle.insert_edge(u, v)
            truth = all_pairs_distances(g)
            vertices = list(g.vertices())
            for _ in range(25):
                a, b = rng.choice(vertices), rng.choice(vertices)
                assert oracle.query(a, b) == truth[a].get(b, INF)

    @given(st.integers(0, 200), st.randoms(use_true_random=False))
    @settings(max_examples=15, deadline=None)
    def test_vertex_insertions_stay_exact(self, seed, rng):
        g = random_connected_graph(seed, n_max=12)
        oracle = IncPLL(g)
        next_id = max(g.vertices()) + 1
        for i in range(3):
            neighbors = rng.sample(list(g.vertices()), min(2, g.num_vertices))
            oracle.insert_vertex(next_id + i, neighbors)
        truth = all_pairs_distances(g)
        for u in g.vertices():
            for v in g.vertices():
                assert oracle.query(u, v) == truth[u].get(v, INF)
