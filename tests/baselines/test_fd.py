"""Tests for the IncFD baseline (bit-parallel landmark SPTs)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.fd import BitParallelSPT, FullDynamicOracle
from repro.exceptions import GraphError
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import grid_graph, ring_of_cliques
from repro.graph.traversal import INF, bfs_distances

from tests.conftest import (
    all_pairs_distances,
    non_edges,
    random_connected_graph,
)


class TestBitParallelSPT:
    def test_distances_match_bfs(self):
        g = ring_of_cliques(4, 4)
        tree = BitParallelSPT(g, 0)
        assert tree.dist == bfs_distances(g, 0)

    def test_root_masks_empty(self):
        g = grid_graph(3, 3)
        tree = BitParallelSPT(g, 4)
        assert tree.s_minus[4] == 0
        assert tree.s_zero[4] == 0

    def test_selected_neighbor_self_mask(self):
        g = grid_graph(3, 3)
        tree = BitParallelSPT(g, 4)
        for s, bit in tree.selected_bit.items():
            assert tree.s_minus[s] & bit

    def test_masks_are_disjoint(self):
        g = ring_of_cliques(3, 5)
        tree = BitParallelSPT(g, 0)
        for v in tree.dist:
            assert tree.s_minus[v] & tree.s_zero[v] == 0

    def test_mask_semantics_exact(self):
        """S⁻/S⁰ must equal their definitional sets for every vertex."""
        g = ring_of_cliques(3, 4)
        tree = BitParallelSPT(g, 0)
        by_bit = {bit: s for s, bit in tree.selected_bit.items()}
        source_dist = {s: bfs_distances(g, s) for s in tree.selected_bit}
        for v, d in tree.dist.items():
            if v == 0:
                continue
            for bit, s in by_bit.items():
                ds_v = source_dist[s].get(v, INF)
                assert bool(tree.s_minus[v] & bit) == (ds_v == d - 1)
                assert bool(tree.s_zero[v] & bit) == (ds_v == d)

    def test_bound_refinement(self):
        # path 1 - 0 - 2 with root 0: d(1,2) = 2 = 1 + 1 - 0? Masks say:
        # S⁻(1) = {1}, S⁻(2) = {2} -> no overlap; S⁰? d(2,1) = 2 != 1.
        g = DynamicGraph.from_edges([(0, 1), (0, 2), (1, 2)])
        tree = BitParallelSPT(g, 0)
        # 1 and 2 adjacent: d(1,2) = 1 = 1 + 1 - 1 via S⁰/S⁻ overlap.
        assert tree.bound_between(1, 2) == 1

    def test_bound_unreachable(self):
        g = DynamicGraph.from_edges([(0, 1)], num_vertices=3)
        tree = BitParallelSPT(g, 0)
        assert tree.bound_between(1, 2) == INF

    def test_size_bytes(self):
        g = grid_graph(3, 3)
        tree = BitParallelSPT(g, 0)
        assert tree.size_bytes() == 9 * 8


class TestRepair:
    @given(st.integers(0, 500), st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_repair_equals_rebuild(self, seed, rng):
        """Maintained (dist, S⁻, S⁰) equal a fresh BP-BFS after updates."""
        g = random_connected_graph(seed, n_max=18)
        root = max(g.vertices(), key=g.degree)
        tree = BitParallelSPT(g, root)
        for _ in range(5):
            candidates = non_edges(g)
            if not candidates:
                break
            a, b = rng.choice(candidates)
            g.add_edge(a, b)
            tree.repair_insertion(g, a, b)
            fresh = BitParallelSPT.__new__(BitParallelSPT)
            fresh.root = root
            fresh.selected_bit = tree.selected_bit
            fresh.dist = {}
            fresh.s_minus = {}
            fresh.s_zero = {}
            fresh._full_build(g)
            assert tree.dist == fresh.dist
            assert tree.s_minus == fresh.s_minus
            assert tree.s_zero == fresh.s_zero

    def test_repair_reports_work(self):
        g = grid_graph(3, 3)
        tree = BitParallelSPT(g, 0)
        g.add_edge(0, 8)
        assert tree.repair_insertion(g, 0, 8) > 0

    def test_connecting_components(self):
        g = DynamicGraph.from_edges([(0, 1)], num_vertices=4)
        g.add_edge(2, 3)
        tree = BitParallelSPT(g, 0)
        assert 2 not in tree.dist
        g.add_edge(1, 2)
        tree.repair_insertion(g, 1, 2)
        assert tree.dist[2] == 2
        assert tree.dist[3] == 3


class TestOracle:
    def test_landmark_validation(self):
        with pytest.raises(GraphError):
            FullDynamicOracle(grid_graph(2, 2), landmarks=[99])

    def test_query_landmark_endpoints(self):
        oracle = FullDynamicOracle(grid_graph(3, 3), landmarks=[4])
        assert oracle.query(4, 0) == 2
        assert oracle.query(0, 4) == 2
        assert oracle.query(4, 4) == 0

    def test_size_bytes(self):
        oracle = FullDynamicOracle(grid_graph(3, 3), landmarks=[0, 8])
        assert oracle.size_bytes() == 2 * 9 * 8

    def test_tree_access(self):
        oracle = FullDynamicOracle(grid_graph(3, 3), landmarks=[4])
        assert oracle.tree(4).root == 4

    @given(st.integers(0, 400), st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_dynamic_exactness(self, seed, rng):
        g = random_connected_graph(seed, n_max=16)
        k = 1 + seed % min(4, g.num_vertices)
        oracle = FullDynamicOracle(g, num_landmarks=k)
        for _ in range(5):
            candidates = non_edges(g)
            if not candidates:
                break
            a, b = rng.choice(candidates)
            oracle.insert_edge(a, b)
            truth = all_pairs_distances(g)
            vertices = list(g.vertices())
            for _ in range(20):
                u, v = rng.choice(vertices), rng.choice(vertices)
                assert oracle.query(u, v) == truth[u].get(v, INF)

    def test_insert_vertex(self):
        oracle = FullDynamicOracle(grid_graph(3, 3), landmarks=[4])
        oracle.insert_vertex(50, [0, 8])
        assert oracle.query(50, 4) == 3
        assert oracle.query(50, 0) == 1
