"""Tests for the index-free online BFS oracle."""

from repro.baselines.bfs import OnlineBFS
from repro.graph.generators import grid_graph
from repro.graph.traversal import INF


class TestOnlineBFS:
    def test_query(self):
        oracle = OnlineBFS(grid_graph(4, 4))
        assert oracle.query(0, 15) == 6

    def test_insert_edge(self):
        oracle = OnlineBFS(grid_graph(4, 4))
        oracle.insert_edge(0, 15)
        assert oracle.query(0, 15) == 1

    def test_insert_vertex(self):
        oracle = OnlineBFS(grid_graph(2, 2))
        oracle.insert_vertex(9, [0])
        assert oracle.query(9, 3) == 3

    def test_disconnected(self):
        oracle = OnlineBFS(grid_graph(2, 2))
        oracle.insert_vertex(9, [])
        assert oracle.query(9, 0) == INF

    def test_zero_index_size(self):
        assert OnlineBFS(grid_graph(2, 2)).size_bytes() == 0

    def test_graph_property(self):
        g = grid_graph(2, 2)
        assert OnlineBFS(g).graph is g
