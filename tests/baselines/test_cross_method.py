"""Integration: all four oracles must agree on dynamic workloads.

This is the reproduction's analogue of the paper's implicit premise —
IncHL+, IncPLL and IncFD answer the *same* queries exactly; they differ
only in cost.  The protocol interface is also verified here.
"""

from hypothesis import given, settings, strategies as st

from repro.baselines.bfs import OnlineBFS
from repro.baselines.fd import FullDynamicOracle
from repro.baselines.incpll import IncPLL
from repro.baselines.interface import DistanceOracle
from repro.core.dynamic import DynamicHCL
from repro.graph.generators import grid_graph

from tests.conftest import non_edges, random_connected_graph


def _make_all(graph):
    return [
        DynamicHCL.build(graph.copy(), num_landmarks=min(3, graph.num_vertices)),
        IncPLL(graph.copy()),
        FullDynamicOracle(graph.copy(), num_landmarks=min(3, graph.num_vertices)),
        OnlineBFS(graph.copy()),
    ]


class TestProtocol:
    def test_all_oracles_satisfy_protocol(self):
        for oracle in _make_all(grid_graph(3, 3)):
            assert isinstance(oracle, DistanceOracle)


class TestAgreement:
    @given(st.integers(0, 600), st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_agreement_under_edge_insertions(self, seed, rng):
        base = random_connected_graph(seed, n_max=15)
        oracles = _make_all(base)
        reference = base.copy()
        for _ in range(4):
            candidates = non_edges(reference)
            if not candidates:
                break
            u, v = rng.choice(candidates)
            reference.add_edge(u, v)
            for oracle in oracles:
                oracle.insert_edge(u, v)
            vertices = list(reference.vertices())
            for _ in range(15):
                a, b = rng.choice(vertices), rng.choice(vertices)
                answers = {o.query(a, b) for o in oracles}
                assert len(answers) == 1, (a, b, [o.query(a, b) for o in oracles])

    @given(st.integers(0, 200), st.randoms(use_true_random=False))
    @settings(max_examples=10, deadline=None)
    def test_agreement_under_vertex_insertions(self, seed, rng):
        base = random_connected_graph(seed, n_max=12)
        oracles = _make_all(base)
        reference = base.copy()
        next_id = max(reference.vertices()) + 1
        for i in range(3):
            neighbors = rng.sample(
                list(reference.vertices()), min(2, reference.num_vertices)
            )
            reference.insert_vertex(next_id + i, neighbors)
            for oracle in oracles:
                oracle.insert_vertex(next_id + i, neighbors)
            vertices = list(reference.vertices())
            for _ in range(10):
                a, b = rng.choice(vertices), rng.choice(vertices)
                answers = {o.query(a, b) for o in oracles}
                assert len(answers) == 1


class TestSizeOrdering:
    def test_paper_size_ordering_holds(self):
        """IncHL+ labelling strictly smaller than IncFD's SPTs, which are
        smaller than IncPLL's 2-hop labels — Table 1's size ordering —
        on a representative power-law graph."""
        from repro.graph.generators import barabasi_albert

        g = barabasi_albert(400, attach=4, rng=7)
        hl = DynamicHCL.build(g.copy(), num_landmarks=10)
        fd = FullDynamicOracle(g.copy(), num_landmarks=10)
        pll = IncPLL(g.copy())
        assert hl.size_bytes() < fd.size_bytes() < pll.size_bytes()


class TestBatchAgreement:
    @given(st.integers(0, 400), st.randoms(use_true_random=False))
    @settings(max_examples=10, deadline=None)
    def test_batch_inchl_agrees_with_sequential_baselines(self, seed, rng):
        """DynamicHCL taking the whole burst through one batch sweep must
        agree with baselines that saw the edges one at a time."""
        base = random_connected_graph(seed, n_max=15)
        batch_oracle = DynamicHCL.build(
            base.copy(), num_landmarks=min(3, base.num_vertices)
        )
        others = [IncPLL(base.copy()), OnlineBFS(base.copy())]
        candidates = non_edges(base)
        if len(candidates) < 2:
            return
        burst = rng.sample(candidates, min(4, len(candidates)))
        batch_oracle.insert_edges_batch(burst)
        for oracle in others:
            for u, v in burst:
                oracle.insert_edge(u, v)
        vertices = list(base.vertices())
        for _ in range(20):
            a, b = rng.choice(vertices), rng.choice(vertices)
            answers = {o.query(a, b) for o in [batch_oracle, *others]}
            assert len(answers) == 1
