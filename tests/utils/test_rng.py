"""Tests for RNG plumbing."""

import random

import pytest

from repro.utils.rng import ensure_rng, spawn_rng


class TestEnsureRng:
    def test_none_gives_fresh_rng(self):
        assert isinstance(ensure_rng(None), random.Random)

    def test_int_seeds_deterministically(self):
        assert ensure_rng(42).random() == ensure_rng(42).random()

    def test_rng_passthrough(self):
        rng = random.Random(0)
        assert ensure_rng(rng) is rng

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng(True)

    def test_other_types_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawnRng:
    def test_deterministic_per_stream(self):
        a = spawn_rng(random.Random(1), "updates").random()
        b = spawn_rng(random.Random(1), "updates").random()
        assert a == b

    def test_streams_differ(self):
        parent = random.Random(1)
        a = spawn_rng(parent, "updates").random()
        parent = random.Random(1)
        b = spawn_rng(parent, "queries").random()
        assert a != b
