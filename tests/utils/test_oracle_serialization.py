"""Tests for whole-oracle save/load."""

import pytest

from repro.core.dynamic import DynamicHCL
from repro.core.validation import check_matches_rebuild
from repro.exceptions import ReproError
from repro.utils.serialization import load_oracle, save_labelling, save_oracle

from tests.conftest import non_edges, random_connected_graph


def build_oracle(seed=57):
    graph = random_connected_graph(seed, n_min=12, n_max=20)
    return DynamicHCL.build(graph, num_landmarks=3)


class TestRoundTrip:
    def test_graph_and_labelling_roundtrip(self, tmp_path):
        oracle = build_oracle()
        path = tmp_path / "oracle.json"
        save_oracle(oracle, path)
        restored = load_oracle(path)
        assert restored.labelling == oracle.labelling
        assert sorted(restored.graph.edges()) == sorted(oracle.graph.edges())
        assert sorted(restored.graph.vertices()) == sorted(oracle.graph.vertices())
        assert restored.landmarks == oracle.landmarks

    def test_gzip_roundtrip(self, tmp_path):
        oracle = build_oracle(seed=58)
        path = tmp_path / "oracle.json.gz"
        save_oracle(oracle, path)
        assert load_oracle(path).labelling == oracle.labelling

    def test_restored_oracle_accepts_updates(self, tmp_path):
        oracle = build_oracle(seed=59)
        path = tmp_path / "oracle.json"
        save_oracle(oracle, path)
        restored = load_oracle(path)
        a, b = non_edges(restored.graph)[0]
        restored.insert_edge(a, b)
        check_matches_rebuild(restored.graph, restored.labelling)
        edge = next(iter(restored.graph.edges()))
        restored.remove_edge(*edge)
        check_matches_rebuild(restored.graph, restored.labelling)

    def test_isolated_vertices_survive(self, tmp_path):
        from repro.graph.dynamic_graph import DynamicGraph
        from repro.core.construction import build_hcl

        graph = DynamicGraph([0, 1, 2, 9])
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        oracle = DynamicHCL(graph, build_hcl(graph, [0]))
        path = tmp_path / "oracle.json"
        save_oracle(oracle, path)
        restored = load_oracle(path)
        assert restored.graph.has_vertex(9)
        assert restored.graph.degree(9) == 0

    def test_queries_identical_after_restore(self, tmp_path):
        oracle = build_oracle(seed=60)
        path = tmp_path / "oracle.json"
        save_oracle(oracle, path)
        restored = load_oracle(path)
        vertices = sorted(oracle.graph.vertices())
        for u in vertices[:4]:
            for v in vertices[-4:]:
                assert restored.query(u, v) == oracle.query(u, v)


class TestFormatGuard:
    def test_labelling_file_rejected_as_oracle(self, tmp_path):
        oracle = build_oracle(seed=61)
        path = tmp_path / "labelling.json"
        save_labelling(oracle.labelling, path)
        with pytest.raises(ReproError):
            load_oracle(path)
