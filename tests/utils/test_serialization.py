"""Tests for labelling serialization."""

import pytest

from repro.core.construction import build_hcl
from repro.core.validation import check_matches_rebuild
from repro.exceptions import ReproError
from repro.graph.generators import grid_graph, ring_of_cliques
from repro.utils.serialization import load_labelling, save_labelling


class TestRoundTrip:
    def test_plain_json(self, tmp_path):
        g = ring_of_cliques(4, 4)
        gamma = build_hcl(g, [0, 4, 8])
        path = tmp_path / "labelling.json"
        save_labelling(gamma, path)
        loaded = load_labelling(path)
        assert loaded.labels == gamma.labels
        assert loaded.highway == gamma.highway
        assert loaded.landmarks == gamma.landmarks

    def test_gzip(self, tmp_path):
        g = grid_graph(4, 4)
        gamma = build_hcl(g, [0, 15])
        path = tmp_path / "labelling.json.gz"
        save_labelling(gamma, path)
        loaded = load_labelling(path)
        assert loaded.labels == gamma.labels
        assert loaded.highway == gamma.highway

    def test_loaded_labelling_is_usable(self, tmp_path):
        g = grid_graph(4, 4)
        gamma = build_hcl(g, [0, 15])
        path = tmp_path / "l.json"
        save_labelling(gamma, path)
        loaded = load_labelling(path)
        # still valid against the graph it was built from
        check_matches_rebuild(g, loaded)

    def test_unreachable_highway_pairs_roundtrip(self, tmp_path):
        from repro.graph.dynamic_graph import DynamicGraph

        g = DynamicGraph.from_edges([(0, 1), (2, 3)])
        gamma = build_hcl(g, [0, 2])
        path = tmp_path / "l.json"
        save_labelling(gamma, path)
        loaded = load_labelling(path)
        assert loaded.highway.distance(0, 2) == float("inf")

    def test_format_check(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "other"}')
        with pytest.raises(ReproError, match="not a repro-hcl-v1"):
            load_labelling(path)

    def test_maintained_labelling_roundtrips(self, tmp_path):
        from repro.core.dynamic import DynamicHCL

        oracle = DynamicHCL.build(grid_graph(4, 4), landmarks=[0, 15])
        oracle.insert_edges([(0, 15), (3, 12)])
        path = tmp_path / "l.json"
        save_labelling(oracle.labelling, path)
        loaded = load_labelling(path)
        assert loaded.labels == oracle.labelling.labels
