"""Tests for labelling serialization."""

import pytest

from repro.core.construction import build_hcl
from repro.core.validation import check_matches_rebuild
from repro.exceptions import ReproError
from repro.graph.generators import grid_graph, ring_of_cliques
from repro.utils.serialization import load_labelling, save_labelling


class TestRoundTrip:
    def test_plain_json(self, tmp_path):
        g = ring_of_cliques(4, 4)
        gamma = build_hcl(g, [0, 4, 8])
        path = tmp_path / "labelling.json"
        save_labelling(gamma, path)
        loaded = load_labelling(path)
        assert loaded.labels == gamma.labels
        assert loaded.highway == gamma.highway
        assert loaded.landmarks == gamma.landmarks

    def test_gzip(self, tmp_path):
        g = grid_graph(4, 4)
        gamma = build_hcl(g, [0, 15])
        path = tmp_path / "labelling.json.gz"
        save_labelling(gamma, path)
        loaded = load_labelling(path)
        assert loaded.labels == gamma.labels
        assert loaded.highway == gamma.highway

    def test_loaded_labelling_is_usable(self, tmp_path):
        g = grid_graph(4, 4)
        gamma = build_hcl(g, [0, 15])
        path = tmp_path / "l.json"
        save_labelling(gamma, path)
        loaded = load_labelling(path)
        # still valid against the graph it was built from
        check_matches_rebuild(g, loaded)

    def test_unreachable_highway_pairs_roundtrip(self, tmp_path):
        from repro.graph.dynamic_graph import DynamicGraph

        g = DynamicGraph.from_edges([(0, 1), (2, 3)])
        gamma = build_hcl(g, [0, 2])
        path = tmp_path / "l.json"
        save_labelling(gamma, path)
        loaded = load_labelling(path)
        assert loaded.highway.distance(0, 2) == float("inf")

    def test_format_check(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "other"}')
        with pytest.raises(ReproError, match="not a repro-hcl-v1"):
            load_labelling(path)

    def test_maintained_labelling_roundtrips(self, tmp_path):
        from repro.core.dynamic import DynamicHCL

        oracle = DynamicHCL.build(grid_graph(4, 4), landmarks=[0, 15])
        oracle.insert_edges([(0, 15), (3, 12)])
        path = tmp_path / "l.json"
        save_labelling(oracle.labelling, path)
        loaded = load_labelling(path)
        assert loaded.labels == oracle.labelling.labels


class TestStreamedWriter:
    """The streaming writer must emit exactly what ``json.dump`` of the
    materialised payload used to — same bytes, tiny peak memory."""

    def test_output_is_byte_identical_to_json_dump(self, tmp_path):
        import json

        g = ring_of_cliques(4, 4)
        gamma = build_hcl(g, [0, 4, 8])
        path = tmp_path / "labelling.json"
        save_labelling(gamma, path)
        text = path.read_text()
        payload = json.loads(text)
        assert text == json.dumps(payload)
        assert payload["labels"] == [
            [v, r, d]
            for v, label in sorted(gamma.labels.items())
            for r, d in sorted(label.items())
        ]

    def test_small_chunk_streaming_matches_one_shot(self, tmp_path):
        # Force many flush chunks: output must not change with chunk size.
        from repro.utils import serialization

        g = grid_graph(5, 5)
        gamma = build_hcl(g, [0, 24, 12])
        head = {
            "format": "repro-hcl-v1",
            "landmarks": gamma.landmarks,
            "highway": serialization._highway_cells(gamma),
        }
        one_shot = tmp_path / "one.json"
        chunked = tmp_path / "chunked.json"
        with open(one_shot, "w") as handle:
            serialization._write_streamed(
                handle, head, serialization._iter_label_rows(gamma)
            )
        with open(chunked, "w") as handle:
            serialization._write_streamed(
                handle, head, serialization._iter_label_rows(gamma), chunk=3
            )
        assert one_shot.read_text() == chunked.read_text()
        assert load_labelling(chunked).labels == gamma.labels

    def test_empty_labelling_streams_valid_json(self, tmp_path):
        from repro.graph.dynamic_graph import DynamicGraph

        g = DynamicGraph([0])
        gamma = build_hcl(g, [0])  # the lone landmark labels nothing
        path = tmp_path / "empty.json"
        save_labelling(gamma, path)
        loaded = load_labelling(path)
        assert loaded.labels.total_entries == gamma.labels.total_entries

    def test_oracle_save_streams_identically(self, tmp_path):
        import json

        from repro.core.dynamic import DynamicHCL
        from repro.utils.serialization import load_oracle, save_oracle

        oracle = DynamicHCL.build(grid_graph(4, 4), landmarks=[0, 15])
        oracle.insert_edge(0, 15)
        path = tmp_path / "oracle.json"
        save_oracle(oracle, path)
        text = path.read_text()
        assert text == json.dumps(json.loads(text))
        restored = load_oracle(path)
        assert restored.labelling == oracle.labelling
        assert sorted(restored.graph.edges()) == sorted(oracle.graph.edges())
