"""Tests for the timing helpers."""

import math

import pytest

from repro.utils.timing import Stopwatch, TimingStats


class TestStopwatch:
    def test_measures_nonnegative(self):
        with Stopwatch() as sw:
            sum(range(100))
        assert sw.elapsed >= 0.0


class TestTimingStats:
    def test_add_and_aggregate(self):
        stats = TimingStats()
        for s in (0.001, 0.002, 0.003):
            stats.add(s)
        assert stats.count == 3
        assert stats.total == pytest.approx(0.006)
        assert stats.mean == pytest.approx(0.002)
        assert stats.median == pytest.approx(0.002)
        assert stats.maximum == pytest.approx(0.003)
        assert stats.mean_ms() == pytest.approx(2.0)

    def test_time_records_and_returns(self):
        stats = TimingStats()
        result = stats.time(lambda a, b: a + b, 2, b=3)
        assert result == 5
        assert stats.count == 1

    def test_rejects_bad_samples(self):
        stats = TimingStats()
        with pytest.raises(ValueError):
            stats.add(-1.0)
        with pytest.raises(ValueError):
            stats.add(math.nan)

    def test_empty_stats_raise(self):
        stats = TimingStats()
        with pytest.raises(ValueError):
            _ = stats.mean
        with pytest.raises(ValueError):
            _ = stats.median
        with pytest.raises(ValueError):
            _ = stats.maximum

    def test_summary_keys(self):
        stats = TimingStats()
        stats.add(0.001)
        assert set(stats.summary()) == {
            "count", "total_s", "mean_ms", "median_ms", "max_ms"
        }
