"""Registry: families, get-or-create, and the Prometheus exposition."""

from __future__ import annotations

import pytest

from repro.exceptions import ReproError
from repro.obs.registry import (
    COUNT_BOUNDS,
    LATENCY_BOUNDS,
    Histogram,
    MetricsRegistry,
    get_registry,
)


class TestFamilies:
    def test_counter_inc_and_labels(self):
        registry = MetricsRegistry()
        requests = registry.counter("reqs_total", "Requests.", labelnames=("op",))
        requests.labels(op="query").inc()
        requests.labels(op="query").inc(2)
        requests.labels(op="update").inc()
        assert requests.labels(op="query").value == 3
        assert requests.labels(op="update").value == 1

    def test_counter_rejects_negative_inc(self):
        with pytest.raises(ReproError):
            MetricsRegistry().counter("c_total").inc(-1)

    def test_gauge_goes_both_ways(self):
        gauge = MetricsRegistry().gauge("lag")
        gauge.set(5)
        gauge.inc()
        gauge.dec(3)
        assert gauge.value == 3

    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("shared_total", "help")
        second = registry.counter("shared_total")
        assert first is second

    def test_kind_clash_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ReproError):
            registry.gauge("thing")

    def test_invalid_metric_name_rejected(self):
        registry = MetricsRegistry()
        for bad in ("", "has space", "1leading", "dash-ed"):
            with pytest.raises(ReproError):
                registry.counter(bad)

    def test_attach_rejects_bound_mismatch(self):
        registry = MetricsRegistry()
        family = registry.histogram("lat_seconds", bounds=LATENCY_BOUNDS)
        with pytest.raises(ReproError):
            family.attach(Histogram(bounds=COUNT_BOUNDS))

    def test_attached_histogram_is_shared_not_copied(self):
        registry = MetricsRegistry()
        owned = Histogram()
        registry.histogram("lat_seconds").attach(owned)
        owned.observe(0.005)
        assert "lat_seconds_count 1" in registry.render()

    def test_on_collect_refreshes_lazy_gauges(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("epoch")
        state = {"epoch": 0}
        registry.on_collect(lambda: gauge.set(state["epoch"]))
        state["epoch"] = 7
        assert "epoch 7" in registry.render()
        state["epoch"] = 8
        assert "epoch 8" in registry.render()

    def test_default_registry_is_a_singleton(self):
        assert get_registry() is get_registry()


class TestExposition:
    """Golden-format checks against the text exposition v0.0.4 rules."""

    def test_golden_exposition(self):
        registry = MetricsRegistry()
        requests = registry.counter(
            "repro_requests_total", "Requests handled.", labelnames=("op",)
        )
        requests.labels(op="query").inc(4)
        registry.gauge("repro_epoch", "Served epoch.").set(3)
        hist = registry.histogram(
            "repro_latency_seconds", "Latency.", bounds=(0.1, 1.0)
        )
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        text = registry.render()
        assert text == (
            "# HELP repro_epoch Served epoch.\n"
            "# TYPE repro_epoch gauge\n"
            "repro_epoch 3\n"
            "# HELP repro_latency_seconds Latency.\n"
            "# TYPE repro_latency_seconds histogram\n"
            'repro_latency_seconds_bucket{le="0.1"} 1\n'
            'repro_latency_seconds_bucket{le="1"} 2\n'
            'repro_latency_seconds_bucket{le="+Inf"} 3\n'
            "repro_latency_seconds_sum 5.55\n"
            "repro_latency_seconds_count 3\n"
            "# HELP repro_requests_total Requests handled.\n"
            "# TYPE repro_requests_total counter\n"
            'repro_requests_total{op="query"} 4\n'
        )

    def test_bucket_counts_are_cumulative_and_end_at_count(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds", bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            hist.observe(value)
        lines = [
            line for line in registry.render().splitlines()
            if line.startswith("h_seconds_bucket")
        ]
        cumulative = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert cumulative == sorted(cumulative)  # monotone
        assert lines[-1] == 'h_seconds_bucket{le="+Inf"} 4'

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", labelnames=("who",))
        counter.labels(who='a"b\\c\nd').inc()
        assert 'c_total{who="a\\"b\\\\c\\nd"} 1' in registry.render()

    def test_families_render_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("zzz_total").inc()
        registry.counter("aaa_total").inc()
        text = registry.render()
        assert text.index("aaa_total") < text.index("zzz_total")
