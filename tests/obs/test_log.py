"""Structured logging: JSON-lines shape, level gating, env thresholds."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.log import (
    StructuredLogger,
    get_logger,
    log_threshold,
    slow_threshold_ms,
)
from repro.obs.trace import SpanRecorder, span


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv("REPRO_LOG_LEVEL", raising=False)
    monkeypatch.delenv("REPRO_SLOW_MS", raising=False)
    monkeypatch.delenv("REPRO_OBS", raising=False)


def _records(buf: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in buf.getvalue().splitlines()]


def test_record_shape_is_one_json_object_per_line():
    buf = io.StringIO()
    log = StructuredLogger("server", stream=buf)
    log.info("started", port=8355, epoch=0)
    log.warning("slow_query", ms=412.5)
    first, second = _records(buf)
    assert first["component"] == "server"
    assert first["event"] == "started"
    assert first["port"] == 8355
    assert first["level"] == "info"
    assert isinstance(first["ts"], float)
    assert second["level"] == "warning"
    assert second["ms"] == 412.5


def test_default_threshold_drops_debug():
    buf = io.StringIO()
    log = StructuredLogger("server", stream=buf)
    log.debug("noisy", detail="x")
    log.info("kept")
    assert [rec["event"] for rec in _records(buf)] == ["kept"]


def test_threshold_env_is_reread_per_call(monkeypatch):
    buf = io.StringIO()
    log = StructuredLogger("server", stream=buf)
    monkeypatch.setenv("REPRO_LOG_LEVEL", "error")
    log.warning("dropped")
    monkeypatch.setenv("REPRO_LOG_LEVEL", "debug")
    log.debug("kept")
    assert [rec["event"] for rec in _records(buf)] == ["kept"]


def test_level_off_silences_everything(monkeypatch):
    monkeypatch.setenv("REPRO_LOG_LEVEL", "off")
    buf = io.StringIO()
    StructuredLogger("server", stream=buf).error("fatal")
    assert buf.getvalue() == ""


def test_unknown_level_name_falls_back_to_info(monkeypatch):
    monkeypatch.setenv("REPRO_LOG_LEVEL", "verbose")
    assert log_threshold() == 20  # the "info" rung


def test_ambient_trace_id_is_attached():
    buf = io.StringIO()
    log = StructuredLogger("server", stream=buf)
    with span("query", "server", trace="feedbeef", recorder=SpanRecorder()):
        log.info("inside")
    log.info("outside")
    inside, outside = _records(buf)
    assert inside["trace"] == "feedbeef"
    assert "trace" not in outside


def test_slow_threshold_env(monkeypatch):
    assert slow_threshold_ms() == 250.0
    monkeypatch.setenv("REPRO_SLOW_MS", "75.5")
    assert slow_threshold_ms() == 75.5
    monkeypatch.setenv("REPRO_SLOW_MS", "not-a-number")
    assert slow_threshold_ms() == 250.0


def test_get_logger_caches_per_component():
    assert get_logger("router") is get_logger("router")
    assert get_logger("router") is not get_logger("replica")
