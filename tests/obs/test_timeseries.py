"""Metrics history: bounded NDJSON recorder, downsampling, torn tails."""

from __future__ import annotations

import json

import pytest

from repro.obs.timeseries import TimeSeriesRecorder, peak_rss_kb, read_series


class TestReadSeries:
    def test_missing_file_is_empty(self, tmp_path):
        assert read_series(tmp_path / "nope.ndjson") == []

    def test_reads_points_in_order(self, tmp_path):
        path = tmp_path / "h.ndjson"
        path.write_text('{"ts": 1, "qps": 10}\n{"ts": 2, "qps": 20}\n')
        assert [p["qps"] for p in read_series(path)] == [10, 20]

    def test_torn_tail_is_ignored(self, tmp_path):
        path = tmp_path / "h.ndjson"
        path.write_text('{"ts": 1, "qps": 10}\n{"ts": 2, "qp')  # crashed mid-append
        assert [p["ts"] for p in read_series(path)] == [1]

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "h.ndjson"
        path.write_text('{"ts": 1}\ngarbage\n{"ts": 2}\n')
        with pytest.raises(ValueError):
            read_series(path)


class TestRecorder:
    def test_record_once_stamps_ts_and_appends(self, tmp_path):
        path = tmp_path / "h.ndjson"
        rec = TimeSeriesRecorder(path, lambda: {"qps": 42.0})
        point = rec.record_once()
        assert point["qps"] == 42.0 and point["ts"] > 0
        on_disk = read_series(path)
        assert len(on_disk) == 1 and on_disk[0]["qps"] == 42.0
        assert rec.points() == on_disk

    def test_sampler_exception_counts_as_error(self, tmp_path):
        calls = iter([ValueError("boom")])

        def sampler():
            raise next(calls)

        rec = TimeSeriesRecorder(tmp_path / "h.ndjson", sampler)
        assert rec.record_once() is None
        assert rec.errors == 1
        assert rec.points() == []

    def test_downsampling_bounds_memory_and_file(self, tmp_path):
        path = tmp_path / "h.ndjson"
        rec = TimeSeriesRecorder(path, lambda: {"v": 1}, max_points=8)
        for _ in range(40):
            rec.record_once()
        assert len(rec.points()) <= 8
        # The file is rewritten in lock-step with the in-memory buffer.
        assert read_series(path) == rec.points()

    def test_downsampling_keeps_recent_half_dense(self, tmp_path):
        seq = iter(range(100))
        rec = TimeSeriesRecorder(
            tmp_path / "h.ndjson", lambda: {"n": next(seq)}, max_points=8
        )
        for _ in range(9):
            rec.record_once()
        kept = [p["n"] for p in rec.points()]
        # Newest points survive verbatim; the old half is thinned 2:1.
        assert kept[-4:] == [5, 6, 7, 8]
        assert all(a < b for a, b in zip(kept, kept[1:]))

    def test_resumes_existing_file(self, tmp_path):
        path = tmp_path / "h.ndjson"
        path.write_text(json.dumps({"ts": 1.0, "qps": 5}) + "\n")
        rec = TimeSeriesRecorder(path, lambda: {"qps": 6})
        assert [p["qps"] for p in rec.points()] == [5]
        rec.record_once()
        assert [p["qps"] for p in rec.points()] == [5, 6]

    def test_on_point_hook_sees_full_history(self, tmp_path):
        seen: list[int] = []
        rec = TimeSeriesRecorder(
            tmp_path / "h.ndjson",
            lambda: {"v": 1},
            on_point=lambda points: seen.append(len(points)),
        )
        rec.record_once()
        rec.record_once()
        assert seen == [1, 2]

    def test_on_point_exception_is_counted_not_raised(self, tmp_path):
        def hook(points):
            raise RuntimeError("evaluator broke")

        rec = TimeSeriesRecorder(tmp_path / "h.ndjson", lambda: {"v": 1}, on_point=hook)
        assert rec.record_once() is not None
        assert rec.errors == 1

    def test_memory_only_mode(self):
        rec = TimeSeriesRecorder(None, lambda: {"v": 7})
        rec.record_once()
        assert [p["v"] for p in rec.points()] == [7]
        assert rec.path is None

    def test_points_limit_returns_tail(self, tmp_path):
        seq = iter(range(10))
        rec = TimeSeriesRecorder(None, lambda: {"n": next(seq)})
        for _ in range(5):
            rec.record_once()
        assert [p["n"] for p in rec.points(limit=2)] == [3, 4]

    def test_start_stop_thread(self, tmp_path):
        rec = TimeSeriesRecorder(
            tmp_path / "h.ndjson", lambda: {"v": 1}, interval_s=0.01
        )
        rec.start()
        try:
            import time

            deadline = time.monotonic() + 2.0
            while not rec.points() and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            rec.stop()
        assert rec.points()
        assert not rec.running

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            TimeSeriesRecorder(None, lambda: {}, interval_s=0)
        with pytest.raises(ValueError):
            TimeSeriesRecorder(None, lambda: {}, max_points=3)


def test_peak_rss_kb_is_positive():
    assert peak_rss_kb() > 0
