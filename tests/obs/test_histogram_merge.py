"""Merge exactness: distributed histograms lose nothing to sharding.

The cluster's exact-percentile claim rests on two properties, both
checked here over randomized partitions:

1. **Losslessness** — merging per-shard histograms equals one histogram
   of the pooled samples (vector addition of counts commutes with
   sharding), and survives a serialise/merge round-trip through the wire
   form the replicas actually ship.
2. **Bracketing** — :meth:`Histogram.quantile_bounds` provably brackets
   the raw-sample percentile, and :meth:`Histogram.quantile` lands inside
   the bracket, so the merged tail estimate is anchored to the truth of
   the pooled population (factor-2 buckets → bounded relative error).
"""

from __future__ import annotations

import math
import random

import pytest

from repro.obs.registry import COUNT_BOUNDS, Histogram, merge_histograms
from repro.serving.metrics import percentile

QUANTILES = (0, 10, 50, 90, 95, 99, 100)


def _random_samples(rng: random.Random, n: int) -> list[float]:
    """Latency-shaped samples spanning several orders of magnitude."""
    return [10 ** rng.uniform(-6.5, 1.5) for _ in range(n)]


def _shard(rng: random.Random, samples: list[float], shards: int):
    parts: list[list[float]] = [[] for _ in range(shards)]
    for sample in samples:
        parts[rng.randrange(shards)].append(sample)
    return parts


@pytest.mark.parametrize("seed", range(10))
def test_merge_equals_pooled_histogram(seed):
    rng = random.Random(seed)
    samples = _random_samples(rng, rng.randint(1, 400))
    parts = _shard(rng, samples, rng.randint(2, 5))

    pooled = Histogram()
    for sample in samples:
        pooled.observe(sample)

    shard_hists = []
    for part in parts:
        hist = Histogram()
        for sample in part:
            hist.observe(sample)
        shard_hists.append(hist)

    merged = merge_histograms(shard_hists)
    assert merged == pooled
    assert merged.sum == pytest.approx(pooled.sum)

    # The wire round-trip (replica -> stats dict -> router merge) is
    # exactly as lossless.
    revived = merge_histograms([h.to_dict() for h in shard_hists])
    assert revived == pooled


@pytest.mark.parametrize("seed", range(10))
def test_quantile_bounds_bracket_raw_percentiles(seed):
    rng = random.Random(100 + seed)
    samples = _random_samples(rng, rng.randint(1, 300))
    hist = Histogram()
    for sample in samples:
        hist.observe(sample)

    for q in QUANTILES:
        raw = percentile(sorted(samples), q)
        lo, hi = hist.quantile_bounds(q)
        assert lo <= raw <= hi, (q, lo, raw, hi)
        estimate = hist.quantile(q)
        assert lo <= estimate <= min(hi, hist.bounds[-1])


@pytest.mark.parametrize("seed", range(5))
def test_merged_quantiles_match_pooled_population(seed):
    """The property the router's `stats` aggregation relies on: the
    merged histogram's percentile bracket contains the percentile of the
    pooled raw samples — the merge is as good as central recording."""
    rng = random.Random(200 + seed)
    samples = _random_samples(rng, rng.randint(50, 500))
    parts = _shard(rng, samples, 3)
    shard_hists = []
    for part in parts:
        hist = Histogram()
        for sample in part:
            hist.observe(sample)
        shard_hists.append(hist)
    merged = merge_histograms(shard_hists)

    for q in QUANTILES:
        raw = percentile(sorted(samples), q)
        lo, hi = merged.quantile_bounds(q)
        assert lo <= raw <= hi
        if hi is not math.inf and lo > 0:
            # Factor-2 buckets: floor/ceil ranks land in the same or
            # adjacent buckets, so the bracket spans at most two bucket
            # widths — hi within 4x of lo (2x per endpoint).
            assert hi <= lo * 4


def test_merge_rejects_mismatched_bounds():
    from repro.exceptions import ReproError

    with pytest.raises(ReproError):
        Histogram().merge(Histogram(bounds=COUNT_BOUNDS))


def test_empty_and_singleton_edge_cases():
    empty = Histogram()
    assert empty.quantile(50) is None
    assert empty.quantile_bounds(99) is None
    assert merge_histograms([]) is None

    one = Histogram()
    one.observe(0.003)
    for q in QUANTILES:
        lo, hi = one.quantile_bounds(q)
        assert lo <= 0.003 <= hi


def test_overflow_bucket_is_unbounded_above():
    hist = Histogram(bounds=(1.0, 2.0))
    hist.observe(50.0)
    lo, hi = hist.quantile_bounds(99)
    assert lo == 2.0 and hi == math.inf
    assert hist.quantile(99) == 2.0  # saturates at the top bound
