"""SLOs: rule parsing, burn-rate evaluation, alert transitions, gauges."""

from __future__ import annotations

import io
import json

import pytest

from repro.exceptions import ReproError
from repro.obs.log import StructuredLogger
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import SLO, SLOEvaluator, default_slos, load_slos, parse_slos


def _events(buf: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in buf.getvalue().splitlines()]


def _points(values, *, metric="query_p99_ms", now=1000.0, step=10.0):
    """One point per value, newest at ``now``, spaced ``step`` apart."""
    out = []
    for i, value in enumerate(reversed(values)):
        out.append({"ts": now - i * step, metric: value})
    out.reverse()
    return out


class TestSLO:
    def test_violates_above(self):
        slo = SLO("p99", "query_p99_ms", objective=100.0)
        assert slo.violates(150.0) is True
        assert slo.violates(100.0) is False
        assert slo.violates(None) is None
        assert slo.violates("nan-ish-garbage") is None
        assert slo.violates(True) is None  # bools are not measurements

    def test_violates_below(self):
        slo = SLO("qps-floor", "qps", objective=10.0, direction="below")
        assert slo.violates(5.0) is True
        assert slo.violates(20.0) is False

    def test_validation(self):
        with pytest.raises(ReproError):
            SLO("x", "m", 1.0, direction="sideways")
        with pytest.raises(ReproError):
            SLO("x", "m", 1.0, budget=0.0)
        with pytest.raises(ReproError):
            SLO("x", "m", 1.0, windows=())
        with pytest.raises(ReproError):
            SLO("x", "m", 1.0, windows=((60.0, -1.0),))

    def test_to_dict_round_trips_through_parse(self):
        slo = SLO("p99", "query_p99_ms", 100.0, budget=0.1)
        (back,) = parse_slos(json.dumps([slo.to_dict()]))
        assert back == slo


class TestParsing:
    def test_parse_rejects_non_list(self):
        with pytest.raises(ReproError, match="JSON array"):
            parse_slos('{"name": "x"}')

    def test_parse_rejects_bad_json(self):
        with pytest.raises(ReproError, match="invalid SLO rules JSON"):
            parse_slos("[not json")

    def test_parse_rejects_missing_key(self):
        with pytest.raises(ReproError, match="missing required key"):
            parse_slos('[{"name": "x", "metric": "m"}]')

    def test_parse_rejects_duplicate_names(self):
        rule = {"name": "x", "metric": "m", "objective": 1.0}
        with pytest.raises(ReproError, match="duplicate"):
            parse_slos([rule, dict(rule)])

    def test_load_slos_from_file(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(
            '[{"name": "lag", "metric": "max_lag", "objective": 64,'
            ' "windows": [[30, 1.5]]}]'
        )
        (slo,) = load_slos(path)
        assert slo.name == "lag"
        assert slo.windows == ((30.0, 1.5),)

    def test_default_slos_by_role(self):
        server = {s.name for s in default_slos("server")}
        router = {s.name for s in default_slos("router")}
        assert server == {"query-p99", "error-rate"}
        assert router == server | {"replica-lag", "wal-growth"}


class TestEvaluator:
    def _slo(self, **kw):
        kw.setdefault("windows", ((60.0, 1.0),))
        return SLO("p99", "query_p99_ms", objective=100.0, budget=0.5, **kw)

    def test_no_data_never_burns(self):
        ev = SLOEvaluator([self._slo()])
        (evaluation,) = ev.evaluate([], now=1000.0)
        assert evaluation["firing"] is False
        assert evaluation["burn"] == 0.0
        # Points missing the metric are equally inert.
        (evaluation,) = ev.evaluate(
            [{"ts": 990.0, "qps": 5}], now=1000.0
        )
        assert evaluation["firing"] is False

    def test_all_windows_must_agree(self):
        slo = SLO(
            "p99", "query_p99_ms", objective=100.0, budget=0.5,
            windows=((30.0, 1.0), (300.0, 1.0)),
        )
        ev = SLOEvaluator([slo])
        # Bad samples only in the last 30s; the 300s window is healthy
        # (mostly good samples), so the alert must not fire.
        points = _points([50.0] * 20 + [200.0, 200.0], now=1000.0, step=10.0)
        (evaluation,) = ev.evaluate(points, now=1000.0)
        short, long = evaluation["windows"]
        assert short["firing"] is True
        assert long["firing"] is False
        assert evaluation["firing"] is False

    def test_firing_and_resolved_transitions_are_logged(self):
        buf = io.StringIO()
        logger = StructuredLogger("slo-test", stream=buf)
        ev = SLOEvaluator([self._slo()], logger=logger)
        bad = _points([200.0] * 4, now=1000.0)
        (evaluation,) = ev.evaluate(bad, now=1000.0)
        assert evaluation["firing"] is True
        assert evaluation["since"] == 1000.0
        assert [e["event"] for e in _events(buf)] == ["alert_firing"]
        assert ev.active_alerts()[0]["slo"] == "p99"

        good = _points([50.0] * 4, now=1100.0)
        (evaluation,) = ev.evaluate(good, now=1100.0)
        assert evaluation["firing"] is False
        assert evaluation["since"] is None
        assert [e["event"] for e in _events(buf)] == ["alert_firing", "alert_resolved"]
        assert _events(buf)[-1]["dur_s"] == 100.0
        assert ev.active_alerts() == []
        assert len(ev.last_evaluations()) == 1

    def test_refiring_is_not_relogged(self):
        buf = io.StringIO()
        logger = StructuredLogger("slo-test", stream=buf)
        ev = SLOEvaluator([self._slo()], logger=logger)
        bad = _points([200.0] * 4, now=1000.0)
        ev.evaluate(bad, now=1000.0)
        ev.evaluate(bad, now=1000.0)
        assert [e["event"] for e in _events(buf)] == ["alert_firing"]

    def test_gauges_track_burn_and_breach(self):
        registry = MetricsRegistry()
        ev = SLOEvaluator([self._slo()], registry=registry)
        ev.evaluate(_points([200.0] * 4, now=1000.0), now=1000.0)
        text = registry.render()
        assert 'repro_slo_burn{slo="p99"} 2' in text
        assert 'repro_slo_breach{slo="p99"} 1' in text
        ev.evaluate(_points([50.0] * 4, now=1100.0), now=1100.0)
        text = registry.render()
        assert 'repro_slo_breach{slo="p99"} 0' in text

    def test_old_points_fall_out_of_the_window(self):
        ev = SLOEvaluator([self._slo()])
        stale = _points([200.0] * 4, now=100.0)
        (evaluation,) = ev.evaluate(stale, now=1000.0)
        assert evaluation["windows"][0]["samples"] == 0
        assert evaluation["firing"] is False
