"""Exporter: the one-endpoint HTTP scrape server for Prometheus."""

from __future__ import annotations

import asyncio
import urllib.error
import urllib.request

import pytest

from repro.exceptions import ServingError
from repro.obs.exporter import CONTENT_TYPE, MetricsExporter
from repro.obs.registry import MetricsRegistry


def _run(coro):
    return asyncio.run(coro)


def _scrape(url: str) -> tuple[int, str, str]:
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read().decode()


def test_address_requires_started_server():
    exporter = MetricsExporter(MetricsRegistry())
    with pytest.raises(ServingError):
        exporter.address


def test_get_returns_rendered_exposition():
    registry = MetricsRegistry()
    registry.counter("repro_requests_total", "Requests.").inc(3)
    registry.histogram("repro_query_latency_seconds").observe(0.004)

    async def scenario():
        exporter = await MetricsExporter(registry, port=0).start()
        host, port = exporter.address
        status, ctype, body = await asyncio.to_thread(
            _scrape, f"http://{host}:{port}/"
        )
        await exporter.stop()
        return status, ctype, body

    status, ctype, body = _run(scenario())
    assert status == 200
    assert ctype == CONTENT_TYPE
    assert "repro_requests_total 3" in body
    assert 'repro_query_latency_seconds_bucket{le="+Inf"} 1' in body


def test_scrape_reflects_live_registry_state():
    registry = MetricsRegistry()
    counter = registry.counter("repro_requests_total")

    async def scenario():
        exporter = await MetricsExporter(registry, port=0).start()
        host, port = exporter.address
        url = f"http://{host}:{port}/"
        counter.inc()
        _, _, first = await asyncio.to_thread(_scrape, url)
        counter.inc(4)
        _, _, second = await asyncio.to_thread(_scrape, url)
        await exporter.stop()
        return first, second

    first, second = _run(scenario())
    assert "repro_requests_total 1" in first
    assert "repro_requests_total 5" in second


def test_non_get_is_405():
    async def scenario():
        exporter = await MetricsExporter(MetricsRegistry(), port=0).start()
        host, port = exporter.address

        def post():
            req = urllib.request.Request(
                f"http://{host}:{port}/", data=b"x", method="POST"
            )
            try:
                urllib.request.urlopen(req, timeout=5)
            except urllib.error.HTTPError as err:
                return err.code
            return None

        code = await asyncio.to_thread(post)
        await exporter.stop()
        return code

    assert _run(scenario()) == 405


def test_malformed_request_line_is_400():
    async def scenario():
        exporter = await MetricsExporter(MetricsRegistry(), port=0).start()
        host, port = exporter.address
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b"garbage\r\n")
        await writer.drain()
        response = await reader.read()
        writer.close()
        await exporter.stop()
        return response

    assert _run(scenario()).startswith(b"HTTP/1.0 400")


def test_concurrent_scrapes_during_registry_mutation():
    """Scrapes racing live registry mutation (new families, new label
    sets, counter bumps) must all succeed and render parseable text —
    the registry lock makes each render a consistent snapshot."""
    registry = MetricsRegistry()
    base = registry.counter("repro_requests_total")

    async def scenario():
        exporter = await MetricsExporter(registry, port=0).start()
        host, port = exporter.address
        url = f"http://{host}:{port}/"
        stop = asyncio.Event()

        async def mutate():
            i = 0
            while not stop.is_set():
                base.inc()
                family = registry.counter(
                    f"repro_chaos_{i % 7}_total", "Churn.", labelnames=("k",)
                )
                family.labels(k=f"v{i % 5}").inc()
                registry.gauge(f"repro_chaos_gauge_{i % 3}").set(i)
                i += 1
                await asyncio.sleep(0)

        mutator = asyncio.create_task(mutate())
        try:
            results = await asyncio.gather(
                *(asyncio.to_thread(_scrape, url) for _ in range(8))
            )
        finally:
            stop.set()
            await mutator
        await exporter.stop()
        return results

    results = _run(scenario())
    assert len(results) == 8
    for status, ctype, body in results:
        assert status == 200
        assert ctype == CONTENT_TYPE
        assert "repro_requests_total" in body
        # Every rendered line is either a comment or `name[{labels}] value`.
        for line in body.splitlines():
            assert line.startswith("#") or len(line.rsplit(" ", 1)) == 2


def test_stop_is_idempotent_and_releases_port():
    async def scenario():
        exporter = await MetricsExporter(MetricsRegistry(), port=0).start()
        host, port = exporter.address
        await exporter.stop()
        await exporter.stop()  # second stop is a no-op
        # The port is free again: a new exporter can bind it.
        again = await MetricsExporter(MetricsRegistry(), host=host, port=port).start()
        await again.stop()

    _run(scenario())
