"""Sampling profiler: attribution, folded output, lifecycle, env knobs."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs.profile import (
    OTHER_PHASE,
    PHASE_MARKERS,
    SamplingProfiler,
    attribute_folded,
    attribute_stack,
    dump_if_enabled,
    get_profiler,
    profile_enabled,
    reset_profiler,
    start_if_enabled,
)


@pytest.fixture(autouse=True)
def _fresh_process_profiler():
    reset_profiler()
    yield
    reset_profiler()


class TestAttribution:
    def test_innermost_marker_wins(self):
        stack = (
            "repro.serving.service._apply_chunk",  # coalesce
            "repro.core.inchl_fast.csr_repair_affected",  # repair (inner)
        )
        assert attribute_stack(stack) == "repair"

    def test_bare_function_names_match(self):
        assert attribute_stack(["csr_find_affected"]) == "find"

    def test_unmatched_stack_is_other(self):
        assert attribute_stack(["a.read", "b.loop"]) == OTHER_PHASE

    def test_every_marker_phase_is_an_engine_phase(self):
        from repro.serving.metrics import PHASE_NAMES

        assert set(PHASE_MARKERS.values()) <= set(PHASE_NAMES)

    def test_attribute_folded_round_trips_phase_table(self):
        prof = SamplingProfiler(interval_ms=1.0)
        prof.add_sample(("m._apply_chunk", "m.csr_repair_affected"), 3)
        prof.add_sample(("m.readline",), 1)
        assert attribute_folded(prof.folded()) == {"repair": 3, "other": 1}
        table = prof.phase_table()
        assert table["repair"] == {"samples": 3, "pct": 75.0}
        assert table["other"] == {"samples": 1, "pct": 25.0}

    def test_attribute_folded_ignores_malformed_lines(self):
        assert attribute_folded("not-a-count-line\n\n a;b 2\n") == {"other": 2}


class TestAggregation:
    def test_folded_is_sorted_by_descending_count(self):
        prof = SamplingProfiler(interval_ms=1.0)
        prof.add_sample(("a", "b"), 1)
        prof.add_sample(("c",), 5)
        assert prof.folded().splitlines() == ["c 5", "a;b 1"]

    def test_empty_stack_is_ignored(self):
        prof = SamplingProfiler(interval_ms=1.0)
        prof.add_sample(())
        assert prof.samples == 0

    def test_distinct_stack_cap_folds_into_truncated(self):
        prof = SamplingProfiler(interval_ms=1.0, max_stacks=2)
        prof.add_sample(("a",))
        prof.add_sample(("b",))
        prof.add_sample(("c",))  # over the cap
        prof.add_sample(("a",))  # existing stack still counts normally
        stats = prof.stats()
        assert stats["samples"] == 4
        assert stats["truncated_samples"] == 1
        assert "(truncated) 1" in prof.folded()

    def test_reset_drops_samples(self):
        prof = SamplingProfiler(interval_ms=1.0)
        prof.add_sample(("a",), 7)
        prof.reset()
        assert prof.samples == 0
        assert prof.folded() == ""

    def test_dump_writes_folded_text(self, tmp_path):
        prof = SamplingProfiler(interval_ms=1.0)
        prof.add_sample(("a", "b"), 2)
        out = tmp_path / "out.folded"
        prof.dump(out)
        assert out.read_text() == "a;b 2\n"


class TestLiveSampling:
    def test_sampler_captures_a_busy_thread(self):
        prof = SamplingProfiler(interval_ms=2.0)
        stop = threading.Event()

        def busy():
            while not stop.is_set():
                sum(range(500))

        worker = threading.Thread(target=busy, daemon=True)
        worker.start()
        prof.start()
        try:
            deadline = time.monotonic() + 2.0
            while prof.samples < 5 and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            prof.stop()
            stop.set()
            worker.join(timeout=2.0)
        assert prof.samples >= 5
        assert "busy" in prof.folded()
        assert prof.stats()["elapsed_s"] > 0

    def test_start_stop_are_idempotent(self):
        prof = SamplingProfiler(interval_ms=2.0)
        assert prof.start() is prof.start()
        assert prof.running
        prof.stop()
        prof.stop()
        assert not prof.running


class TestEnvKnobs:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert not profile_enabled()
        assert start_if_enabled() is None
        assert dump_if_enabled() is None

    def test_enabled_starts_and_dumps(self, tmp_path, monkeypatch):
        out = tmp_path / "server.folded"
        monkeypatch.setenv("REPRO_PROFILE", "1")
        monkeypatch.setenv("REPRO_PROFILE_OUT", str(out))
        monkeypatch.setenv("REPRO_PROFILE_INTERVAL_MS", "2")
        reset_profiler()
        prof = start_if_enabled()
        assert prof is not None and prof.running
        assert prof.interval_ms == 2.0
        prof.add_sample(("m.f",), 1)
        assert dump_if_enabled() == str(out)
        assert "m.f 1" in out.read_text()

    def test_bad_interval_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE_INTERVAL_MS", "banana")
        assert SamplingProfiler().interval_ms == 10.0
        monkeypatch.setenv("REPRO_PROFILE_INTERVAL_MS", "-3")
        assert SamplingProfiler().interval_ms == 10.0

    def test_process_profiler_is_a_singleton_until_reset(self):
        first = get_profiler()
        assert get_profiler() is first
        reset_profiler()
        assert get_profiler() is not first
