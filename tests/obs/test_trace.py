"""Tracing: span lifecycle, ambient propagation, recorder, env gating."""

from __future__ import annotations

import json

import pytest

from repro.obs.trace import (
    SpanRecorder,
    current_trace_id,
    get_recorder,
    new_trace_id,
    obs_enabled,
    record_span,
    reset_recorder,
    span,
)


@pytest.fixture(autouse=True)
def _fresh_recorder(monkeypatch):
    """Each test gets a clean process recorder and a clean env."""
    monkeypatch.delenv("REPRO_OBS", raising=False)
    monkeypatch.delenv("REPRO_SPAN_LOG", raising=False)
    reset_recorder()
    yield
    reset_recorder()


def test_new_trace_ids_are_hex_and_distinct():
    ids = {new_trace_id() for _ in range(64)}
    assert len(ids) == 64
    for tid in ids:
        assert len(tid) == 16
        int(tid, 16)  # hex or ValueError


class TestSpan:
    def test_untraced_span_is_a_no_op(self):
        recorder = SpanRecorder()
        with span("query", "server", recorder=recorder) as s:
            assert s is None
            assert current_trace_id() is None
        assert recorder.spans() == []

    def test_traced_span_is_recorded_with_duration(self):
        recorder = SpanRecorder()
        tid = new_trace_id()
        with span("query", "server", trace=tid, recorder=recorder, op="query") as s:
            assert s is not None
            assert current_trace_id() == tid
            s["epoch"] = 7  # mid-flight annotation
        assert current_trace_id() is None  # restored on exit
        (rec,) = recorder.spans()
        assert rec["trace"] == tid
        assert rec["name"] == "query"
        assert rec["component"] == "server"
        assert rec["op"] == "query"
        assert rec["epoch"] == 7
        assert rec["parent"] is None
        assert rec["dur_ms"] >= 0.0

    def test_nested_span_inherits_trace_and_links_parent(self):
        recorder = SpanRecorder()
        tid = new_trace_id()
        with span("outer", "router", trace=tid, recorder=recorder) as outer:
            with span("inner", "router", recorder=recorder) as inner:
                assert inner["trace"] == tid  # ambient inheritance
                assert inner["parent"] == outer["span"]
        inner_rec, outer_rec = recorder.spans()
        assert inner_rec["name"] == "inner"  # inner exits first
        assert outer_rec["parent"] is None

    def test_exception_is_stamped_and_context_restored(self):
        recorder = SpanRecorder()
        with pytest.raises(RuntimeError):
            with span("apply", "service", trace="t1", recorder=recorder):
                raise RuntimeError("boom")
        (rec,) = recorder.spans()
        assert rec["error"] == "RuntimeError"
        assert current_trace_id() is None

    def test_obs_off_disables_recording(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "off")
        assert not obs_enabled()
        recorder = SpanRecorder()
        with span("query", "server", trace="t1", recorder=recorder) as s:
            assert s is None
        assert recorder.spans() == []
        assert record_span("chunk", "writer", 1.0, recorder=recorder) is None


class TestRecordSpan:
    def test_generates_a_trace_id_when_none_given(self):
        recorder = SpanRecorder()
        rec = record_span("chunk", "writer", 12.3456, recorder=recorder, events=8)
        assert rec["dur_ms"] == 12.346
        assert rec["events"] == 8
        int(rec["trace"], 16)
        assert recorder.spans() == [rec]

    def test_explicit_trace_id_is_kept(self):
        recorder = SpanRecorder()
        rec = record_span("chunk", "writer", 1.0, trace="abc123", recorder=recorder)
        assert rec["trace"] == "abc123"


class TestRecorder:
    def test_ring_keeps_most_recent(self):
        recorder = SpanRecorder(capacity=4)
        for i in range(10):
            recorder.record({"trace": "t", "i": i})
        assert [s["i"] for s in recorder.spans()] == [6, 7, 8, 9]

    def test_filter_by_trace_and_limit(self):
        recorder = SpanRecorder()
        for i in range(6):
            recorder.record({"trace": "a" if i % 2 else "b", "i": i})
        assert [s["i"] for s in recorder.spans(trace="a")] == [1, 3, 5]
        assert [s["i"] for s in recorder.spans(trace="a", limit=2)] == [3, 5]

    def test_clear_empties_the_ring(self):
        recorder = SpanRecorder()
        recorder.record({"trace": "t"})
        recorder.clear()
        assert recorder.spans() == []

    def test_sink_appends_ndjson_lines(self, tmp_path):
        sink = tmp_path / "spans.ndjson"
        recorder = SpanRecorder(sink_path=str(sink))
        recorder.record({"trace": "t1", "name": "query"})
        recorder.record({"trace": "t2", "name": "update"})
        recorder.close()
        lines = [json.loads(line) for line in sink.read_text().splitlines()]
        assert [rec["trace"] for rec in lines] == ["t1", "t2"]

    def test_sink_retains_spans_the_ring_evicted(self, tmp_path):
        """The NDJSON sink is append-only history: ring overflow must
        not lose spans from the on-disk artifact."""
        sink = tmp_path / "spans.ndjson"
        recorder = SpanRecorder(capacity=4, sink_path=str(sink))
        for i in range(10):
            recorder.record({"trace": "t", "i": i})
        recorder.close()
        assert [s["i"] for s in recorder.spans()] == [6, 7, 8, 9]
        on_disk = [json.loads(line) for line in sink.read_text().splitlines()]
        assert [rec["i"] for rec in on_disk] == list(range(10))

    def test_process_recorder_reads_span_log_env(self, tmp_path, monkeypatch):
        sink = tmp_path / "proc.ndjson"
        monkeypatch.setenv("REPRO_SPAN_LOG", str(sink))
        reset_recorder()  # pick up the new env
        assert get_recorder() is get_recorder()  # one per process
        with span("query", "server", trace="t9"):
            pass
        assert json.loads(sink.read_text().splitlines()[0])["trace"] == "t9"
