"""Shared helpers for the reprolint self-tests.

Fixture modules under ``fixtures/`` carry ``# TP:RLnnn`` markers on
every line a rule must flag and ``# TN:RLnnn`` on deliberate
near-misses it must not; :func:`expected_lines` parses them and the
rule tests assert exact equality, so both false negatives *and* false
positives fail loudly.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.lint import LintConfig, run_lint

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]

_MARKER = re.compile(r"#\s*(TP|TN):(RL\d+)")


def expected_lines(fixture_dir: Path, rule: str, kind: str = "TP") -> set[tuple[str, int]]:
    """``{(relpath, line)}`` carrying a ``kind`` marker for ``rule``."""
    out: set[tuple[str, int]] = set()
    for file in sorted(fixture_dir.rglob("*.py")):
        rel = file.relative_to(fixture_dir).as_posix()
        for lineno, text in enumerate(file.read_text().splitlines(), start=1):
            for match in _MARKER.finditer(text):
                if match.group(1) == kind and match.group(2) == rule:
                    out.add((rel, lineno))
    return out


def lint_fixture(name: str, rule: str, **config_kwargs):
    """Run a single rule over one fixture tree (no baseline)."""
    root = FIXTURES / name
    config = LintConfig(root=root, paths=[root], select={rule}, **config_kwargs)
    return run_lint(config)


@pytest.fixture
def fixtures_dir() -> Path:
    return FIXTURES


@pytest.fixture
def repo_root() -> Path:
    return REPO_ROOT
