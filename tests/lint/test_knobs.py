"""The knob registry: parsing semantics, behavioural equivalence of the
migrated call sites, and the README table staying in sync."""

from __future__ import annotations

import pytest

from repro import knobs
from tests.lint.conftest import REPO_ROOT


def test_every_knob_is_documented_and_parseable():
    for name, knob in knobs.KNOBS.items():
        assert name == knob.name and name.startswith("REPRO_")
        assert knob.doc.strip()
        if knob.default is not None:
            knobs.get(name, environ={})  # default must parse


def test_defaults_when_unset():
    env: dict[str, str] = {}
    assert knobs.get("REPRO_LOG_LEVEL", env) == "info"
    assert knobs.get("REPRO_SLOW_MS", env) == 250.0
    assert knobs.get("REPRO_OBS", env) is True
    assert knobs.get("REPRO_PROFILE", env) is False
    assert knobs.get("REPRO_PROFILE_INTERVAL_MS", env) == 10.0
    assert knobs.get("REPRO_SPAN_LOG", env) is None
    assert knobs.get("REPRO_PROFILE_OUT", env) is None
    assert knobs.get("REPRO_BENCH_PROFILE", env) == "default"


def test_parse_errors_fall_back_to_the_default():
    assert knobs.get("REPRO_SLOW_MS", {"REPRO_SLOW_MS": "bogus"}) == 250.0
    assert (
        knobs.get("REPRO_PROFILE_INTERVAL_MS", {"REPRO_PROFILE_INTERVAL_MS": "-5"})
        == 10.0
    )
    assert (
        knobs.get("REPRO_PROFILE_INTERVAL_MS", {"REPRO_PROFILE_INTERVAL_MS": "2.5"})
        == 2.5
    )


def test_switch_parsing_matches_documented_sets():
    for value in ("off", "0", "false", "no", "OFF", " No "):
        assert knobs.get("REPRO_OBS", {"REPRO_OBS": value}) is False
    for value in ("on", "1", "anything-else"):
        assert knobs.get("REPRO_OBS", {"REPRO_OBS": value}) is True
    for value in ("1", "on", "true", "YES"):
        assert knobs.get("REPRO_PROFILE", {"REPRO_PROFILE": value}) is True
    for value in ("", "0", "off", "banana"):
        assert knobs.get("REPRO_PROFILE", {"REPRO_PROFILE": value}) is False


def test_required_knob_raises_when_unset_and_parses_json():
    with pytest.raises(KeyError):
        knobs.get("REPRO_REPLICA_SPEC", {})
    spec = knobs.get("REPRO_REPLICA_SPEC", {"REPRO_REPLICA_SPEC": '{"port": 1}'})
    assert spec == {"port": 1}
    with pytest.raises(ValueError):
        knobs.get("REPRO_REPLICA_SPEC", {"REPRO_REPLICA_SPEC": "not json"})


def test_unknown_knob_is_a_key_error():
    with pytest.raises(KeyError):
        knobs.get("REPRO_NOT_A_KNOB")


def test_migrated_call_sites_follow_the_registry(monkeypatch):
    """The accessor functions must behave exactly as before migration."""
    from repro.bench.profile import bench_profile
    from repro.obs.log import log_threshold, slow_threshold_ms
    from repro.obs.profile import _env_interval_ms, profile_enabled
    from repro.obs.trace import obs_enabled

    monkeypatch.setenv("REPRO_LOG_LEVEL", " DEBUG ")
    assert log_threshold() == 10
    monkeypatch.setenv("REPRO_LOG_LEVEL", "nonsense")
    assert log_threshold() == 20  # unknown level -> info

    monkeypatch.setenv("REPRO_SLOW_MS", "bogus")
    assert slow_threshold_ms() == 250.0
    monkeypatch.setenv("REPRO_SLOW_MS", "75.5")
    assert slow_threshold_ms() == 75.5

    monkeypatch.setenv("REPRO_OBS", "off")
    assert obs_enabled() is False
    monkeypatch.delenv("REPRO_OBS")
    assert obs_enabled() is True

    monkeypatch.setenv("REPRO_PROFILE", "1")
    assert profile_enabled() is True
    monkeypatch.setenv("REPRO_PROFILE_INTERVAL_MS", "0")
    assert _env_interval_ms() == 10.0  # non-positive -> default

    monkeypatch.setenv("REPRO_BENCH_PROFILE", "smoke")
    assert bench_profile().name == "smoke"


def test_current_values_reports_set_flag():
    rows = knobs.current_values({"REPRO_OBS": "off"})
    by_name = {r["name"]: r for r in rows}
    assert by_name["REPRO_OBS"]["set"] is True
    assert by_name["REPRO_OBS"]["value"] is False
    assert by_name["REPRO_SLOW_MS"]["set"] is False
    assert by_name["REPRO_REPLICA_SPEC"]["value"] is None  # never raises here


def test_readme_tuning_table_matches_registry():
    """README embeds render_table() verbatim between the knob markers."""
    readme = (REPO_ROOT / "README.md").read_text()
    begin, end = "<!-- knobs:begin -->", "<!-- knobs:end -->"
    assert begin in readme and end in readme, "README knob markers missing"
    embedded = readme.split(begin)[1].split(end)[0].strip()
    assert embedded == knobs.render_table().strip(), (
        "README 'Tuning knobs' table is stale — regenerate with "
        "`python -m repro knobs --format markdown`"
    )
