"""Suppression-comment semantics: line scope, file scope, tokenizing."""

from __future__ import annotations

from repro.lint.suppress import parse_suppressions
from tests.lint.conftest import lint_fixture


def test_line_suppression_moves_finding_to_suppressed_bucket():
    result = lint_fixture("suppressed", "RL005")
    # quiet.py: line 5 suppressed, line 6 flagged, line 10 suppressed
    # (multi-rule list); quiet_file.py: both prints file-suppressed.
    flagged = {(f.path, f.line) for f in result.findings}
    assert flagged == {("quiet.py", 6)}
    suppressed = {(f.path, f.line) for f in result.suppressed}
    assert ("quiet.py", 5) in suppressed
    assert ("quiet.py", 10) in suppressed
    assert {p for p, _ in suppressed} >= {"quiet.py", "quiet_file.py"}
    assert result.exit_code == 1  # the unsuppressed print still fails


def test_file_wide_suppression_covers_every_line():
    result = lint_fixture("suppressed", "RL005")
    assert not [f for f in result.findings if f.path == "quiet_file.py"]
    assert len([f for f in result.suppressed if f.path == "quiet_file.py"]) == 2


def test_parse_line_and_file_directives():
    sup = parse_suppressions(
        "x = 1  # reprolint: disable=RL001\n"
        "# reprolint: disable-file=RL005\n"
        "y = 2  # reprolint: disable=RL002,RL003\n"
    )
    assert sup.by_line == {1: {"RL001"}, 3: {"RL002", "RL003"}}
    assert sup.file_wide == {"RL005"}
    assert sup.covers(1, "RL001") and not sup.covers(1, "RL002")
    assert sup.covers(99, "RL005")  # file-wide covers any line


def test_directive_inside_string_literal_is_not_a_suppression():
    sup = parse_suppressions('msg = "# reprolint: disable=RL005"\n')
    assert not sup.by_line and not sup.file_wide


def test_unparseable_source_yields_no_suppressions():
    assert parse_suppressions("'unterminated\n").file_wide == set()
