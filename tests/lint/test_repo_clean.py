"""Meta-tests: the real src/ tree is lint-clean, and the committed
baseline carries only the reviewed RL001 exceptions."""

from __future__ import annotations

import json

from repro.lint import LintConfig, run_lint
from repro.lint.baseline import load_baseline
from tests.lint.conftest import REPO_ROOT

BASELINE = REPO_ROOT / "tools" / "reprolint-baseline.json"


def test_repo_is_clean_with_committed_baseline():
    result = run_lint(LintConfig.for_repo(root=REPO_ROOT))
    assert result.findings == [], "\n".join(f.render() for f in result.findings)
    assert result.exit_code == 0
    assert result.checked_files > 100  # really scanned the tree


def test_baseline_is_rl001_only_and_fully_reviewed():
    """Acceptance criterion: RL002–RL006 ship with an *empty* baseline;
    every accepted RL001 entry documents why it was accepted."""
    baseline = load_baseline(BASELINE)
    assert baseline, "baseline file missing or empty"
    for entry in baseline.values():
        assert entry["rule"] == "RL001", entry
        assert entry["reason"].startswith("reviewed:"), entry


def test_baseline_has_no_stale_entries():
    result = run_lint(LintConfig.for_repo(root=REPO_ROOT))
    matched = {f.fingerprint for f in result.baselined}
    assert matched == set(load_baseline(BASELINE)), (
        "baseline entries no longer match any finding — regenerate with "
        "`repro lint --update-baseline`"
    )


def test_rules_rl002_to_rl006_are_clean_without_any_baseline():
    config = LintConfig(
        root=REPO_ROOT,
        select={"RL002", "RL003", "RL004", "RL005", "RL006"},
        baseline_path=None,
    )
    result = run_lint(config)
    assert result.findings == [], "\n".join(f.render() for f in result.findings)


def test_committed_baseline_is_valid_json_with_fingerprints():
    data = json.loads(BASELINE.read_text())
    assert data["version"] == 1
    fingerprints = [e["fingerprint"] for e in data["entries"]]
    assert len(fingerprints) == len(set(fingerprints))
