"""Per-rule fixture tests: flagged lines must equal the ``# TP:`` markers.

Equality (not superset) is the point: a marker the rule misses is a
false negative, an unmarked flagged line is a false positive, and the
``# TN:`` markers document the near-misses each rule must tolerate.
"""

from __future__ import annotations

import pytest

from tests.lint.conftest import FIXTURES, expected_lines, lint_fixture


def _flagged(result, rule):
    return {(f.path, f.line) for f in result.findings if f.rule == rule}


@pytest.mark.parametrize(
    "fixture,rule",
    [
        ("rl001", "RL001"),
        ("rl002", "RL002"),
        ("rl003", "RL003"),
        ("rl005", "RL005"),
        ("rl006", "RL006"),
    ],
)
def test_rule_matches_markers_exactly(fixture, rule):
    fixture_dir = FIXTURES / fixture
    result = lint_fixture(fixture, rule)
    expected = expected_lines(fixture_dir, rule, "TP")
    assert expected, f"fixture {fixture} declares no TP markers"
    assert expected_lines(fixture_dir, rule, "TN"), (
        f"fixture {fixture} declares no TN markers"
    )
    assert _flagged(result, rule) == expected


def test_every_rule_has_true_positive_and_true_negative_fixture():
    """Acceptance criterion: six rules, each fixture-proven both ways.

    RL004's fixtures assert by symbol (tests/lint/test_protocol_drift.py)
    rather than line markers: the clean tree is its true negative and the
    drift tree its true positives.
    """
    marker_rules = {"RL001", "RL002", "RL003", "RL005", "RL006"}
    for rule in marker_rules:
        fixture_dir = FIXTURES / rule.lower()
        assert expected_lines(fixture_dir, rule, "TP")
        assert expected_lines(fixture_dir, rule, "TN")
    assert (FIXTURES / "rl004" / "clean").is_dir()
    assert (FIXTURES / "rl004" / "drift").is_dir()


def test_findings_are_deterministic_and_sorted():
    first = lint_fixture("rl006", "RL006").findings
    second = lint_fixture("rl006", "RL006").findings
    assert first == second
    assert first == sorted(first)


def test_fingerprint_is_line_independent():
    result = lint_fixture("rl005", "RL005")
    (finding,) = result.findings
    moved = type(finding)(
        path=finding.path,
        line=finding.line + 40,
        col=1,
        rule=finding.rule,
        message=finding.message,
        symbol=finding.symbol,
    )
    assert moved.fingerprint == finding.fingerprint


def test_parse_error_becomes_rl000_finding(tmp_path):
    from repro.lint import LintConfig, run_lint

    bad = tmp_path / "broken.py"
    bad.write_text("def nope(:\n")
    result = run_lint(LintConfig(root=tmp_path, paths=[tmp_path]))
    assert [f.rule for f in result.findings] == ["RL000"]
    assert result.exit_code == 1
