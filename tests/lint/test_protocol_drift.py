"""RL004: clean/drift fixtures, the real protocol surface, and the
guard against the checker silently matching nothing."""

from __future__ import annotations

import shutil

from repro.lint import LintConfig, run_lint
from tests.lint.conftest import FIXTURES, REPO_ROOT, lint_fixture

_REAL_PROTOCOL_FILES = (
    "src/repro/serving/server.py",
    "src/repro/serving/client.py",
    "src/repro/cluster/router.py",
    "src/repro/cluster/replica.py",
)

# Every op the NDJSON protocol currently speaks (PR 2/4/8/9 surface).
_EXPECTED_OPS = {
    "query", "query_many", "path", "update", "updates", "stats",
    "metrics", "spans", "profile", "history", "alerts", "snapshot", "ping",
}


def _symbols(result):
    return {f.symbol for f in result.findings if f.rule == "RL004"}


def test_clean_fixture_has_no_drift():
    result = lint_fixture("rl004/clean", "RL004")
    assert result.findings == []


def test_drift_fixture_reports_each_asymmetry():
    result = lint_fixture("rl004/drift", "RL004")
    assert _symbols(result) == {
        "missing-client:explain",  # router op without a client method
        "unhandled:bogus",  # client method no server handles
        "passthrough:path",  # router passthrough the replica misses
    }


def test_real_tree_extraction_sees_the_full_protocol():
    """The extractor must parse the real dispatch styles — all 13 ops."""
    from repro.lint.engine import load_project
    from repro.lint.rules.rl004_protocol_drift import (
        _Extraction,
        _extract_client,
        _extract_handled,
    )

    config = LintConfig(
        root=REPO_ROOT, paths=[REPO_ROOT / p for p in _REAL_PROTOCOL_FILES]
    )
    project, errors = load_project(config)
    assert errors == []
    extraction = _Extraction()
    for module in project.modules:
        if module.path.name == "client.py":
            _extract_client(module, "ServingClient", extraction)
        else:
            _extract_handled(module, "op", extraction)
    assert set(extraction.client) == _EXPECTED_OPS
    assert set(extraction.handled) >= _EXPECTED_OPS | {"apply", "checkpoint"}


def test_real_tree_is_drift_free():
    config = LintConfig(
        root=REPO_ROOT,
        paths=[REPO_ROOT / p for p in _REAL_PROTOCOL_FILES],
        select={"RL004"},
    )
    assert run_lint(config).findings == []


def test_fake_op_on_real_router_copy_is_caught(tmp_path):
    """Regression guard: seed drift into a copy of the *real* files and
    the rule must report it (proves it still parses today's code)."""
    tree = tmp_path / "tree"
    tree.mkdir()
    for rel in _REAL_PROTOCOL_FILES:
        shutil.copy(REPO_ROOT / rel, tree / rel.rsplit("/", 1)[1])

    router = tree / "router.py"
    source = router.read_text()
    assert "self._ops = {" in source
    router.write_text(
        source.replace(
            "self._ops = {",
            'self._ops = {\n            "explain": self._op_read,',
            1,
        )
    )

    result = run_lint(LintConfig(root=tree, paths=[tree], select={"RL004"}))
    symbols = _symbols(result)
    assert "missing-client:explain" in symbols
    # the fake op routes through the passthrough handler the replica
    # does not know either — both asymmetries must surface
    assert "passthrough:explain" in symbols


def test_empty_extraction_is_itself_a_finding(tmp_path):
    """A dispatch-style rewrite must not let the rule silently pass."""
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "server.py").write_text(
        "class S:\n"
        "    def _dispatch(self, request):\n"
        "        return self._handlers[request.get('op')](request)\n"
    )
    result = run_lint(LintConfig(root=tree, paths=[tree], select={"RL004"}))
    assert _symbols(result) == {"empty-extraction:server.py"}


def test_tree_without_protocol_files_is_skipped():
    result = lint_fixture("rl005", "RL004")
    assert result.findings == []
