"""CLI behaviour: exit codes, JSON output, seeded-violation failure —
what the CI ``lint`` job relies on."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as repro_main
from repro.lint.cli import main as lint_main
from tests.lint.conftest import FIXTURES


def test_clean_tree_exits_zero(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("x = 1\n")
    assert lint_main(["--root", str(tmp_path)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_seeded_violation_fails_the_run(capsys):
    """The CI gate: a violation means a nonzero exit code."""
    root = FIXTURES / "rl005"
    code = lint_main(["--root", str(root), "--select", "RL005"])
    assert code == 1
    out = capsys.readouterr().out
    assert "RL005" in out and "libmod.py" in out


def test_json_format_is_machine_readable(capsys):
    root = FIXTURES / "rl005"
    code = lint_main(["--root", str(root), "--select", "RL005", "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"] == {"RL005": 1}
    (finding,) = payload["findings"]
    assert finding["rule"] == "RL005"
    assert finding["path"] == "libmod.py"
    assert finding["fingerprint"]
    assert payload["exit_code"] == 1


def test_update_baseline_then_clean(tmp_path, capsys):
    """CLI round-trip: --update-baseline accepts today's findings."""
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "mod.py").write_text("print('hi')\n")
    baseline = tmp_path / "baseline.json"

    assert (
        lint_main(
            ["--root", str(tree), "--update-baseline", "--baseline", str(baseline)]
        )
        == 0
    )
    assert baseline.exists()
    capsys.readouterr()
    assert lint_main(["--root", str(tree), "--baseline", str(baseline)]) == 0
    assert "1 baselined" in capsys.readouterr().out


def test_unknown_rule_id_is_a_usage_error(tmp_path, capsys):
    assert lint_main(["--root", str(tmp_path), "--select", "RL999"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_nonexistent_root_is_a_usage_error(capsys):
    assert lint_main(["--root", "/no/such/dir"]) == 2
    assert "not a directory" in capsys.readouterr().err


def test_list_rules_names_all_six(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006"):
        assert rule_id in out


def test_repro_lint_subcommand_wires_through(capsys):
    root = FIXTURES / "rl005"
    code = repro_main(["lint", "--root", str(root), "--select", "RL005"])
    assert code == 1
    assert "RL005" in capsys.readouterr().out


@pytest.mark.parametrize("fmt", ["table", "json", "markdown"])
def test_repro_knobs_subcommand(fmt, capsys):
    assert repro_main(["knobs", "--format", fmt]) == 0
    out = capsys.readouterr().out
    assert "REPRO_LOG_LEVEL" in out
    if fmt == "json":
        rows = json.loads(out)
        assert {r["name"] for r in rows} >= {"REPRO_OBS", "REPRO_SLOW_MS"}
