"""RL003 fixture: same sins, but outside serving//cluster/ — exempt."""

import time


async def not_scoped():
    time.sleep(0.1)  # TN:RL003 (module is outside the rule's dirs)
