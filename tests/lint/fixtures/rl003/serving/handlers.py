"""RL003 fixture (lives under serving/ so the default scope applies)."""

import asyncio
import socket
import subprocess
import time
from time import sleep


async def handle_request(request):
    time.sleep(0.1)  # TP:RL003 (blocks the event loop)
    sleep(0.1)  # TP:RL003 (bare `sleep` imported from time)
    await asyncio.sleep(0.1)  # TN:RL003 (the async way)
    with open("/tmp/x") as handle:  # TP:RL003 (sync file I/O)
        handle.read()
    sock = socket.socket()  # TP:RL003 (blocking socket constructor)
    subprocess.run(["true"])  # TP:RL003 (blocking subprocess)
    return sock


async def await_future(future, pool):
    value = future.result()  # TP:RL003 (stalls the coroutine)
    good = await future  # TN:RL003
    return value, good


async def uses_executor(loop, pool):
    def blocking_work():
        time.sleep(1.0)  # TN:RL003 (sync nested def may run in executor)
        return open("/tmp/y")  # TN:RL003

    return await loop.run_in_executor(pool, blocking_work)


def sync_helper():
    time.sleep(0.1)  # TN:RL003 (not an async function)
    return open("/tmp/z")  # TN:RL003
