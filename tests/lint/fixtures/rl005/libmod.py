"""RL005 fixture: a library module that must not print."""

from repro.obs.log import get_logger

log = get_logger("libmod")


def report(value):
    print(f"value={value}")  # TP:RL005 (bare print in library code)
    log.info("value", value=value)  # TN:RL005 (structured logging)


def helper(stream):
    stream.write("x")  # TN:RL005 (not a print call)
    printable = print  # TN:RL005 (referencing, not calling)
    return printable
