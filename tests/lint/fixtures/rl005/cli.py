"""RL005 fixture: entry-point modules named cli.py may print."""


def main():
    print("usage: ...")  # TN:RL005 (cli.py is exempt — printing is its job)
    return 0
