"""RL001 fixture: lock-guarded attributes touched outside the lock.

True-positive markers flag lines the rule must report; true-negative
markers document deliberate near-misses it must NOT report.  (Asserted
by tests/lint/test_rules.py.)
"""

import threading


class GuardedCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0  # TN:RL001 (construction is exempt)
        self._total = 0.0

    def increment(self, amount):
        with self._lock:
            self._count += 1  # TN:RL001 (write under the lock)
            self._total += amount

    def snapshot(self):
        with self._lock:
            return self._count, self._total  # TN:RL001 (read under the lock)

    @property
    def count(self):
        return self._count  # TP:RL001 (unlocked read of a guarded attr)

    def reset(self):
        self._count = 0  # TP:RL001 (unlocked write of a guarded attr)

    def deferred(self):
        with self._lock:
            def later():
                return self._total  # TP:RL001 (closure may outlive the lock)
            return later

    def _drain_locked(self):
        self._count = 0  # TN:RL001 (`*_locked` asserts the caller holds it)
        return self._total  # TN:RL001

    def unrelated(self):
        return self._lock  # TN:RL001 (the lock itself is not guarded data)


class Unguarded:
    """No attr is ever written under a lock here — nothing to enforce."""

    def __init__(self):
        self.value = 0

    def bump(self):
        self.value += 1  # TN:RL001 (class has no lock discipline)


class AsyncGuarded:
    def __init__(self):
        self._lock = None  # an asyncio.Lock in real code
        self._pending = []

    async def push(self, item):
        async with self._lock:
            self._pending.append(item)
            self._pending = list(self._pending)  # TN:RL001 (under async with)

    async def peek(self):
        return self._pending  # TP:RL001 (unlocked read, async lock counts)
