"""RL006 fixture: the tree's own knob registry."""


class Knob:
    def __init__(self, name, default, doc):
        self.name = name
        self.default = default
        self.doc = doc


KNOBS = {
    knob.name: knob
    for knob in (
        Knob("REPRO_GOOD", "1", "a declared knob"),
        Knob("REPRO_ALSO_GOOD", "x", "another declared knob"),
    )
}
