"""RL006 fixture: env reads, declared and undeclared."""

import os

from repro import knobs


def fine():
    value = knobs.get("REPRO_GOOD")  # TN:RL006 (declared, via the registry)
    other = os.environ.get("HOME")  # TN:RL006 (not a REPRO_* knob)
    return value, other


def undeclared():
    return knobs.get("REPRO_MISSING")  # TP:RL006 (not in the registry)


def direct_reads():
    a = os.environ.get("REPRO_GOOD")  # TP:RL006 (declared, but bypasses knobs.get)
    b = os.environ["REPRO_SNEAKY"]  # TP:RL006 (undeclared AND direct)
    c = os.getenv("REPRO_ALSO_GOOD")  # TP:RL006 (declared, but direct)
    return a, b, c
