"""Suppression fixture: line-scoped disable comments."""


def report(value):
    print(f"value={value}")  # reprolint: disable=RL005
    print("still flagged")  # TP:RL005 (no suppression on this line)


def multi():
    print("quiet")  # reprolint: disable=RL005,RL001
