"""Suppression fixture: file-wide disable comment."""
# reprolint: disable-file=RL005


def report():
    print("a")
    print("b")
