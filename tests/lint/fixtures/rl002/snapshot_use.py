"""RL002 fixture: mutations of Frozen* copy-on-write snapshot instances."""


class FrozenView:
    __slots__ = ("data", "epoch")

    def __init__(self, data, epoch):
        self.data = dict(data)  # TN:RL002 (construction)
        self.epoch = epoch  # TN:RL002

    def thaw(self):
        self.epoch = None  # TP:RL002 (self-mutation outside construction)
        return dict(self.data)

    def _freeze(self):
        self.epoch = -1  # TN:RL002 (_freeze is a construction method)


def build(pairs):
    view = FrozenView(pairs, epoch=1)
    return view  # TN:RL002 (constructing and returning is fine)


def corrupt(pairs):
    view = FrozenView(pairs, epoch=1)
    view.epoch = 2  # TP:RL002 (attribute store on a frozen instance)
    view.data["k"] = 1  # TN:RL002 (interior dict store is out of scope)
    return view


def corrupt_item(pairs):
    view = FrozenView(pairs, epoch=1)
    view["k"] = 1  # TP:RL002 (item store on a frozen instance)


def corrupt_call(pairs):
    view = FrozenView(pairs, epoch=1)
    view.update({"k": 1})  # TP:RL002 (mutating method call)
    view.epoch += 1  # TP:RL002 (augmented assignment)
    del view.data  # TP:RL002 (attribute delete)


def annotated(view: FrozenView):
    view.epoch = 9  # TP:RL002 (parameter annotated with a frozen type)
    return view.epoch  # TN:RL002 (reads are always fine)


def not_frozen(store):
    store.epoch = 2  # TN:RL002 (unknown type: no inference, no finding)
    store.update({})  # TN:RL002
