"""RL004 fixture: client methods covering every served op."""


class ServingClient:
    def _request(self, payload):
        return {"ok": True}

    def query(self, u, v):
        return self._request({"op": "query", "u": u, "v": v})

    def update(self, kind, u, v):
        return self._request({"op": "update", "kind": kind, "u": u, "v": v})

    def ping(self):
        return self._request({"op": "ping"})

    def snapshot(self):
        return self._request({"op": "snapshot"})
