"""RL004 fixture: minimal router op table, in sync with client.py."""


class MiniRouter:
    def __init__(self):
        self._ops = {
            "query": self._op_read,
            "update": self._op_update,
            "ping": self._op_local,
            "snapshot": self._op_local,
        }

    async def _op_read(self, request):
        return {"ok": True}

    async def _op_update(self, request):
        return {"ok": True}

    async def _op_local(self, request):
        return {"ok": True}
