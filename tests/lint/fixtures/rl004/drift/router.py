"""RL004 drift fixture: router grew `explain` (no client method) and a
`path` passthrough the replica does not gate."""


class MiniRouter:
    def __init__(self):
        self._ops = {
            "query": self._op_read,
            "path": self._op_read,
            "explain": self._op_explain,
            "update": self._op_update,
            "ping": self._op_local,
            "snapshot": self._op_local,
        }

    async def _op_read(self, request):
        return {"ok": True}

    async def _op_explain(self, request):
        return {"ok": True, "plan": []}

    async def _op_update(self, request):
        return {"ok": True}

    async def _op_local(self, request):
        return {"ok": True}
