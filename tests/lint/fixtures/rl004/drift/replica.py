"""RL004 drift fixture: replica gates `query` only — `path` is missing."""


class MiniReplica:
    def __init__(self):
        self._async_ops = {}
        self._async_ops.update(
            {
                "apply": self._op_apply,
                "checkpoint": self._op_checkpoint,
            }
        )

    def _dispatch(self, request):
        op = request.get("op")
        if op in ("update",):
            return {"ok": False, "error": "read-only replica"}
        if op in ("query",):
            return {"ok": True, "dist": 1}
        return {"ok": True}

    async def _op_apply(self, request):
        return {"ok": True}

    async def _op_checkpoint(self, request):
        return {"ok": True}
