"""RL004 drift fixture: client sends `bogus` (handled nowhere) and has
no method for the router's `explain`."""


class ServingClient:
    def _request(self, payload):
        return {"ok": True}

    def query(self, u, v):
        return self._request({"op": "query", "u": u, "v": v})

    def path(self, u, v):
        return self._request({"op": "path", "u": u, "v": v})

    def update(self, kind, u, v):
        return self._request({"op": "update", "kind": kind, "u": u, "v": v})

    def ping(self):
        return self._request({"op": "ping"})

    def snapshot(self):
        return self._request({"op": "snapshot"})

    def bogus(self):
        return self._request({"op": "bogus"})
