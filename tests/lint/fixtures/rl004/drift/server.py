"""RL004 drift fixture: server side (unchanged from the clean tree)."""


class MiniServer:
    def __init__(self):
        self._async_ops = {"snapshot": self._op_snapshot}

    def _dispatch(self, request):
        op = request.get("op")
        if op == "query":
            return {"ok": True, "dist": 1}
        if op == "update":
            return {"ok": True}
        if op == "ping":
            return {"ok": True}
        return {"ok": False, "error": f"unknown op {op!r}"}

    async def _op_snapshot(self, request):
        return {"ok": True}
