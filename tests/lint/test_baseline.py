"""Baseline round-trip: findings accepted today don't fail tomorrow —
and stale entries surface for removal."""

from __future__ import annotations

import json

from repro.lint import LintConfig, run_lint
from repro.lint.baseline import load_baseline, save_baseline, stale_entries
from repro.lint.findings import Finding
from repro.lint.report import render_json
from tests.lint.conftest import FIXTURES, lint_fixture


def test_baseline_round_trip(tmp_path):
    first = lint_fixture("rl005", "RL005")
    assert first.findings and first.exit_code == 1

    baseline_path = tmp_path / "baseline.json"
    save_baseline(baseline_path, first.findings, reasons=None)

    root = FIXTURES / "rl005"
    second = run_lint(
        LintConfig(
            root=root, paths=[root], select={"RL005"}, baseline_path=baseline_path
        )
    )
    assert second.findings == []
    assert second.exit_code == 0
    assert [f.fingerprint for f in second.baselined] == [
        f.fingerprint for f in first.findings
    ]


def test_baseline_survives_line_drift(tmp_path):
    """Fingerprints exclude line numbers, so shifted code stays accepted."""
    src = (FIXTURES / "rl005" / "libmod.py").read_text()
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "libmod.py").write_text(src)
    first = run_lint(LintConfig(root=tree, paths=[tree], select={"RL005"}))
    baseline_path = tmp_path / "baseline.json"
    save_baseline(baseline_path, first.findings)

    (tree / "libmod.py").write_text("# a new header comment\n\n" + src)
    shifted = run_lint(
        LintConfig(root=tree, paths=[tree], select={"RL005"}, baseline_path=baseline_path)
    )
    assert shifted.findings == [] and len(shifted.baselined) == len(first.findings)


def test_reasons_survive_rewrite(tmp_path):
    finding = Finding(path="m.py", line=3, col=1, rule="RL005", message="x", symbol="s")
    path = tmp_path / "baseline.json"
    save_baseline(path, [finding], reasons={finding.fingerprint: "reviewed: ok"})
    entries = load_baseline(path)
    assert entries[finding.fingerprint]["reason"] == "reviewed: ok"


def test_stale_entries_are_reported(tmp_path):
    ghost = Finding(path="gone.py", line=1, col=1, rule="RL001", message="old", symbol="g")
    baseline_path = tmp_path / "baseline.json"
    save_baseline(baseline_path, [ghost])
    baseline = load_baseline(baseline_path)
    assert stale_entries(baseline, matched=set()) == list(baseline.values())

    root = FIXTURES / "rl005"
    result = run_lint(
        LintConfig(root=root, paths=[root], select={"RL005"}, baseline_path=baseline_path)
    )
    payload = json.loads(render_json(result, baseline))
    assert [e["fingerprint"] for e in payload["stale_baseline"]] == [ghost.fingerprint]
    # the ghost entry does not excuse the live finding
    assert result.exit_code == 1


def test_corrupt_baseline_is_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text('{"not": "a baseline"}')
    try:
        load_baseline(path)
    except ValueError as exc:
        assert "baseline" in str(exc)
    else:  # pragma: no cover - defensive
        raise AssertionError("corrupt baseline should raise ValueError")
