"""Run the doctests embedded in the library's docstrings.

Every public-API usage snippet in a docstring must actually work; this
module collects them explicitly (rather than via --doctest-modules) so the
doctest set is deliberate and the main pytest invocation stays simple.
"""

import doctest

import pytest

import repro.baselines.bfs
import repro.baselines.fd
import repro.baselines.incpll
import repro.baselines.pll
import repro.core.construction
import repro.core.directed
import repro.core.dynamic
import repro.core.highway
import repro.core.labels
import repro.core.query
import repro.core.inchl_fast
import repro.core.weighted_hcl
import repro.graph.dyncsr
import repro.graph.dynamic_graph
import repro.graph.digraph
import repro.graph.generators
import repro.graph.weighted
import repro.parallel
import repro.parallel.engine
import repro.parallel.sweeps
import repro.cluster.shards
import repro.cluster.wal
import repro.knobs
import repro.serving.metrics
import repro.serving.service
import repro.serving.snapshot
import repro.utils.timing
import repro.workloads.datasets
import repro.workloads.queries
import repro.workloads.updates

_MODULES = [
    repro.graph.dynamic_graph,
    repro.graph.dyncsr,
    repro.graph.digraph,
    repro.graph.weighted,
    repro.graph.generators,
    repro.core.highway,
    repro.core.labels,
    repro.core.construction,
    repro.core.query,
    repro.core.dynamic,
    repro.core.inchl_fast,
    repro.core.directed,
    repro.core.weighted_hcl,
    repro.parallel,
    repro.parallel.engine,
    repro.parallel.sweeps,
    repro.baselines.bfs,
    repro.baselines.pll,
    repro.baselines.incpll,
    repro.baselines.fd,
    repro.cluster.shards,
    repro.cluster.wal,
    repro.knobs,
    repro.serving.metrics,
    repro.serving.service,
    repro.serving.snapshot,
    repro.utils.timing,
    repro.workloads.datasets,
    repro.workloads.queries,
    repro.workloads.updates,
]


@pytest.mark.parametrize("module", _MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} doctest failures"


def test_doctest_coverage_is_nontrivial():
    """The curated module list must actually contain doctests."""
    total = sum(
        doctest.testmod(module, verbose=False).attempted for module in _MODULES
    )
    assert total >= 15
