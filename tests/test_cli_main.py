"""Tests for the top-level ``python -m repro`` command line."""

import pytest

from repro.cli import main
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.io import write_edge_list
from repro.utils.serialization import load_oracle

from tests.conftest import random_connected_graph


@pytest.fixture
def edge_list(tmp_path):
    graph = random_connected_graph(77, n_min=15, n_max=20)
    path = tmp_path / "graph.txt"
    write_edge_list(graph, path)
    return path, graph


@pytest.fixture
def oracle_file(edge_list, tmp_path):
    path, graph = edge_list
    out = tmp_path / "oracle.json"
    assert main(["build", str(path), "-o", str(out), "--landmarks", "3"]) == 0
    return out, graph


class TestBuild:
    def test_build_writes_loadable_oracle(self, oracle_file, capsys):
        out, graph = oracle_file
        oracle = load_oracle(out)
        assert sorted(oracle.graph.edges()) == sorted(graph.edges())
        assert len(oracle.landmarks) == 3

    def test_build_csr_equals_python(self, edge_list, tmp_path):
        path, _ = edge_list
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        main(["build", str(path), "-o", str(a), "--landmarks", "3"])
        main(["build", str(path), "-o", str(b), "--landmarks", "3", "--csr"])
        assert load_oracle(a).labelling == load_oracle(b).labelling

    def test_build_gzip_output(self, edge_list, tmp_path):
        path, _ = edge_list
        out = tmp_path / "oracle.json.gz"
        assert main(["build", str(path), "-o", str(out)]) == 0
        assert load_oracle(out).graph.num_vertices > 0

    def test_missing_input_reports_error(self, tmp_path, capsys):
        code = main(["build", str(tmp_path / "nope.txt"), "-o", "x.json"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestQueryAndPath:
    def test_query_prints_distance(self, oracle_file, capsys):
        out, graph = oracle_file
        vertices = sorted(graph.vertices())
        u, v = vertices[0], vertices[-1]
        assert main(["query", str(out), str(u), str(v)]) == 0
        printed = capsys.readouterr().out.strip()
        oracle = load_oracle(out)
        assert printed == str(int(oracle.query(u, v)))

    def test_query_unreachable(self, tmp_path, capsys):
        graph = DynamicGraph.from_edges([(0, 1), (2, 3)])
        edge_path = tmp_path / "g.txt"
        write_edge_list(graph, edge_path)
        out = tmp_path / "o.json"
        main(["build", str(edge_path), "-o", str(out), "--landmarks", "1"])
        main(["query", str(out), "0", "3"])
        assert "unreachable" in capsys.readouterr().out

    def test_path_prints_route(self, oracle_file, capsys):
        out, graph = oracle_file
        vertices = sorted(graph.vertices())
        u, v = vertices[0], vertices[-1]
        assert main(["path", str(out), str(u), str(v)]) == 0
        printed = capsys.readouterr().out.strip()
        hops = [int(x) for x in printed.split(" -> ")]
        assert hops[0] == u and hops[-1] == v
        for a, b in zip(hops, hops[1:]):
            assert graph.has_edge(a, b)


class TestUpdates:
    def test_insert_then_query(self, oracle_file, capsys):
        out, graph = oracle_file
        from tests.conftest import non_edges

        u, v = non_edges(graph)[0]
        assert main(["insert", str(out), str(u), str(v)]) == 0
        main(["query", str(out), str(u), str(v)])
        assert capsys.readouterr().out.strip().endswith("1")

    def test_delete_roundtrip_to_new_file(self, oracle_file, tmp_path, capsys):
        out, graph = oracle_file
        u, v = sorted(graph.edges())[0]
        updated = tmp_path / "updated.json"
        assert main(["delete", str(out), str(u), str(v), "-o", str(updated)]) == 0
        # original untouched, update written elsewhere
        assert load_oracle(out).graph.has_edge(u, v)
        restored = load_oracle(updated)
        assert not restored.graph.has_edge(u, v)
        from repro.core.validation import check_matches_rebuild

        check_matches_rebuild(restored.graph, restored.labelling)


class TestStats:
    def test_stats_prints_summary(self, oracle_file, capsys):
        out, _ = oracle_file
        assert main(["stats", str(out)]) == 0
        output = capsys.readouterr().out
        assert "size(L)" in output
        assert "|R|=3" in output
        assert "busiest landmark" in output


class TestServe:
    def test_serve_parser_defaults(self):
        from repro.cli import _parser

        args = _parser().parse_args(["serve", "oracle.json"])
        assert args.command == "serve"
        assert (args.host, args.port) == ("127.0.0.1", 8355)
        assert args.workers is None and args.max_batch == 128

    def test_serve_stack_from_oracle_file(self, oracle_file):
        # The blocking serve loop is exercised end-to-end via the threaded
        # server it wraps (same OracleServer.from_file warm-start path).
        from repro.serving.client import ServingClient
        from repro.serving.server import OracleServer

        out, graph = oracle_file
        server = OracleServer.from_file(out, port=0, max_batch=16)
        host, port = server.start_in_thread()
        try:
            with ServingClient(host, port) as client:
                u, v = sorted(graph.edges())[0]
                assert client.query(u, v) == 1
                assert client.stats()["num_edges"] == graph.num_edges
        finally:
            server.stop_thread()

    def test_serve_missing_file_reports_error(self, tmp_path, capsys):
        assert main(["serve", str(tmp_path / "missing.json")]) == 1
        assert "error" in capsys.readouterr().err


class TestTop:
    def test_top_parser_defaults(self):
        from repro.cli import _parser

        args = _parser().parse_args(["top"])
        assert args.command == "top"
        assert (args.host, args.port) == ("127.0.0.1", 8355)
        assert args.interval == 2.0
        assert not args.once and args.count is None

    def test_format_top_single_node(self):
        from repro.cli import format_top

        stats = {
            "epoch": 3, "num_vertices": 16, "num_edges": 24,
            "label_entries": 120, "pending": 0, "running": True,
            "events_applied": 5, "events_rejected": 1,
            "insert_batches": 2, "mixed_batches": 0,
            "snapshots_published": 3,
            "queries": {"count": 10, "qps": 100.0, "p50_ms": 0.5,
                        "p95_ms": 0.9, "p99_ms": 1.2},
            "updates": {"count": 0},
            "phases": {"find": {"count": 2, "total": 12.5,
                                "p50": 6.0, "p99": 7.0}},
            "aff": {"count": 2, "total": 10, "p50": 5, "p99": 8},
        }
        frame = format_top(stats)
        assert "oracle    epoch=3 |V|=16 |E|=24 size(L)=120" in frame
        assert "queries   n=10 qps=100.0 p50=0.5ms p95=0.9ms p99=1.2ms" in frame
        assert "updates   n=0" in frame
        assert "find" in frame and "total=12.5ms" in frame
        assert "aff/batch n=2" in frame
        assert "DEGRADED" not in frame

    def test_format_top_marks_degraded_writer(self):
        from repro.cli import format_top

        frame = format_top({"running": False, "degraded": "boom"})
        assert "DEGRADED: boom" in frame

    def test_format_top_router(self):
        from repro.cli import format_top

        stats = {
            "role": "router", "log_head": 7, "log_base": 2,
            "wal": {"segments": 1, "bytes": 2048}, "fsync": "batch",
            "reads_routed": 20, "writes_appended": 7, "fanout_batches": 4,
            "router": {"queries": {"count": 20, "qps": 10.0, "p50_ms": 1.0},
                       "updates": {"count": 7}},
            "aggregate": {
                "events_applied": 14, "events_rejected": 0,
                "snapshots_published": 2,
                "queries": {"count": 20, "qps": 9.0, "p50_ms": 1.5,
                            "p95_ms": 2.0, "p99_ms": 2.5, "merge": "exact"},
                "updates": {"count": 0, "merge": "exact"},
            },
            "replicas": {
                "r0": {"healthy": True, "acked_seq": 7, "lag": 0,
                       "service": {"epoch": 7, "pending": 0,
                                   "queries": {"count": 10}}},
                "r1": {"healthy": False, "acked_seq": 5, "lag": 2},
            },
        }
        frame = format_top(stats)
        assert "cluster   log head=7 base=2 wal=1 segs/2,048B fsync=batch" in frame
        assert "merge=exact" in frame
        assert "replica r0  healthy acked=7 lag=0" in frame
        assert "replica r1  UNHEALTHY acked=5 lag=2" in frame
        assert frame.index("replica r0") < frame.index("replica r1")

    def test_format_top_sharded_router(self):
        from repro.cli import format_top

        stats = {
            "role": "router", "log_head": 4, "log_base": 0,
            "wal": {"segments": 1, "bytes": 512}, "fsync": "batch",
            "num_shards": 2,
            "reads_routed": 8, "writes_appended": 4, "fanout_batches": 2,
            "router": {"queries": {"count": 8}, "updates": {"count": 4}},
            "aggregate": {"events_applied": 16, "events_rejected": 0,
                          "snapshots_published": 0,
                          "queries": {"count": 8}, "updates": {"count": 0}},
            "shards": {
                "0": {"replicas": 2, "healthy": 2, "acked_seq": 4,
                      "lag": 0, "rss_kb_max": 30000},
                "1": {"replicas": 2, "healthy": 1, "acked_seq": 4,
                      "lag": 1, "rss_kb_max": 29000},
            },
            "replicas": {
                "s0r0": {"shard": 0, "healthy": True, "acked_seq": 4, "lag": 0},
                "s1r0": {"shard": 1, "healthy": True, "acked_seq": 3, "lag": 1},
            },
        }
        frame = format_top(stats)
        assert "shard s0   healthy=2/2 acked=4 lag=0 rss_max=30,000KiB" in frame
        assert "shard s1   healthy=1/2 acked=4 lag=1 rss_max=29,000KiB" in frame
        assert "replica s0r0  shard=s0 healthy acked=4 lag=0" in frame
        assert "replica s1r0  shard=s1 healthy acked=3 lag=1" in frame

    def test_top_once_against_live_server(self, oracle_file, capsys):
        from repro.serving.server import OracleServer

        out, _ = oracle_file
        server = OracleServer.from_file(out, port=0)
        host, port = server.start_in_thread()
        try:
            code = main(["top", "--host", host, "--port", str(port), "--once"])
        finally:
            server.stop_thread()
        assert code == 0
        frame = capsys.readouterr().out
        assert f"--- {host}:{port} at " in frame
        assert "oracle    epoch=0" in frame
        assert "writer    pending=0 running=True" in frame

    def test_top_unreachable_server_reports_error(self, capsys):
        assert main(["top", "--port", "1", "--once"]) == 1
        assert "error" in capsys.readouterr().err


class TestWatchAndGrowth:
    def test_top_watch_parser(self):
        from repro.cli import _parser

        args = _parser().parse_args(["top", "--watch", "0.5"])
        assert args.watch == 0.5
        assert _parser().parse_args(["top"]).watch is None

    def test_format_top_appends_wal_growth_when_present(self):
        from repro.cli import format_top

        stats = {
            "role": "router", "log_head": 7, "log_base": 2,
            "wal": {"segments": 1, "bytes": 2048,
                    "wal_growth_bytes_per_s": 512.25},
            "fsync": "batch",
            "reads_routed": 0, "writes_appended": 7, "fanout_batches": 4,
            "router": {"queries": {"count": 0}, "updates": {"count": 7}},
            "aggregate": {"events_applied": 14, "events_rejected": 0,
                          "snapshots_published": 2,
                          "queries": {"count": 0}, "updates": {"count": 0}},
            "replicas": {},
        }
        frame = format_top(stats)
        assert "wal=1 segs/2,048B fsync=batch growth=512B/s" in frame

    def test_format_top_omits_growth_when_unmeasured(self):
        from repro.cli import format_top

        stats = {
            "role": "router", "log_head": 0, "log_base": 0,
            "wal": {"segments": 0, "bytes": 0,
                    "wal_growth_bytes_per_s": None},
            "fsync": "batch",
            "reads_routed": 0, "writes_appended": 0, "fanout_batches": 0,
            "router": {"queries": {"count": 0}, "updates": {"count": 0}},
            "aggregate": {"events_applied": 0, "events_rejected": 0,
                          "snapshots_published": 0,
                          "queries": {"count": 0}, "updates": {"count": 0}},
            "replicas": {},
        }
        assert "growth=" not in format_top(stats)


class TestSloResolution:
    def test_serve_slo_parser_default_is_off(self):
        from repro.cli import _parser

        args = _parser().parse_args(["serve", "oracle.json"])
        assert args.slo is None and args.history is None

    def test_resolve_default_rules_per_role(self):
        from repro.cli import _resolve_slos

        assert _resolve_slos(None, "server") is None
        server_names = {s.name for s in _resolve_slos("default", "server")}
        router_names = {s.name for s in _resolve_slos("default", "router")}
        assert "wal-growth" in router_names - server_names

    def test_resolve_rules_file(self, tmp_path):
        from repro.cli import _resolve_slos

        rules = tmp_path / "rules.json"
        rules.write_text(
            '[{"name": "p99", "metric": "query_p99_ms", "objective": 5}]'
        )
        (slo,) = _resolve_slos(str(rules), "server")
        assert slo.name == "p99"


class TestDash:
    def test_dash_parser_defaults(self):
        from repro.cli import _parser

        args = _parser().parse_args(["dash"])
        assert args.command == "dash"
        assert (args.host, args.port) == ("127.0.0.1", 8355)
        assert args.interval == 2.0 and args.points == 120
        assert not args.once and args.count is None

    def test_sparkline_shapes(self):
        from repro.cli import sparkline

        assert sparkline([0, 1, 2, 3]) == "▁▃▅█"
        assert sparkline([5, 5, 5]) == "▁▁▁"  # flat series, lowest glyph
        assert sparkline([0, None, 4]) == "▁ █"  # gaps render as spaces
        assert sparkline([]) == ""
        assert len(sparkline(range(100), width=10)) == 10

    def test_format_dash_empty(self):
        from repro.cli import format_dash

        assert "no points yet" in format_dash([])

    def test_format_dash_orders_preferred_keys_first(self):
        from repro.cli import format_dash

        points = [
            {"ts": 100.0, "qps": 10.0, "zz_custom": 1, "rss_kb": 9000},
            {"ts": 105.0, "qps": 20.0, "zz_custom": 2, "rss_kb": 9100},
        ]
        frame = format_dash(points)
        assert "history   n=2 span=5s" in frame
        lines = frame.splitlines()
        order = [line.split()[0] for line in lines[1:]]
        assert order == ["qps", "rss_kb", "zz_custom"]
        assert "20" in lines[1]  # last value annotated after the sparkline

    def test_format_dash_renders_slo_lines(self):
        from repro.cli import format_dash

        alerts = {
            "evaluations": [
                {"slo": "query-p99", "firing": True, "burn": 4.0,
                 "metric": "query_p99_ms", "direction": "above",
                 "objective": 100.0},
                {"slo": "error-rate", "firing": False, "burn": 0.0,
                 "metric": "error_rate", "direction": "above",
                 "objective": 0.01},
            ],
            "slos": [],
        }
        frame = format_dash([{"ts": 1.0, "qps": 1.0}], alerts)
        assert "slo FIRING query-p99" in frame
        assert "slo ok     error-rate" in frame

    def test_format_dash_notes_rules_without_evaluations(self):
        from repro.cli import format_dash

        frame = format_dash([], {"evaluations": [], "slos": [{"name": "x"}]})
        assert "1 rule(s), no evaluations yet" in frame
        assert "(none configured)" in format_dash(
            [], {"evaluations": [], "slos": []}
        )

    def test_dash_once_against_live_server(self, oracle_file, capsys):
        from repro.serving.server import OracleServer

        out, _ = oracle_file
        server = OracleServer.from_file(out, port=0)
        host, port = server.start_in_thread()
        try:
            code = main(["dash", "--host", host, "--port", str(port),
                         "--once"])
        finally:
            server.stop_thread()
        assert code == 0
        frame = capsys.readouterr().out
        # No recorder on the server: the dash synthesizes a local point.
        assert "history   n=1" in frame

    def test_dash_unreachable_server_reports_error(self, capsys):
        assert main(["dash", "--port", "1", "--once"]) == 1
        assert "error" in capsys.readouterr().err


class TestProfileCommand:
    def test_profile_parser_defaults(self):
        from repro.cli import _parser

        args = _parser().parse_args(["profile"])
        assert args.command == "profile"
        assert args.action == "dump"
        assert args.folded is None and args.top == 5

    def test_profile_cycle_against_live_server(self, oracle_file, tmp_path,
                                               capsys):
        from repro.obs.profile import reset_profiler
        from repro.serving.server import OracleServer

        out, _ = oracle_file
        reset_profiler()
        server = OracleServer.from_file(out, port=0)
        host, port = server.start_in_thread()
        target = ["--host", host, "--port", str(port)]
        try:
            assert main(["profile", *target, "--action", "start"]) == 0
            assert "running=True" in capsys.readouterr().out
            folded_file = tmp_path / "out.folded"
            assert main(["profile", *target, "--action", "stop",
                         "--folded", str(folded_file)]) == 0
        finally:
            server.stop_thread()
            reset_profiler()
        frame = capsys.readouterr().out
        assert "running=False" in frame

    def test_profile_unreachable_server_reports_error(self, capsys):
        assert main(["profile", "--port", "1"]) == 1
        assert "error" in capsys.readouterr().err
