"""Test package (unique basenames resolve via package-qualified module names)."""
