"""Tests for the update workload samplers (Section 6 protocol)."""

import pytest

from repro.exceptions import WorkloadError
from repro.graph.generators import erdos_renyi, grid_graph
from repro.workloads.updates import (
    held_out_edges,
    sample_edge_insertions,
    sample_vertex_insertions,
)


class TestEdgeInsertions:
    def test_ei_disjoint_from_e(self):
        g = grid_graph(5, 5)
        sampled = sample_edge_insertions(g, 20, rng=1)
        assert len(sampled) == 20
        for u, v in sampled:
            assert not g.has_edge(u, v)
            assert u != v

    def test_pairwise_distinct(self):
        g = grid_graph(5, 5)
        sampled = sample_edge_insertions(g, 50, rng=2)
        assert len(set(sampled)) == 50

    def test_deterministic(self):
        g = grid_graph(4, 4)
        assert sample_edge_insertions(g, 10, rng=3) == sample_edge_insertions(
            g, 10, rng=3
        )

    def test_capacity_exceeded(self):
        g = erdos_renyi(4, 6, rng=0)  # complete K4
        with pytest.raises(WorkloadError, match="only 0 exist"):
            sample_edge_insertions(g, 1, rng=0)

    def test_negative_count(self):
        with pytest.raises(WorkloadError):
            sample_edge_insertions(grid_graph(2, 2), -1, rng=0)

    def test_zero_count(self):
        assert sample_edge_insertions(grid_graph(2, 2), 0, rng=0) == []

    def test_applying_sampled_stream_is_valid(self):
        g = grid_graph(4, 4)
        for u, v in sample_edge_insertions(g, 30, rng=4):
            g.add_edge(u, v)  # raises on any invalid insertion
        assert g.num_edges == 24 + 30


class TestVertexInsertions:
    def test_fresh_ids_and_degree(self):
        g = grid_graph(3, 3)
        insertions = sample_vertex_insertions(g, 4, degree=2, rng=5)
        assert [v for v, _ in insertions] == [9, 10, 11, 12]
        for _, neighbors in insertions:
            assert len(neighbors) == 2
            assert len(set(neighbors)) == 2
            assert all(g.has_vertex(w) for w in neighbors)

    def test_degree_validation(self):
        g = grid_graph(2, 2)
        with pytest.raises(WorkloadError):
            sample_vertex_insertions(g, 1, degree=0, rng=0)
        with pytest.raises(WorkloadError):
            sample_vertex_insertions(g, 1, degree=5, rng=0)


class TestHeldOutEdges:
    def test_removes_and_returns(self):
        g = grid_graph(4, 4)
        edges_before = g.num_edges
        held = held_out_edges(g, 5, rng=6)
        assert len(held) == 5
        assert g.num_edges == edges_before - 5
        for u, v in held:
            assert not g.has_edge(u, v)
            g.add_edge(u, v)  # replay restores them

    def test_too_many(self):
        g = grid_graph(2, 2)
        with pytest.raises(WorkloadError):
            held_out_edges(g, 100, rng=0)
