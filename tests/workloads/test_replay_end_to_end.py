"""End-to-end stream replay through DynamicHCL, BFS-checked every K events.

Satellite of the serving PR: the service's writer loop is only as good as
the oracle's behaviour under long mixed and sliding-window streams, so
these tests drive :func:`repro.workloads.streams.replay` over full
generated streams and cross-check sampled distances (and labelling
minimality at the end) against references after every K events.
"""

from __future__ import annotations

import pytest

from repro.core.dynamic import DynamicHCL
from repro.core.validation import check_minimality
from repro.utils.rng import ensure_rng
from repro.workloads.streams import (
    mixed_stream,
    replay,
    sliding_window_stream,
)
from tests.conftest import all_pairs_distances, random_connected_graph

INF = float("inf")
K = 5  # BFS cross-check cadence (events between checks)


def _check_against_bfs(oracle, rng, sample=40) -> None:
    table = all_pairs_distances(oracle.graph)
    vertices = sorted(oracle.graph.vertices())
    for _ in range(sample):
        u, v = rng.choice(vertices), rng.choice(vertices)
        assert oracle.query(u, v) == table[u].get(v, INF), (u, v)


@pytest.mark.parametrize("seed", [2, 9])
def test_mixed_stream_replay_bfs_checked(seed):
    graph = random_connected_graph(seed, n_min=14, n_max=22, density=2.2)
    events = mixed_stream(graph, 30, insert_ratio=0.7, rng=seed)
    oracle = DynamicHCL.build(graph, num_landmarks=3)
    rng = ensure_rng(seed * 13)

    records = []
    for start in range(0, len(events), K):
        records.extend(replay(oracle, events[start : start + K]))
        _check_against_bfs(oracle, rng)
    assert len(records) == len(events)
    assert all(r.seconds >= 0 for r in records)
    check_minimality(oracle.graph, oracle.labelling)


@pytest.mark.parametrize("seed", [4, 17])
def test_sliding_window_stream_replay_bfs_checked(seed):
    graph = random_connected_graph(seed, n_min=14, n_max=22, density=2.2)
    events = sliding_window_stream(graph, 24, window=8, rng=seed)
    oracle = DynamicHCL.build(graph, num_landmarks=3)
    rng = ensure_rng(seed * 29)

    for start in range(0, len(events), K):
        replay(oracle, events[start : start + K])
        _check_against_bfs(oracle, rng)
    check_minimality(oracle.graph, oracle.labelling)


def test_replay_through_service_matches_direct_replay():
    """The serving writer applies the same streams replay() does — final
    labellings must coincide (both are the canonical minimal one)."""
    from repro.serving.service import OracleService

    graph = random_connected_graph(31, n_min=14, n_max=20)
    events = mixed_stream(graph, 20, rng=11)

    direct = DynamicHCL.build(graph.copy(), num_landmarks=3)
    replay(direct, events)

    service = OracleService(
        DynamicHCL.build(graph.copy(), landmarks=list(direct.landmarks)),
        max_batch=4,
    )
    with service:
        service.submit_many(events)
        service.flush()
        assert service.oracle.labelling == direct.labelling
