"""Tests for the 12 dataset stand-ins (Table 2 substrate)."""

import pytest

from repro.exceptions import WorkloadError
from repro.graph.statistics import connected_components
from repro.workloads.datasets import (
    DATASETS,
    build_dataset,
    dataset_names,
)


class TestRegistry:
    def test_twelve_datasets_in_paper_order(self):
        names = dataset_names()
        assert len(names) == 12
        assert names[0] == "skitter-s"
        assert names[-1] == "clueweb09-s"

    def test_every_paper_dataset_represented(self):
        originals = {spec.stands_in_for for spec in DATASETS.values()}
        assert originals == {
            "Skitter", "Flickr", "Hollywood", "Orkut", "Enwiki",
            "Livejournal", "Indochina", "IT", "Twitter", "Friendster",
            "UK", "Clueweb09",
        }

    def test_network_classes(self):
        classes = {spec.network_class for spec in DATASETS.values()}
        assert classes == {"comp", "social", "web"}

    def test_clueweb_has_larger_landmark_set(self):
        # mirrors the paper's |R|=150 for Clueweb09 vs 20 elsewhere
        assert DATASETS["clueweb09-s"].num_landmarks > 20
        assert DATASETS["skitter-s"].num_landmarks == 20

    def test_pll_feasible_mirrors_paper(self):
        feasible = {n for n, s in DATASETS.items() if s.pll_feasible}
        assert feasible == {
            "skitter-s", "flickr-s", "hollywood-s", "enwiki-s", "indochina-s"
        }

    def test_unknown_dataset(self):
        with pytest.raises(WorkloadError, match="unknown dataset"):
            build_dataset("nope")

    def test_unknown_profile(self):
        with pytest.raises(WorkloadError, match="unknown profile"):
            DATASETS["skitter-s"].build(profile="huge")


class TestInstantiation:
    @pytest.mark.parametrize("name", dataset_names())
    def test_smoke_build_connected_and_deterministic(self, name):
        spec, g1 = build_dataset(name, profile="smoke")
        _, g2 = build_dataset(name, profile="smoke")
        assert g1.num_vertices == g2.num_vertices
        assert sorted(g1.edges()) == sorted(g2.edges())
        assert len(connected_components(g1)) == 1

    def test_profiles_scale(self):
        _, small = build_dataset("flickr-s", profile="smoke")
        _, default = build_dataset("flickr-s", profile="default")
        assert default.num_vertices > small.num_vertices

    def test_seed_changes_graph(self):
        _, a = build_dataset("flickr-s", profile="smoke", seed=1)
        _, b = build_dataset("flickr-s", profile="smoke", seed=2)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_web_class_has_higher_avg_distance_than_social(self):
        from repro.graph.statistics import average_distance

        _, web = build_dataset("indochina-s", profile="smoke")
        _, social = build_dataset("flickr-s", profile="smoke")
        assert average_distance(web, num_sources=16, rng=0) > average_distance(
            social, num_sources=16, rng=0
        )
