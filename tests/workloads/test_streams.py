"""Tests for typed update streams and replay."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dynamic import DynamicHCL
from repro.core.validation import check_matches_rebuild
from repro.exceptions import WorkloadError
from repro.graph.dynamic_graph import DynamicGraph
from repro.workloads.streams import (
    UpdateEvent,
    densification_stream,
    insertion_stream,
    mixed_stream,
    replay,
    sliding_window_stream,
    split_events,
)

from tests.conftest import random_connected_graph


def replay_on_edge_set(graph, events):
    """Apply events to a plain edge-set mirror, asserting applicability."""
    edges = {tuple(sorted(e)) for e in graph.edges()}
    for event in events:
        key = tuple(sorted(event.edge))
        if event.is_insert:
            assert key not in edges, f"duplicate insert {key}"
            edges.add(key)
        else:
            assert key in edges, f"delete of absent edge {key}"
            edges.remove(key)
    return edges


class TestEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(WorkloadError):
            UpdateEvent("upsert", (0, 1))

    def test_is_insert(self):
        assert UpdateEvent("insert", (0, 1)).is_insert
        assert not UpdateEvent("delete", (0, 1)).is_insert


class TestInsertionStream:
    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_applicable_and_disjoint_from_graph(self, seed):
        graph = random_connected_graph(seed, n_min=10, n_max=20)
        events = insertion_stream(graph, 5, rng=seed)
        assert len(events) == 5
        assert all(e.is_insert for e in events)
        for event in events:
            assert not graph.has_edge(*event.edge)
        replay_on_edge_set(graph, events)

    def test_deterministic_under_seed(self):
        graph = random_connected_graph(1, n_min=10, n_max=20)
        assert insertion_stream(graph, 5, rng=9) == insertion_stream(
            graph, 5, rng=9
        )

    def test_dense_graph_rejected(self):
        graph = DynamicGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        with pytest.raises(WorkloadError):
            insertion_stream(graph, 5, rng=0)


class TestMixedStream:
    @given(seed=st.integers(0, 10**6), ratio=st.floats(0.2, 0.9))
    @settings(max_examples=15, deadline=None)
    def test_applicable_in_order(self, seed, ratio):
        graph = random_connected_graph(seed, n_min=10, n_max=20)
        events = mixed_stream(graph, 12, insert_ratio=ratio, rng=seed)
        assert len(events) == 12
        replay_on_edge_set(graph, events)

    def test_ratio_bounds_validated(self):
        graph = random_connected_graph(3)
        with pytest.raises(WorkloadError):
            mixed_stream(graph, 3, insert_ratio=1.5)

    def test_pure_deletion_stream(self):
        graph = random_connected_graph(17, n_min=10, n_max=15)
        events = mixed_stream(graph, 5, insert_ratio=0.0, rng=1)
        assert all(not e.is_insert for e in events)
        replay_on_edge_set(graph, events)

    def test_replays_exactly_on_oracle(self):
        graph = random_connected_graph(29, n_min=10, n_max=18)
        events = mixed_stream(graph, 8, insert_ratio=0.6, rng=4)
        oracle = DynamicHCL.build(graph, num_landmarks=2)
        records = replay(oracle, events)
        assert len(records) == 8
        assert all(r.seconds >= 0 for r in records)
        check_matches_rebuild(oracle.graph, oracle.labelling)


class TestDensificationStream:
    def test_applicable_and_degree_biased(self):
        # A star: the hub has degree n-1, leaves degree 1; degree-biased
        # endpoint choice should mostly produce leaf-leaf chords (the hub
        # is saturated), all valid non-edges.
        n = 12
        graph = DynamicGraph.from_edges([(0, i) for i in range(1, n)])
        events = densification_stream(graph, 6, rng=3)
        assert len(events) == 6
        replay_on_edge_set(graph, events)

    def test_deterministic_under_seed(self):
        graph = random_connected_graph(5, n_min=10, n_max=15)
        assert densification_stream(graph, 4, rng=2) == densification_stream(
            graph, 4, rng=2
        )


class TestSlidingWindow:
    def test_window_bounds_live_edges(self):
        graph = random_connected_graph(7, n_min=12, n_max=20)
        events = sliding_window_stream(graph, 10, window=3, rng=5)
        final = replay_on_edge_set(graph, events)
        original = {tuple(sorted(e)) for e in graph.edges()}
        assert len(final - original) <= 3

    def test_first_window_is_pure_inserts(self):
        graph = random_connected_graph(13, n_min=12, n_max=20)
        events = sliding_window_stream(graph, 8, window=4, rng=6)
        assert all(e.is_insert for e in events[:4])
        assert any(not e.is_insert for e in events)

    def test_invalid_window_rejected(self):
        graph = random_connected_graph(3)
        with pytest.raises(WorkloadError):
            sliding_window_stream(graph, 5, window=0)


class TestSplit:
    def test_split_partitions(self):
        events = [
            UpdateEvent("insert", (0, 1)),
            UpdateEvent("delete", (2, 3)),
            UpdateEvent("insert", (4, 5)),
        ]
        inserts, deletes = split_events(events)
        assert inserts == [(0, 1), (4, 5)]
        assert deletes == [(2, 3)]
