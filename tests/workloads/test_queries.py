"""Tests for the query-pair sampler."""

import pytest

from repro.exceptions import WorkloadError
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import grid_graph
from repro.workloads.queries import sample_query_pairs


class TestQueryPairs:
    def test_count_and_membership(self):
        g = grid_graph(4, 4)
        pairs = sample_query_pairs(g, 25, rng=0)
        assert len(pairs) == 25
        for u, v in pairs:
            assert g.has_vertex(u) and g.has_vertex(v)
            assert u != v

    def test_deterministic(self):
        g = grid_graph(3, 3)
        assert sample_query_pairs(g, 10, rng=1) == sample_query_pairs(g, 10, rng=1)

    def test_self_pairs_allowed_when_requested(self):
        g = DynamicGraph([0, 1])
        pairs = sample_query_pairs(g, 200, rng=2, distinct_endpoints=False)
        assert any(u == v for u, v in pairs)

    def test_empty_graph(self):
        with pytest.raises(WorkloadError):
            sample_query_pairs(DynamicGraph(), 1, rng=0)

    def test_single_vertex_distinct(self):
        with pytest.raises(WorkloadError):
            sample_query_pairs(DynamicGraph([0]), 1, rng=0)

    def test_negative_count(self):
        with pytest.raises(WorkloadError):
            sample_query_pairs(grid_graph(2, 2), -1, rng=0)
