"""Snapshot copy-on-write isolation under fast-path (vectorized) writes.

The fast update engine mutates the label store through ``bulk_set`` /
``bulk_remove`` and the highway through ``set_distance`` — different
entry points than the dict kernels — so these tests pin down that every
one of them honours the row-freeze contract: a snapshot captured at
epoch ``e`` must answer exactly as the graph stood at ``e``, no matter
how many vectorized updates (or a concurrent writer thread) land after —
or *while* — it is being read.
"""

import random
import threading

import pytest

from repro.core.dynamic import DynamicHCL
from repro.graph.traversal import bfs_distances
from repro.landmarks.selection import top_degree_landmarks
from repro.serving.service import OracleService
from repro.workloads.streams import UpdateEvent

from tests.conftest import all_pairs_distances, non_edges, random_connected_graph
from tests.proptest.strategies import insertion_stream


def frozen_answers(snap, pairs):
    return [snap.query(u, v) for u, v in pairs]


class TestSnapshotVsFastWrites:
    def test_snapshot_pinned_across_fast_single_inserts(self):
        graph = random_connected_graph(41, n_min=12, n_max=18)
        oracle = DynamicHCL.build(graph, num_landmarks=3, fast_updates=True)
        expected = all_pairs_distances(graph)
        vertices = sorted(graph.vertices())
        pairs = [(u, v) for u in vertices[:6] for v in vertices[6:10]]
        snap = oracle.snapshot()
        before = frozen_answers(snap, pairs)
        for edge in non_edges(graph)[:10]:
            oracle.insert_edge(*edge)
        # the pinned snapshot still answers with pre-insertion distances
        assert frozen_answers(snap, pairs) == before
        for (u, v), answer in zip(pairs, before):
            assert answer == expected[u].get(v, float("inf"))
        # while the live oracle reflects the new edges
        fresh = oracle.snapshot()
        assert fresh.epoch > snap.epoch
        live = bfs_distances(oracle.graph, pairs[0][0])
        assert fresh.query(*pairs[0]) == live.get(pairs[0][1], float("inf"))

    def test_snapshot_pinned_across_fast_batch(self):
        graph = random_connected_graph(42, n_min=14, n_max=20)
        oracle = DynamicHCL.build(graph, num_landmarks=4, fast_updates=True)
        vertices = sorted(graph.vertices())
        pairs = [(vertices[i], vertices[-1 - i]) for i in range(5)]
        snap = oracle.snapshot()
        before = frozen_answers(snap, pairs)
        batch = non_edges(graph)[:12]
        oracle.insert_edges_batch(batch)
        assert frozen_answers(snap, pairs) == before
        # label-store totals on the snapshot stayed at capture time values
        assert snap.label_entries != oracle.label_entries or before == frozen_answers(
            oracle.snapshot(), pairs
        )

    def test_snapshot_between_engine_attach_and_batch(self):
        """Capturing *after* the engine exists but before a batch: the
        engine's bulk mutations must still copy shared rows first."""
        graph = random_connected_graph(43, n_min=12, n_max=18)
        oracle = DynamicHCL.build(graph, num_landmarks=3, fast_updates=True)
        oracle.insert_edge(*non_edges(graph)[0])  # engine attaches here
        vertices = sorted(graph.vertices())
        pairs = [(vertices[0], v) for v in vertices[1:8]]
        snap = oracle.snapshot()
        before = frozen_answers(snap, pairs)
        oracle.insert_edges_batch(non_edges(graph)[:8])
        assert frozen_answers(snap, pairs) == before

    def test_multiple_epochs_stay_independent(self):
        graph = random_connected_graph(44, n_min=10, n_max=14)
        oracle = DynamicHCL.build(graph, num_landmarks=2, fast_updates=True)
        vertices = sorted(graph.vertices())
        pairs = [(vertices[0], v) for v in vertices[1:6]]
        snapshots = [(oracle.snapshot(), frozen_answers(oracle.snapshot(), pairs))]
        for edge in non_edges(graph)[:9]:
            oracle.insert_edge(*edge)
            snap = oracle.snapshot()
            snapshots.append((snap, frozen_answers(snap, pairs)))
        # every historical epoch still answers its own pinned values
        for snap, answers in snapshots:
            assert frozen_answers(snap, pairs) == answers
        epochs = [snap.epoch for snap, _ in snapshots]
        assert epochs == sorted(epochs)


class TestWriterInterleaving:
    def test_mid_batch_snapshot_never_observes_half_applied_state(self):
        """Readers pinning snapshots while the writer applies coalesced
        fast batches must only ever see fully-applied epochs: for the
        snapshot's own graph, labelling answers equal BFS answers."""
        graph = random_connected_graph(45, n_min=16, n_max=24)
        oracle = DynamicHCL.build(graph, num_landmarks=3)
        rng = random.Random(777)
        stream = insertion_stream(graph, 160, rng)
        errors: list[str] = []
        stop = threading.Event()

        def reader():
            check_rng = random.Random(999)
            while not stop.is_set():
                snap = service.snapshot  # pin one epoch
                verts = sorted(snap.graph.vertices())
                for _ in range(4):
                    u, v = check_rng.sample(verts, 2)
                    got = snap.query(u, v)
                    expected = bfs_distances(snap.graph, u).get(v, float("inf"))
                    if got != expected:
                        errors.append(
                            f"epoch {snap.epoch}: query({u},{v})={got} "
                            f"!= BFS {expected}"
                        )
                        stop.set()
                        return

        service = OracleService(oracle, max_batch=32, fast=True)
        with service:
            threads = [threading.Thread(target=reader) for _ in range(3)]
            for t in threads:
                t.start()
            for u, v in stream:
                service.submit(UpdateEvent("insert", (u, v)))
            service.flush()
            stop.set()
            for t in threads:
                t.join()
        assert not errors, errors[:3]
        assert service.metrics.stats()["insert_batches"] >= 1
        # final state is exact too
        final = oracle.snapshot()
        verts = sorted(graph.vertices())
        u = verts[0]
        ref = bfs_distances(graph, u)
        for v in verts[1:10]:
            assert final.query(u, v) == ref.get(v, float("inf"))

    def test_fast_and_slow_writer_runs_publish_identical_labellings(self):
        graph_fast = random_connected_graph(46, n_min=12, n_max=18)
        graph_slow = graph_fast.copy()
        landmarks = top_degree_landmarks(graph_fast, 3)
        stream = insertion_stream(graph_fast, 40, random.Random(4242))
        events = [UpdateEvent("insert", e) for e in stream]

        oracle_fast = DynamicHCL.build(graph_fast, landmarks=landmarks)
        with OracleService(oracle_fast, fast=True) as service:
            service.submit_many(events)
            service.flush()
        oracle_slow = DynamicHCL.build(graph_slow, landmarks=landmarks)
        with OracleService(oracle_slow, fast=False) as service:
            service.submit_many(events)
            service.flush()
        assert oracle_fast.labelling == oracle_slow.labelling
