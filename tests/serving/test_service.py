"""OracleService: single-writer batching, lifecycle, and — the acceptance
criterion — reader/writer concurrency without torn reads.

The concurrency test runs real reader threads against published snapshots
while the writer applies batches, and checks every sampled answer against
a BFS on the *snapshot's own frozen graph*: if a writer mutation ever
leaked into a published snapshot (a torn read), the BFS on that
half-mutated adjacency could not agree with the labelling-based answer
for all pairs over hundreds of samples.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.dynamic import DynamicHCL
from repro.exceptions import ServingError
from repro.graph.generators import grid_graph
from repro.graph.traversal import bfs_distances
from repro.serving.service import OracleService
from repro.workloads.streams import UpdateEvent, mixed_stream
from repro.utils.rng import ensure_rng
from tests.conftest import random_connected_graph

INF = float("inf")


def _service(seed=1, **kwargs) -> OracleService:
    graph = random_connected_graph(seed, n_min=12, n_max=24)
    oracle = DynamicHCL.build(graph, num_landmarks=3)
    return OracleService(oracle, **kwargs)


def test_lifecycle_and_context_manager():
    service = _service()
    assert not service.running
    with service:
        assert service.running
    assert not service.running
    # Restartable after a stop.
    service.start()
    assert service.running
    service.stop()
    assert not service.running


def test_flush_without_running_writer_raises():
    service = _service()
    service.submit(UpdateEvent("insert", _one_non_edge(service.oracle.graph)))
    with pytest.raises(ServingError):
        service.flush()


def test_submit_after_stop_initiated_raises():
    service = _service()
    service.start()
    service.stop()
    with pytest.raises(ServingError):
        service.submit(UpdateEvent("insert", (0, 1)))


def test_final_state_equals_serial_replay():
    graph = random_connected_graph(42, n_min=15, n_max=25)
    events = mixed_stream(graph, 30, rng=7)

    serial = DynamicHCL.build(graph.copy(), num_landmarks=3)
    for event in events:
        u, v = event.edge
        if event.is_insert:
            serial.insert_edge(u, v)
        else:
            serial.remove_edge(u, v)

    landmarks = list(serial.landmarks)
    service = OracleService(
        DynamicHCL.build(graph.copy(), landmarks=landmarks), max_batch=8
    )
    with service:
        service.submit_many(events)
        service.flush()
        # Same canonical minimal labelling as the strictly-online replay.
        assert service.oracle.labelling == serial.labelling
        assert sorted(service.oracle.graph.edges()) == sorted(serial.graph.edges())


def test_invalid_events_are_rejected_not_corrupting():
    oracle = DynamicHCL.build(grid_graph(3, 3), landmarks=[4])
    service = OracleService(oracle, max_batch=16)
    with service:
        service.submit_many([
            UpdateEvent("insert", (0, 8)),
            UpdateEvent("insert", (0, 8)),      # duplicate within chunk
            UpdateEvent("insert", (0, 1)),      # already an edge
            UpdateEvent("insert", (3, 3)),      # self-loop
            UpdateEvent("delete", (0, 7)),      # absent edge
            UpdateEvent("insert", (2, 6)),
        ])
        service.flush()
        stats = service.stats()
    assert stats["events_applied"] == 2
    assert stats["events_rejected"] == 4
    # The survivors applied correctly and the labelling is still exact.
    snap = service.snapshot
    table = bfs_distances(service.oracle.graph, 0)
    for v in service.oracle.graph.vertices():
        assert snap.query(0, v) == table.get(v, INF)


def test_insert_runs_are_batched():
    oracle = DynamicHCL.build(grid_graph(4, 4), landmarks=[0, 15])
    service = OracleService(oracle, max_batch=32)
    events = [UpdateEvent("insert", e)
              for e in [(0, 5), (1, 6), (2, 7), (3, 8), (9, 14)]]
    # Queue everything before the writer starts: the first drain must then
    # coalesce the whole insert run into one insert_edges_batch sweep.
    service.submit_many(events)
    with service:
        service.flush()
        stats = service.stats()
    assert stats["events_applied"] == len(events)
    assert stats["insert_batches"] == 1


def test_mixed_chunk_coalesces_into_one_batch():
    """A chunk with deletes in the middle of an insert run must apply as
    ONE mixed batch (satellite of the fully-dynamic engine): previously
    the first non-insert event broke coalescing and everything after it
    slow-pathed one event at a time."""
    graph = grid_graph(4, 4)
    oracle = DynamicHCL.build(graph, landmarks=[0, 15])
    events = [
        UpdateEvent("insert", (0, 5)),
        UpdateEvent("delete", (5, 6)),     # interrupts the insert run
        UpdateEvent("insert", (1, 6)),
        UpdateEvent("delete", (9, 10)),
        UpdateEvent("insert", (2, 7)),
    ]
    reference = DynamicHCL.build(grid_graph(4, 4), landmarks=[0, 15])
    for event in events:
        u, v = event.edge
        if event.is_insert:
            reference.insert_edge(u, v, fast=False)
        else:
            reference.remove_edge(u, v, fast=False)

    service = OracleService(oracle, max_batch=32)
    service.submit_many(events)  # queued before start → one drained chunk
    with service:
        service.flush()
        stats = service.stats()
    assert stats["events_applied"] == len(events)
    assert stats["events_rejected"] == 0
    assert stats["mixed_batches"] == 1
    assert stats["insert_batches"] == 0
    assert oracle.labelling == reference.labelling
    table = bfs_distances(oracle.graph, 0)
    for v in oracle.graph.vertices():
        assert service.snapshot.query(0, v) == table.get(v, INF)


def test_mixed_chunk_accepts_intra_chunk_churn():
    """Sequential chunk semantics: deleting an edge inserted earlier in
    the same chunk (and re-inserting a deleted one) is valid, and churn
    pairs cancel inside the engine without desyncing graph/labelling."""
    oracle = DynamicHCL.build(grid_graph(3, 3), landmarks=[4])
    service = OracleService(oracle, max_batch=32)
    events = [
        UpdateEvent("insert", (0, 8)),
        UpdateEvent("delete", (0, 8)),     # delete the chunk's own insert
        UpdateEvent("delete", (0, 1)),
        UpdateEvent("insert", (0, 1)),     # re-insert after delete
        UpdateEvent("insert", (2, 6)),
    ]
    service.submit_many(events)
    with service:
        service.flush()
        stats = service.stats()
    assert stats["events_applied"] == len(events)
    assert stats["events_rejected"] == 0
    assert not oracle.graph.has_edge(0, 8)
    assert oracle.graph.has_edge(0, 1)
    assert oracle.graph.has_edge(2, 6)
    table = bfs_distances(oracle.graph, 4)
    for v in oracle.graph.vertices():
        assert service.snapshot.query(4, v) == table.get(v, INF)


def test_mixed_chunk_rejects_without_side_effects():
    """Rejections inside a mixed chunk track the chunk's own sequential
    state: a duplicate insert, an absent-edge delete, and a delete of an
    edge the chunk already deleted are all counted, and rejected inserts
    leave no orphan vertices behind."""
    oracle = DynamicHCL.build(grid_graph(3, 3), landmarks=[4])
    before_vertices = oracle.graph.num_vertices
    service = OracleService(oracle, max_batch=32)
    events = [
        UpdateEvent("delete", (0, 1)),
        UpdateEvent("delete", (0, 1)),       # already deleted in-chunk
        UpdateEvent("insert", (0, 8)),
        UpdateEvent("insert", (0, 8)),       # duplicate within chunk
        UpdateEvent("delete", (0, 7)),       # never an edge
        UpdateEvent("insert", (3, 3)),       # self-loop
        UpdateEvent("insert", (50, -2)),     # bad id → no orphan vertex 50
    ]
    service.submit_many(events)
    with service:
        service.flush()
        stats = service.stats()
    assert stats["events_applied"] == 2
    assert stats["events_rejected"] == 5
    assert stats["mixed_batches"] == 1
    assert oracle.graph.num_vertices == before_vertices
    assert not oracle.graph.has_vertex(50)
    table = bfs_distances(oracle.graph, 4)
    for v in oracle.graph.vertices():
        assert service.snapshot.query(4, v) == table.get(v, INF)


def test_chunk_boundary_epochs_advance_by_accepted_events():
    """Epoch bookkeeping across chunk boundaries: every *accepted* event
    advances the published epoch by exactly one (mixed batches stamp
    ``version += len(run)``, matching a one-at-a-time replay), and
    rejected events leave the epoch untouched."""
    oracle = DynamicHCL.build(grid_graph(3, 3), landmarks=[4])
    base_epoch = oracle.version
    service = OracleService(oracle, max_batch=3)  # force several chunks
    with service:
        # Chunk-sized bursts with flush() between them pin the boundaries.
        service.submit_many([
            UpdateEvent("insert", (0, 8)),
            UpdateEvent("delete", (0, 1)),
            UpdateEvent("insert", (2, 6)),
        ])
        service.flush()
        assert service.snapshot.epoch == base_epoch + 3
        service.submit_many([
            UpdateEvent("delete", (0, 7)),      # rejected: absent edge
            UpdateEvent("insert", (0, 8)),      # rejected: duplicate
            UpdateEvent("delete", (2, 6)),      # accepted
        ])
        service.flush()
        assert service.snapshot.epoch == base_epoch + 4
        stats = service.stats()
    assert stats["events_applied"] == 4
    assert stats["events_rejected"] == 2


def test_mixed_chunk_slow_route_matches_fast():
    """``fast=False`` services keep the legacy per-event delete loop; the
    final labelling must still match the fast service byte for byte."""
    graph = random_connected_graph(17, n_min=14, n_max=22)
    events = mixed_stream(graph, 24, rng=5)
    oracle_fast = DynamicHCL.build(graph.copy(), num_landmarks=3)
    landmarks = list(oracle_fast.landmarks)
    oracle_slow = DynamicHCL.build(graph.copy(), landmarks=landmarks)
    with OracleService(oracle_fast, max_batch=8, fast=True) as fast_svc:
        fast_svc.submit_many(events)
        fast_svc.flush()
        fast_stats = fast_svc.stats()
    with OracleService(oracle_slow, max_batch=8, fast=False) as slow_svc:
        slow_svc.submit_many(events)
        slow_svc.flush()
        slow_stats = slow_svc.stats()
    assert fast_stats["events_applied"] == slow_stats["events_applied"]
    assert slow_stats["mixed_batches"] == 0  # legacy loop, no coalescing
    assert oracle_fast.labelling == oracle_slow.labelling
    assert sorted(oracle_fast.graph.edges()) == sorted(oracle_slow.graph.edges())


def test_queries_served_while_stopped_writer():
    service = _service(seed=5)
    # Reads never require the writer: the initial snapshot serves them.
    u = next(iter(service.oracle.graph.vertices()))
    assert service.query(u, u) == 0
    assert service.query_many([(u, u)]) == [0]
    assert service.shortest_path(u, u) == [u]
    assert service.stats()["queries"]["count"] == 3


@pytest.mark.parametrize("readers", [2, 4])
def test_concurrent_readers_never_observe_torn_state(readers):
    """Acceptance: snapshot answers always match BFS on that snapshot's
    own graph epoch, while the writer applies batches concurrently."""
    graph = random_connected_graph(99, n_min=25, n_max=35, density=2.5)
    events = mixed_stream(graph, 80, rng=3)
    oracle = DynamicHCL.build(graph, num_landmarks=4)
    vertices = sorted(graph.vertices())
    service = OracleService(oracle, max_batch=8)

    stop = threading.Event()
    failures: list[tuple] = []
    checks = [0] * readers

    def reader(idx: int) -> None:
        rng = ensure_rng(1000 + idx)
        while not stop.is_set():
            snap = service.snapshot  # pin one epoch
            u = rng.choice(vertices)
            v = rng.choice(vertices)
            got = snap.query(u, v)
            expected = bfs_distances(snap.graph, u).get(v, INF)
            if got != expected:
                failures.append((snap.epoch, u, v, got, expected))
                return
            checks[idx] += 1

    threads = [threading.Thread(target=reader, args=(i,)) for i in range(readers)]
    with service:
        for t in threads:
            t.start()
        # Feed the writer in bursts so batching and publishing both happen
        # while the readers hammer the snapshots.
        for base in range(0, len(events), 5):
            service.submit_many(events[base : base + 5])
        service.flush()
        stop.set()
        for t in threads:
            t.join()

    assert not failures, failures[:3]
    assert all(c > 0 for c in checks), checks
    assert service.stats()["events_applied"] > 0


def test_malformed_events_do_not_kill_the_writer():
    """A wire client must never be able to halt the update loop: events
    with invalid vertex ids are rejected and later events still apply."""
    oracle = DynamicHCL.build(grid_graph(3, 3), landmarks=[4])
    service = OracleService(oracle, max_batch=16)
    with service:
        service.submit_many([
            UpdateEvent("insert", (-1, 2)),        # negative id
            UpdateEvent("insert", ("zero", 3)),    # non-int id
            UpdateEvent("delete", (None, 1)),      # unhashable nonsense
            UpdateEvent("insert", (0, 8)),         # valid
        ])
        service.flush()
        assert service.running  # the writer survived everything above
        stats = service.stats()
    assert stats["events_applied"] == 1
    assert stats["events_rejected"] == 3
    assert service.oracle.query(0, 8) == 1


def test_stop_without_drain_abandons_backlog():
    import time

    from tests.conftest import non_edges

    graph = grid_graph(6, 6)
    backlog = [UpdateEvent("insert", e) for e in non_edges(graph)[:20]]
    oracle = DynamicHCL.build(graph, landmarks=[0, 35])
    real_insert = oracle.insert_edge

    def slow_insert(u, v):  # make each apply slow so the race is decided
        time.sleep(0.05)
        return real_insert(u, v)

    oracle.insert_edge = slow_insert
    service = OracleService(oracle, max_batch=1)
    service.submit_many(backlog)
    service.start()
    time.sleep(0.01)  # writer is mid-first-event
    start = time.perf_counter()
    service.stop(drain=False)
    elapsed = time.perf_counter() - start
    stats = service.stats()
    # The writer finishes the event in flight; everything else is
    # abandoned, the queue is left empty, and stop returns promptly
    # instead of blocking for the ~1s full drain.
    assert stats["events_applied"] <= 2
    assert stats["pending"] == 0
    assert elapsed < 0.5
    assert not service.running


def test_request_publish_without_writer_is_immediate():
    oracle = DynamicHCL.build(grid_graph(3, 3), landmarks=[4])
    service = OracleService(oracle)
    oracle.insert_edge(0, 8)  # direct mutation, writer idle
    done = service.request_publish()
    assert done.is_set()
    assert service.snapshot.query(0, 8) == 1


def test_request_publish_with_writer_covers_prior_events():
    oracle = DynamicHCL.build(grid_graph(3, 3), landmarks=[4])
    service = OracleService(oracle)
    with service:
        service.submit(UpdateEvent("insert", (0, 8)))
        done = service.request_publish()
        assert done.wait(timeout=10)
        assert service.snapshot.query(0, 8) == 1


def test_query_accepts_pinned_snapshot():
    oracle = DynamicHCL.build(grid_graph(3, 3), landmarks=[4])
    service = OracleService(oracle)
    pinned = service.snapshot
    oracle.insert_edge(0, 8)
    service.refresh()
    # The pinned snapshot answers at its own epoch even though the
    # published one moved on — this is what the server's query ops rely
    # on to keep the reported epoch and the answer in agreement.
    assert service.query(0, 8, snapshot=pinned) == 4
    assert service.query(0, 8) == 1
    assert service.query_many([(0, 8)], snapshot=pinned) == [4]
    assert service.shortest_path(0, 8, snapshot=pinned) != [0, 8]


def test_rejected_events_leave_no_side_effects():
    """A half-valid insert (one good id, one bad) must not add orphan
    vertices to the live graph or desync it from the snapshot."""
    oracle = DynamicHCL.build(grid_graph(3, 3), landmarks=[4])
    before_vertices = oracle.graph.num_vertices
    service = OracleService(oracle, max_batch=16)
    with service:
        service.submit_many([
            UpdateEvent("insert", (100, -5)),     # valid-looking u, bad v
            UpdateEvent("insert", (200, "x")),    # valid-looking u, bad v
        ])
        service.flush()
        stats = service.stats()
    assert stats["events_rejected"] == 2
    assert oracle.graph.num_vertices == before_vertices
    assert not oracle.graph.has_vertex(100)
    assert not oracle.graph.has_vertex(200)
    assert service.snapshot.num_vertices == before_vertices


def test_mid_apply_failure_degrades_instead_of_publishing_desync():
    """If an *accepted* update raises mid-apply (graph mutated, labelling
    repair incomplete) the service must keep serving the last good
    snapshot, refuse further updates, and report itself degraded."""
    oracle = DynamicHCL.build(grid_graph(3, 3), landmarks=[4])
    real_insert = oracle.insert_edge
    calls = []

    def exploding_insert(u, v, fast=None):
        calls.append((u, v))
        if (u, v) == (2, 6):
            oracle.graph.add_edge(u, v)  # mutate like the real thing...
            raise RuntimeError("repair blew up")  # ...then fail mid-repair
        return real_insert(u, v, fast=fast)

    oracle.insert_edge = exploding_insert
    service = OracleService(oracle, max_batch=1)
    with service:
        service.submit(UpdateEvent("insert", (0, 8)))
        service.flush()
        good_epoch = service.snapshot.epoch
        assert service.query(0, 8) == 1

        service.submit(UpdateEvent("insert", (2, 6)))   # will explode
        service.flush()
        assert service.degraded is not None
        assert service.running  # writer thread survived
        # The desynchronised state was never published.
        assert service.snapshot.epoch == good_epoch
        assert service.query(0, 8) == 1
        # Further updates are refused up front...
        with pytest.raises(ServingError, match="degraded"):
            service.submit(UpdateEvent("insert", (0, 7)))
        # ...refresh refuses to capture untrusted state...
        with pytest.raises(ServingError, match="degraded"):
            service.refresh()
        # ...and publish requests resolve immediately to the last good state.
        assert service.request_publish().wait(timeout=1)
        stats = service.stats()
    assert stats["degraded"] is not None
    assert stats["events_applied"] == 1
    assert stats["events_rejected"] == 1  # the exploding event, once


def _one_non_edge(graph):
    from tests.conftest import non_edges

    return non_edges(graph)[0]
