"""Metrics: percentile math, recorder summaries, thread-safety smoke."""

from __future__ import annotations

import threading

import pytest

from repro.serving.metrics import LatencyRecorder, ServiceMetrics, percentile


def test_percentile_interpolation():
    samples = [1.0, 2.0, 3.0, 4.0]
    assert percentile(samples, 0) == 1.0
    assert percentile(samples, 50) == 2.5
    assert percentile(samples, 100) == 4.0
    assert percentile(samples, 25) == 1.75
    assert percentile([5.0], 99) == 5.0


def test_percentile_rejects_bad_input():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_recorder_empty_summary():
    summary = LatencyRecorder().summary()
    hist = summary.pop("hist")
    assert summary == {"count": 0, "qps": 0.0, "mean_ms": None,
                       "p50_ms": None, "p95_ms": None, "p99_ms": None}
    assert hist["count"] == 0  # mergeable histogram rides along, empty


def test_recorder_summary_fields():
    recorder = LatencyRecorder(window=100)
    for ms in (1, 2, 3, 4, 5):
        recorder.record(ms / 1000.0)
    summary = recorder.summary()
    assert summary["count"] == 5
    assert summary["qps"] > 0
    assert summary["mean_ms"] == pytest.approx(3.0)
    assert summary["p50_ms"] == pytest.approx(3.0)
    assert summary["p99_ms"] <= 5.0 + 1e-9
    assert summary["p50_ms"] <= summary["p95_ms"] <= summary["p99_ms"]


def test_recorder_window_bounds_memory():
    recorder = LatencyRecorder(window=8)
    for i in range(100):
        recorder.record(float(i))
    summary = recorder.summary()
    assert summary["count"] == 100          # lifetime count
    assert summary["p50_ms"] >= 92 * 1000   # percentiles over the window


def test_recorder_time_wraps_calls():
    recorder = LatencyRecorder()
    assert recorder.time(lambda x: x + 1, 41) == 42
    with pytest.raises(RuntimeError):
        recorder.time(_raise)
    assert recorder.count == 2  # failures are recorded too


def test_recorder_rejects_bad_window():
    with pytest.raises(ValueError):
        LatencyRecorder(window=0)


def test_concurrent_records_are_not_lost():
    recorder = LatencyRecorder(window=16)

    def hammer():
        for _ in range(500):
            recorder.record(0.001)

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert recorder.count == 2000


def test_service_metrics_stats_shape():
    metrics = ServiceMetrics()
    metrics.count_applied(3)
    metrics.count_rejected()
    metrics.count_insert_batch()
    metrics.count_snapshot()
    metrics.queries.record(0.002)
    stats = metrics.stats()
    assert stats["events_applied"] == 3
    assert stats["events_rejected"] == 1
    assert stats["insert_batches"] == 1
    assert stats["snapshots_published"] == 1
    assert stats["queries"]["count"] == 1
    assert stats["updates"]["count"] == 0
    assert stats["phases"] == {}  # nothing observed yet
    assert stats["aff"]["count"] == 0


def test_service_metrics_observe_batch_feeds_phase_hists():
    metrics = ServiceMetrics()
    metrics.observe_batch({"find": 0.010, "repair": 0.020}, affected=7)
    metrics.observe_batch({"find": 0.030}, affected=3)
    stats = metrics.stats()
    assert stats["phases"]["find"]["count"] == 2
    assert stats["phases"]["find"]["total"] == pytest.approx(40.0)
    assert stats["phases"]["repair"]["count"] == 1
    assert "coalesce" not in stats["phases"]  # empty hists are elided
    assert stats["aff"]["count"] == 2
    assert stats["aff"]["p99"] >= stats["aff"]["p50"]


def _raise():
    raise RuntimeError("boom")
