"""Single-node server observability: the ``metrics``/``spans`` protocol
ops and the ``--metrics-port`` HTTP scrape endpoint, end to end."""

from __future__ import annotations

import urllib.request

import pytest

from repro.core.dynamic import DynamicHCL
from repro.graph.generators import grid_graph
from repro.obs.exporter import CONTENT_TYPE
from repro.obs.trace import new_trace_id, reset_recorder
from repro.serving.client import ServingClient
from repro.serving.server import OracleServer
from repro.serving.service import OracleService


@pytest.fixture
def served(monkeypatch):
    """A server with the HTTP metrics endpoint on an ephemeral port."""
    monkeypatch.delenv("REPRO_SPAN_LOG", raising=False)
    monkeypatch.delenv("REPRO_OBS", raising=False)
    reset_recorder()
    oracle = DynamicHCL.build(grid_graph(4, 4), landmarks=[0, 15])
    server = OracleServer(OracleService(oracle), port=0, metrics_port=0)
    host, port = server.start_in_thread()
    client = ServingClient(host, port)
    yield server, client
    client.close()
    server.stop_thread()
    reset_recorder()


def test_metrics_op_reflects_served_traffic(served):
    _, client = served
    for _ in range(3):
        client.query(0, 15)
    client.update("insert", 0, 15)
    client.snapshot()  # drain the writer so the batch lands
    text = client.metrics()
    assert 'repro_requests_total{op="query"} 3' in text
    assert "repro_query_latency_seconds_count 3" in text
    assert "repro_update_latency_seconds_count 1" in text
    assert "repro_epoch 1" in text
    # The applied batch fed the per-phase histograms.
    assert 'repro_batch_phase_seconds_count{phase="find"} 1' in text
    assert "repro_batch_affected_vertices_count 1" in text


def test_http_scrape_matches_ndjson_metrics_op(served):
    server, client = served
    client.query(0, 15)
    mhost, mport = server.metrics_address
    with urllib.request.urlopen(f"http://{mhost}:{mport}/", timeout=5) as resp:
        assert resp.status == 200
        assert resp.headers.get("Content-Type") == CONTENT_TYPE
        body = resp.read().decode()
    assert "repro_query_latency_seconds_count 1" in body
    assert 'repro_requests_total{op="query"} 1' in body


def test_traced_query_lands_in_the_span_ring(served):
    _, client = served
    tid = new_trace_id()
    assert client.query(0, 15, trace=tid) == 6
    (span_rec,) = client.spans(of=tid)
    assert span_rec["trace"] == tid
    assert span_rec["component"] == "server"
    assert span_rec["name"] == "query"
    assert span_rec["dur_ms"] >= 0.0


def test_writer_chunks_record_their_own_spans(served):
    _, client = served
    client.update("insert", 0, 15)
    client.snapshot()
    chunk_spans = [
        s for s in client.spans() if s["name"] == "apply_chunk"
    ]
    assert chunk_spans
    assert chunk_spans[-1]["component"] == "service"


def test_metrics_exporter_absent_without_port():
    oracle = DynamicHCL.build(grid_graph(2, 2), landmarks=[0])
    server = OracleServer(OracleService(oracle), port=0)
    server.start_in_thread()
    try:
        assert server.metrics_address is None
    finally:
        server.stop_thread()
