"""Server-side continuous observability: the ``profile``/``history``/
``alerts`` protocol ops, the metrics-history recorder, and the SLO
evaluator wired into a live single-node server."""

from __future__ import annotations

import pytest

from repro.core.dynamic import DynamicHCL
from repro.graph.generators import grid_graph
from repro.obs.profile import reset_profiler
from repro.obs.slo import SLO
from repro.obs.timeseries import read_series
from repro.serving.client import ServingClient
from repro.serving.server import OracleServer
from repro.serving.service import OracleService


def _make_server(**kwargs) -> OracleServer:
    oracle = DynamicHCL.build(grid_graph(4, 4), landmarks=[0, 15])
    return OracleServer(OracleService(oracle), port=0, **kwargs)


@pytest.fixture
def served(monkeypatch, tmp_path):
    """A server with a metrics-history file and a trivially-breachable SLO."""
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    reset_profiler()
    history = tmp_path / "history.ndjson"
    slos = [
        SLO(
            name="always-breached",
            metric="qps",
            objective=1e12,
            direction="below",  # qps < 1e12: every sample violates
            budget=0.5,
            windows=((3600.0, 1.0),),
        )
    ]
    server = _make_server(history_path=history, history_interval=3600.0, slos=slos)
    host, port = server.start_in_thread()
    client = ServingClient(host, port)
    yield server, client, history
    client.close()
    server.stop_thread()
    reset_profiler()


class TestHistoryOp:
    def test_history_records_and_serves_points(self, served):
        server, client, history_file = served
        client.query(0, 15)
        # The interval is huge on purpose; force ticks deterministically.
        server.history.record_once()
        server.history.record_once()
        response = client.history()
        assert response["recording"] is True
        assert response["path"] == str(history_file)
        points = response["points"]
        assert len(points) == 2
        assert points[0]["ts"] > 0
        assert "qps" in points[0] and "query_p99_ms" in points[0]
        assert points[0]["rss_kb"] > 0
        # The same trajectory landed on disk.
        assert [p["ts"] for p in read_series(history_file)] == [
            p["ts"] for p in points
        ]

    def test_history_limit(self, served):
        server, client, _ = served
        for _ in range(5):
            server.history.record_once()
        assert len(client.history(limit=2)["points"]) == 2

    def test_history_op_without_recorder(self):
        server = _make_server()
        host, port = server.start_in_thread()
        try:
            with ServingClient(host, port) as client:
                response = client.history()
        finally:
            server.stop_thread()
        assert response["recording"] is False
        assert response["points"] == []

    def test_error_rate_is_a_per_tick_delta(self, served):
        server, client, _ = served
        client.update("insert", 0, 15)
        client.snapshot()
        first = server.history.record_once()
        assert first["events_applied"] == 1
        assert first["error_rate"] == 0.0
        # A writer-side rejection (duplicate insert) dominates the next
        # tick's delta — but must not bleed into the tick after it.
        client.update("insert", 0, 15)
        client.snapshot()
        second = server.history.record_once()
        assert second["error_rate"] == 1.0
        third = server.history.record_once()
        assert third["error_rate"] == 0.0


class TestAlertsOp:
    def test_alerts_fire_through_the_wire(self, served):
        server, client, _ = served
        server.history.record_once()  # on_point runs the evaluator
        response = client.alerts()
        assert [s["name"] for s in response["slos"]] == ["always-breached"]
        (evaluation,) = response["evaluations"]
        assert evaluation["firing"] is True
        (alert,) = response["alerts"]
        assert alert["slo"] == "always-breached"
        # The breach surfaces on the metrics registry too.
        text = client.metrics()
        assert 'repro_slo_breach{slo="always-breached"} 1' in text

    def test_alerts_op_without_slos(self):
        server = _make_server()
        host, port = server.start_in_thread()
        try:
            with ServingClient(host, port) as client:
                response = client.alerts()
        finally:
            server.stop_thread()
        assert response == {
            "ok": True, "alerts": [], "evaluations": [], "slos": [],
        }


class TestProfileOp:
    def test_profile_lifecycle_over_the_wire(self, served):
        _, client, _ = served
        started = client.profile(action="start")
        assert started["profile"]["running"] is True
        client.query(0, 15)
        stopped = client.profile(action="stop")
        assert stopped["profile"]["running"] is False
        dumped = client.profile(action="dump")
        assert isinstance(dumped["folded"], str)
        reset = client.profile(action="reset")
        assert reset["profile"]["samples"] == 0

    def test_profile_unknown_action_is_an_error(self, served):
        from repro.exceptions import ServingError

        _, client, _ = served
        with pytest.raises(ServingError, match="unknown profile action"):
            client.profile(action="explode")
