"""TCP front-end: protocol round-trips, warm start, error handling.

Each test boots a real server on an ephemeral port (``port=0``) and talks
to it over a socket with :class:`ServingClient` — the same stack
``python -m repro serve`` runs.
"""

from __future__ import annotations

import json

import pytest

from repro.core.dynamic import DynamicHCL
from repro.exceptions import ServingError
from repro.graph.generators import grid_graph
from repro.serving.client import ServingClient
from repro.serving.server import OracleServer
from repro.serving.service import OracleService
from repro.utils.serialization import save_oracle

INF = float("inf")


@pytest.fixture
def served():
    """A running server on an ephemeral port + a connected client."""
    oracle = DynamicHCL.build(grid_graph(4, 4), landmarks=[0, 15])
    server = OracleServer(OracleService(oracle), port=0)
    host, port = server.start_in_thread()
    client = ServingClient(host, port)
    yield server, client
    client.close()
    server.stop_thread()


def test_query_roundtrip(served):
    _, client = served
    assert client.ping()
    assert client.query(0, 15) == 6
    assert client.query(3, 3) == 0
    assert client.query_many([(0, 15), (0, 1)]) == [6, 1]


def test_path_roundtrip(served):
    _, client = served
    path = client.path(0, 15)
    assert path[0] == 0 and path[-1] == 15 and len(path) - 1 == 6


def test_update_then_snapshot_advances_epoch(served):
    _, client = served
    before = client.snapshot()
    response = client.update("insert", 0, 15)
    assert response["queued"] == 1
    after = client.snapshot()  # drains the writer, force-publishes
    assert after["epoch"] > before["epoch"]
    assert after["num_edges"] == before["num_edges"] + 1
    assert client.query(0, 15) == 1


def test_bulk_updates_and_stats(served):
    _, client = served
    client.updates([("insert", 1, 14), ("delete", 1, 14), ("insert", 2, 13)])
    client.snapshot()
    stats = client.stats()
    assert stats["events_applied"] == 3
    assert stats["queries"]["count"] >= 0
    assert client.query(2, 13) == 1


def test_unreachable_distance_is_null_on_the_wire(served):
    _, client = served
    # Grid stays connected, so check the raw encoding path via query_many
    # on an isolated fresh vertex created through an insert+delete.
    client.updates([("insert", 16, 0), ("delete", 16, 0)])
    client.snapshot()
    raw = client.request({"op": "query", "u": 16, "v": 0})
    assert raw["ok"] and raw["distance"] is None
    assert client.query(16, 0) == INF


def test_protocol_errors(served):
    _, client = served
    assert client.request({"op": "wat"})["ok"] is False
    missing = client.request({"op": "query", "u": 1})
    assert missing["ok"] is False and "KeyError" in missing["error"]
    unknown_vertex = client.request({"op": "query", "u": 1, "v": 999})
    assert unknown_vertex["ok"] is False
    client._file.write(b"not json\n")  # raw junk on the wire
    client._file.flush()
    response = json.loads(client._file.readline())
    assert response["ok"] is False and "invalid JSON" in response["error"]
    array = client.request([1, 2, 3])
    assert array["ok"] is False and "JSON object" in array["error"]
    bad_kind = client.request({"op": "update", "kind": "upsert", "u": 0, "v": 9})
    assert bad_kind["ok"] is False
    # The connection survives every error above.
    assert client.ping()


def test_client_pipeline_batches_requests(served):
    _, client = served
    payloads = [{"op": "query", "u": 0, "v": i} for i in range(10)]
    payloads.append({"op": "ping"})
    # chunk smaller than the burst: writes and reads interleave.
    responses = client.pipeline(payloads, chunk=4)
    assert len(responses) == 11
    assert all(r["ok"] for r in responses)
    assert responses[-1]["pong"] is True
    assert responses[1]["distance"] == 1
    # The connection is still usable request-by-request afterwards.
    assert client.query(0, 15) == 6


def test_server_restarts_cleanly_after_stop():
    """start -> stop -> start on a fresh loop must work, including a
    graceful stop with a connection open on the second life."""
    oracle = DynamicHCL.build(grid_graph(4, 4), landmarks=[0, 15])
    server = OracleServer(OracleService(oracle), port=0)
    for _ in range(2):
        host, port = server.start_in_thread()
        with ServingClient(host, port) as client:
            assert client.ping()
            assert client.query(0, 15) == 6
            server.stop_thread()  # connection still open: drain path runs
    assert not server.service.running


def test_warm_start_from_saved_oracle(tmp_path):
    oracle = DynamicHCL.build(grid_graph(3, 3), landmarks=[4])
    oracle.insert_edge(0, 8)
    path = tmp_path / "oracle.json.gz"
    save_oracle(oracle, path)

    server = OracleServer.from_file(path, port=0, max_batch=16)
    host, port = server.start_in_thread()
    try:
        with ServingClient(host, port) as client:
            assert client.query(0, 8) == 1  # restored post-update state
            client.update("delete", 0, 8)
            client.snapshot()
            assert client.query(0, 8) == 4  # and keeps maintaining online
    finally:
        server.stop_thread()


def test_address_requires_started_server():
    server = OracleServer(
        OracleService(DynamicHCL.build(grid_graph(2, 2), landmarks=[0]))
    )
    with pytest.raises(ServingError):
        server.address


def test_double_thread_start_rejected(served):
    server, _ = served
    with pytest.raises(ServingError):
        server.start_in_thread()
