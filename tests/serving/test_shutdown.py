"""Graceful shutdown: in-flight requests drain, idle connections close.

Regression tests for the abrupt-close behaviour: stopping a server used
to cancel connection tasks outright, so a client awaiting a response
could see the socket die mid-request.  The contract now: a request that
reached the server before the stop gets its response; idle connections
get a clean EOF; stop completes promptly either way.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from time import perf_counter

from repro.core.dynamic import DynamicHCL
from repro.graph.generators import grid_graph
from repro.serving.client import ServingClient
from repro.serving.server import LineServer, OracleServer
from repro.serving.service import OracleService


class SlowEchoServer(LineServer):
    """Deterministically slow responder to pin a request in flight."""

    def __init__(self, delay: float = 0.4) -> None:
        super().__init__(port=0)
        self.delay = delay

    async def _respond(self, line: bytes) -> dict:
        await asyncio.sleep(self.delay)
        return {"ok": True, "echo": json.loads(line)}


def test_in_flight_request_drains_before_stop():
    server = SlowEchoServer(delay=0.4)
    host, port = server.start_in_thread()
    sock = socket.create_connection((host, port), timeout=5.0)
    handle = sock.makefile("rwb")
    try:
        handle.write(b'{"op": "ping"}\n')
        handle.flush()
        # Give the request time to reach the handler, then stop while the
        # response is still pending.
        stopper = threading.Timer(0.1, server.stop_thread)
        stopper.start()
        response = json.loads(handle.readline())
        assert response == {"ok": True, "echo": {"op": "ping"}}
        assert handle.readline() == b""  # then a clean EOF
        stopper.join()
    finally:
        handle.close()
        sock.close()
    assert not server._runner.running


def test_idle_connections_close_promptly_on_stop():
    server = SlowEchoServer(delay=0.05)
    host, port = server.start_in_thread()
    socks = [socket.create_connection((host, port), timeout=5.0) for _ in range(3)]
    try:
        start = perf_counter()
        server.stop_thread()
        elapsed = perf_counter() - start
        # Idle connections must not hold the stop for drain_timeout.
        assert elapsed < 5.0
        for sock in socks:
            assert sock.makefile("rb").readline() == b""  # clean EOF
    finally:
        for sock in socks:
            sock.close()


def test_oracle_server_graceful_stop_serves_last_response():
    oracle = DynamicHCL.build(grid_graph(4, 4), landmarks=[0, 15])
    server = OracleServer(OracleService(oracle), port=0)
    host, port = server.start_in_thread()
    client = ServingClient(host, port)
    try:
        client.update("insert", 0, 15)
        assert client.snapshot()["ok"]
        assert client.query(0, 15) == 1
    finally:
        server.stop_thread()
        # After the graceful stop the writer thread is down too.
        assert not server.service.running
        client.close()


def test_request_shutdown_ends_run_loop():
    """`run()` (the SIGTERM/SIGINT serving path) exits on request_shutdown
    and stops the service — exercised cross-thread, exactly how a signal
    handler fires it."""
    oracle = DynamicHCL.build(grid_graph(3, 3), landmarks=[4])
    server = OracleServer(OracleService(oracle), port=0)
    started = threading.Event()
    addresses: list[tuple[str, int]] = []

    def _serve() -> None:
        async def main() -> None:
            def on_started(srv: OracleServer) -> None:
                addresses.append(srv.address)
                started.set()

            # install_signals=False: signal handlers need the main thread;
            # request_shutdown is the same code path one level down.
            await server.run(install_signals=False, on_started=on_started)

        asyncio.run(main())

    thread = threading.Thread(target=_serve, daemon=True)
    thread.start()
    assert started.wait(10.0)
    with ServingClient(*addresses[0]) as client:
        assert client.ping()
    server.request_shutdown()
    thread.join(10.0)
    assert not thread.is_alive()
    assert not server.service.running


def test_install_signal_handlers_off_main_thread_is_a_noop():
    server = SlowEchoServer()

    results: list[bool] = []

    def _run() -> None:
        async def main() -> None:
            await server.start()
            results.append(server.install_signal_handlers())
            await server.stop()

        asyncio.run(main())

    thread = threading.Thread(target=_run)
    thread.start()
    thread.join(10.0)
    assert results == [False]  # refused quietly; request_shutdown still works


def test_stop_is_idempotent():
    server = SlowEchoServer()
    server.start_in_thread()
    server.stop_thread()
    server.stop_thread()  # second stop: no-op, no error
