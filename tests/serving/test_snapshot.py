"""Snapshot isolation: frozen views never observe later writer activity.

The copy-on-write contract under test (docs/DESIGN.md §7): capturing a
snapshot is a pointer-level copy, every class of subsequent mutation
(IncHL+ insert, batch insert, DecHL partial delete, coarse rebuild
delete, vertex ops, landmark resizing) copies shared rows before touching
them, and a pinned snapshot keeps answering *exactly* as a deep copy of
the oracle at capture time would.
"""

from __future__ import annotations

import pytest

from repro.core.dynamic import DynamicHCL
from repro.graph.generators import grid_graph
from repro.serving.snapshot import OracleSnapshot
from tests.conftest import all_pairs_distances, random_connected_graph

INF = float("inf")


def _build(seed: int = 1, num_landmarks: int = 3) -> DynamicHCL:
    graph = random_connected_graph(seed)
    k = min(num_landmarks, graph.num_vertices)
    return DynamicHCL.build(graph, num_landmarks=k)


def _assert_matches_reference(snap, reference_graph) -> None:
    """Every pair on the snapshot must equal BFS on the reference graph."""
    table = all_pairs_distances(reference_graph)
    for u in reference_graph.vertices():
        for v in reference_graph.vertices():
            assert snap.query(u, v) == table[u].get(v, INF), (u, v)


def test_snapshot_answers_equal_live_oracle():
    oracle = _build(seed=7)
    snap = oracle.snapshot()
    _assert_matches_reference(snap, oracle.graph)


def test_snapshot_epoch_tracks_version():
    oracle = _build(seed=8)
    assert oracle.version == 0
    snap0 = oracle.snapshot()
    assert snap0.epoch == 0
    edges = _non_edges(oracle.graph)
    oracle.insert_edge(*edges[0])
    assert oracle.version == 1
    assert oracle.snapshot().epoch == 1
    assert snap0.epoch == 0  # pinned


def test_snapshot_is_cached_between_updates():
    oracle = _build(seed=9)
    assert oracle.snapshot() is oracle.snapshot()
    oracle.insert_edge(*_non_edges(oracle.graph)[0])
    assert oracle.snapshot() is not None
    assert oracle.snapshot() is oracle.snapshot()


@pytest.mark.parametrize("seed", [3, 11, 29])
def test_snapshot_pinned_across_single_insertions(seed):
    oracle = _build(seed=seed)
    frozen_copy = oracle.graph.copy()  # reference for the pinned epoch
    snap = oracle.snapshot()
    for u, v in _non_edges(oracle.graph)[:4]:
        oracle.insert_edge(u, v)
    _assert_matches_reference(snap, frozen_copy)
    _assert_matches_reference(oracle.snapshot(), oracle.graph)


def test_snapshot_pinned_across_batch_insert():
    oracle = _build(seed=13)
    frozen_copy = oracle.graph.copy()
    snap = oracle.snapshot()
    oracle.insert_edges_batch(_non_edges(oracle.graph)[:5])
    _assert_matches_reference(snap, frozen_copy)
    _assert_matches_reference(oracle.snapshot(), oracle.graph)


@pytest.mark.parametrize("strategy", ["partial", "rebuild"])
def test_snapshot_pinned_across_deletion(strategy):
    oracle = _build(seed=17)
    frozen_copy = oracle.graph.copy()
    snap = oracle.snapshot()
    u, v = next(iter(oracle.graph.edges()))
    oracle.remove_edge(u, v, strategy=strategy)
    _assert_matches_reference(snap, frozen_copy)
    _assert_matches_reference(oracle.snapshot(), oracle.graph)


def test_snapshot_pinned_across_vertex_insertion():
    oracle = _build(seed=19)
    frozen_copy = oracle.graph.copy()
    snap = oracle.snapshot()
    fresh = oracle.graph.max_vertex_id() + 1
    oracle.insert_vertex(fresh, list(oracle.graph.vertices())[:2])
    assert not snap.graph.has_vertex(fresh)
    _assert_matches_reference(snap, frozen_copy)
    assert oracle.snapshot().query(fresh, next(iter(frozen_copy.vertices()))) < INF


def test_snapshot_pinned_across_landmark_resizing():
    oracle = _build(seed=23, num_landmarks=2)
    frozen_copy = oracle.graph.copy()
    snap = oracle.snapshot()
    landmarks_before = list(snap.labelling.landmarks)
    promoted = next(
        v for v in oracle.graph.vertices() if v not in oracle.labelling.landmark_set
    )
    oracle.add_landmark(promoted)
    oracle.remove_landmark(oracle.landmarks[0])
    assert snap.labelling.landmarks == landmarks_before
    _assert_matches_reference(snap, frozen_copy)
    _assert_matches_reference(oracle.snapshot(), oracle.graph)


def test_chained_snapshots_each_pin_their_epoch():
    oracle = _build(seed=31)
    references = [(oracle.snapshot(), oracle.graph.copy())]
    for u, v in _non_edges(oracle.graph)[:3]:
        oracle.insert_edge(u, v)
        references.append((oracle.snapshot(), oracle.graph.copy()))
    # Oldest to newest: every snapshot still answers for its own epoch.
    for snap, reference in references:
        _assert_matches_reference(snap, reference)
    epochs = [snap.epoch for snap, _ in references]
    assert epochs == sorted(set(epochs))


def test_snapshot_metadata_and_capture():
    oracle = DynamicHCL.build(grid_graph(3, 3), landmarks=[0, 8])
    snap = OracleSnapshot.capture(oracle)
    assert snap.num_vertices == 9
    assert snap.num_edges == oracle.graph.num_edges
    assert snap.label_entries == oracle.label_entries
    assert snap.labelling.landmark_set == frozenset([0, 8])
    assert sorted(snap.graph.vertices()) == sorted(oracle.graph.vertices())
    assert sorted(snap.graph.edges()) == sorted(oracle.graph.edges())


def test_snapshot_query_many_and_path_are_pinned():
    oracle = DynamicHCL.build(grid_graph(3, 3), landmarks=[4])
    snap = oracle.snapshot()
    oracle.insert_edge(0, 8)
    assert snap.query_many([(0, 8), (0, 4), (8, 8)]) == [4, 2, 0]
    path = snap.shortest_path(0, 8)
    assert len(path) - 1 == 4
    assert oracle.snapshot().shortest_path(0, 8) == [0, 8]


def _non_edges(graph) -> list[tuple[int, int]]:
    from tests.conftest import non_edges

    return non_edges(graph)
