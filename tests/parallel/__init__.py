"""Tests for the parallel per-landmark execution engine."""
