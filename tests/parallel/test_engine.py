"""Unit tests for :mod:`repro.parallel.engine` — fan-out mechanics only.

Labelling-level equivalence lives in ``test_equivalence.py``; these tests
pin down the engine contract itself: worker resolution, result ordering,
serial fallback, exception propagation, and that parallel mode really does
leave the calling process.
"""

import os

import pytest

from repro.parallel.engine import (
    LandmarkEngine,
    _scale_task,
    available_parallelism,
    fork_available,
    resolve_workers,
)
from repro.parallel.sweeps import LandmarkSweep, landmark_sweep, merge_sweep


class TestResolveWorkers:
    def test_none_means_serial(self):
        assert resolve_workers(None) == 1

    def test_zero_means_all_cpus(self):
        assert resolve_workers(0) == available_parallelism()
        assert resolve_workers(0) >= 1

    def test_explicit_counts(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(4) == 4

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-2)


def _pid_task(state, item):
    return os.getpid()


def _raise_task(state, item):
    raise RuntimeError(f"boom on {item}")


class TestMap:
    def test_serial_accepts_any_callable(self):
        engine = LandmarkEngine(workers=None)
        assert not engine.is_parallel
        assert engine.map(lambda s, i: s + i, 100, [1, 2, 3]) == [101, 102, 103]

    def test_serial_preserves_order(self):
        engine = LandmarkEngine(workers=1)
        assert engine.map(_scale_task, 2, range(10)) == [2 * i for i in range(10)]

    def test_parallel_preserves_order(self):
        engine = LandmarkEngine(workers=2)
        assert engine.map(_scale_task, 3, range(20)) == [3 * i for i in range(20)]

    def test_empty_items(self):
        assert LandmarkEngine(workers=4).map(_scale_task, 1, []) == []

    def test_more_workers_than_items(self):
        assert LandmarkEngine(workers=8).map(_scale_task, 5, [7]) == [35]

    @pytest.mark.skipif(not fork_available(), reason="needs fork start method")
    def test_parallel_runs_outside_calling_process(self):
        engine = LandmarkEngine(workers=2)
        assert engine.is_parallel
        pids = engine.map(_pid_task, None, range(4))
        assert all(pid != os.getpid() for pid in pids)

    def test_serial_exception_propagates(self):
        with pytest.raises(RuntimeError, match="boom on 1"):
            LandmarkEngine(workers=1).map(_raise_task, None, [1])

    def test_parallel_exception_propagates(self):
        with pytest.raises(RuntimeError, match="boom"):
            LandmarkEngine(workers=2).map(_raise_task, None, [1, 2, 3])

    def test_merge_runs_in_item_order(self):
        merged = []
        count = LandmarkEngine(workers=2).map_unordered_merge(
            _scale_task, 10, [3, 1, 2], merged.append
        )
        assert count == 3
        assert merged == [30, 10, 20]


class TestSweepKernel:
    def test_path_graph_sweep(self):
        adj = {0: [1], 1: [0, 2], 2: [1, 3], 3: [2]}
        sweep = landmark_sweep(adj, 0, frozenset({0, 3}))
        assert sweep.root == 0
        assert sweep.highway_cells == [(3, 3)]
        assert sweep.levels == [(1, [1]), (2, [2])]
        assert sweep.num_entries == 2

    def test_covered_vertex_emits_no_entry(self):
        # 0 - 1 - 2 with landmarks {0, 1}: every shortest 0-path to 2 runs
        # through landmark 1, so 2 gets no 0-entry.
        adj = {0: [1], 1: [0, 2], 2: [1]}
        sweep = landmark_sweep(adj, 0, frozenset({0, 1}))
        assert sweep.highway_cells == [(1, 1)]
        assert sweep.levels == []

    def test_sweep_is_picklable(self):
        import pickle

        sweep = LandmarkSweep(5, [(1, 2)], [(1, [4, 6])])
        assert pickle.loads(pickle.dumps(sweep)) == sweep

    def test_merge_sweep_applies_cells_and_entries(self):
        from repro.core.highway import Highway
        from repro.core.labels import LabelStore

        highway = Highway([0, 3])
        labels = LabelStore()
        merge_sweep(highway, labels, LandmarkSweep(0, [(3, 3)], [(1, [1]), (2, [2])]))
        assert highway.distance(0, 3) == 3
        assert labels.label(1) == {0: 1}
        assert labels.label(2) == {0: 2}
        assert labels.total_entries == 2
