"""Parallel/serial equivalence — the engine's correctness contract.

For every operation the engine accelerates (construction on both kernels,
batch insertion, decremental rebuild) and ``workers in {1, 2, 4}``:

* the labelling must be **byte-identical** to the serial canonical minimal
  labelling (compared through the canonical serialization, which is
  sensitive to entry *order*, not just content);
* queries against it must match brute-force BFS ground truth exactly.

Graph coverage follows the issue spec: structured grids plus seeded random
connected graphs.
"""

import pytest

from repro.core.batch import apply_edge_insertions_batch
from repro.core.construction import build_hcl
from repro.core.construction_fast import build_hcl_fast
from repro.core.decremental import apply_edge_deletion
from repro.core.query import query_distance
from repro.core.validation import check_matches_rebuild, check_query_exactness
from repro.graph.generators import grid_graph
from repro.landmarks.selection import top_degree_landmarks
from repro.utils.serialization import save_labelling

from tests.conftest import all_pairs_distances, non_edges, random_connected_graph

WORKER_COUNTS = (1, 2, 4)

INF = float("inf")


def canonical_bytes(labelling, tmp_path, tag):
    """Serialize through the canonical on-disk format and return the bytes."""
    path = tmp_path / f"{tag}.json"
    save_labelling(labelling, path)
    return path.read_bytes()


def assert_ground_truth(graph, labelling):
    """Every pairwise query must equal brute-force BFS distance."""
    truth = all_pairs_distances(graph)
    vertices = sorted(graph.vertices())
    for u in vertices:
        for v in vertices:
            expected = truth[u].get(v, INF)
            assert query_distance(graph, labelling, u, v) == expected, (u, v)


class TestConstructionEquivalence:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_grid_python_byte_identical(self, workers, tmp_path):
        graph = grid_graph(5, 5)
        landmarks = [0, 12, 24]
        serial = build_hcl(graph, landmarks)
        parallel = build_hcl(graph, landmarks, workers=workers)
        assert parallel == serial
        assert canonical_bytes(parallel, tmp_path, "par") == canonical_bytes(
            serial, tmp_path, "ser"
        )

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("seed", [3, 11])
    def test_random_python_byte_identical(self, workers, seed, tmp_path):
        graph = random_connected_graph(seed)
        landmarks = top_degree_landmarks(graph, 4)
        serial = build_hcl(graph, landmarks)
        parallel = build_hcl(graph, landmarks, workers=workers)
        assert parallel == serial
        assert canonical_bytes(parallel, tmp_path, "par") == canonical_bytes(
            serial, tmp_path, "ser"
        )
        assert_ground_truth(graph, parallel)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_grid_csr_matches_reference(self, workers):
        graph = grid_graph(4, 6)
        landmarks = [0, 23, 10]
        reference = build_hcl(graph, landmarks)
        parallel = build_hcl_fast(graph, landmarks, workers=workers)
        assert parallel == reference
        assert_ground_truth(graph, parallel)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_random_csr_matches_reference(self, workers, tmp_path):
        graph = random_connected_graph(29)
        landmarks = top_degree_landmarks(graph, 3)
        serial = build_hcl_fast(graph, landmarks)
        parallel = build_hcl_fast(graph, landmarks, workers=workers)
        assert parallel == serial
        assert canonical_bytes(parallel, tmp_path, "par") == canonical_bytes(
            serial, tmp_path, "ser"
        )

    def test_workers_zero_resolves_to_all_cpus(self):
        graph = grid_graph(3, 3)
        assert build_hcl(graph, [0, 8], workers=0) == build_hcl(graph, [0, 8])


class TestBatchInsertionEquivalence:
    def run_batch(self, graph, landmarks, batch, workers):
        g = graph.copy()
        labelling = build_hcl(g, landmarks)
        for u, v in batch:
            g.add_edge(u, v)
        apply_edge_insertions_batch(g, labelling, batch, workers=workers)
        return g, labelling

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_grid_batch(self, workers, tmp_path):
        graph = grid_graph(4, 5)
        landmarks = [0, 19]
        batch = [(u, v) for u, v in non_edges(graph) if u + v > 15][:3]
        _, serial = self.run_batch(graph, landmarks, batch, workers=None)
        g, parallel = self.run_batch(graph, landmarks, batch, workers=workers)
        assert parallel == serial
        assert canonical_bytes(parallel, tmp_path, "par") == canonical_bytes(
            serial, tmp_path, "ser"
        )
        assert_ground_truth(g, parallel)
        check_matches_rebuild(g, parallel)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("seed", [5, 17])
    def test_random_batch(self, workers, seed, tmp_path):
        graph = random_connected_graph(seed)
        candidates = non_edges(graph)
        if not candidates:
            pytest.skip("random graph is complete")
        batch = candidates[: min(4, len(candidates))]
        landmarks = top_degree_landmarks(graph, 3)
        _, serial = self.run_batch(graph, landmarks, batch, workers=None)
        g, parallel = self.run_batch(graph, landmarks, batch, workers=workers)
        assert parallel == serial
        assert canonical_bytes(parallel, tmp_path, "par") == canonical_bytes(
            serial, tmp_path, "ser"
        )
        assert_ground_truth(g, parallel)


class TestDecrementalEquivalence:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_delete_matches_serial_and_ground_truth(self, workers, tmp_path):
        graph = grid_graph(4, 4)
        landmarks = [0, 15]
        # Insert a shortcut then delete it again, both via the oracle paths.
        g_serial = graph.copy()
        serial = build_hcl(g_serial, landmarks)
        g_serial.add_edge(0, 15)
        apply_edge_insertions_batch(g_serial, serial, [(0, 15)])
        g_parallel = g_serial.copy()
        parallel = serial.copy()

        relevant_serial = apply_edge_deletion(g_serial, serial, 0, 15)
        relevant_parallel = apply_edge_deletion(
            g_parallel, parallel, 0, 15, workers=workers
        )
        assert relevant_parallel == relevant_serial
        assert parallel == serial
        assert canonical_bytes(parallel, tmp_path, "par") == canonical_bytes(
            serial, tmp_path, "ser"
        )
        assert_ground_truth(g_parallel, parallel)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_random_delete(self, workers):
        graph = random_connected_graph(23)
        landmarks = top_degree_landmarks(graph, 3)
        edge = non_edges(graph)[0]
        g = graph.copy()
        labelling = build_hcl(g, landmarks)
        g.add_edge(*edge)
        apply_edge_insertions_batch(g, labelling, [edge])
        apply_edge_deletion(g, labelling, *edge, workers=workers)
        check_matches_rebuild(g, labelling)
        assert_ground_truth(g, labelling)


class TestOracleWorkersKnob:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_facade_routes_workers(self, workers):
        from repro.core.dynamic import DynamicHCL

        graph = grid_graph(4, 4)
        oracle = DynamicHCL.build(
            graph.copy(), landmarks=[0, 15], workers=workers
        )
        reference = DynamicHCL.build(graph.copy(), landmarks=[0, 15])
        assert oracle.labelling == reference.labelling
        assert oracle.workers == workers

        oracle.insert_edges_batch([(0, 15), (3, 12)])
        reference.insert_edges_batch([(0, 15), (3, 12)])
        assert oracle.labelling == reference.labelling

        oracle.remove_edge(0, 15, strategy="rebuild")
        reference.remove_edge(0, 15, strategy="rebuild")
        assert oracle.labelling == reference.labelling
        check_query_exactness(oracle.graph, oracle.labelling, num_pairs=40)
