"""Shared cluster-test helpers: in-process replica fleets.

Most cluster tests run the real :class:`ReplicaServer` /
:class:`ClusterRouter` stack over real sockets but keep every component
in-process (threaded event loops) — exercising the exact protocol and
fan-out code without paying a ``multiprocessing`` spawn per test.  Only
``test_supervisor.py`` spawns real replica processes.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterRouter, ReplicaServer, UpdateLog
from repro.core.dynamic import DynamicHCL
from repro.serving.service import OracleService


def make_replica(oracle: DynamicHCL, name: str, applied_seq: int = 0) -> ReplicaServer:
    """An in-process replica serving a *copy* of ``oracle`` (replicas must
    never share state)."""
    copy = DynamicHCL(oracle.graph.copy(), oracle.labelling.copy())
    server = ReplicaServer(
        OracleService(copy), name=name, port=0, applied_seq=applied_seq
    )
    server.start_in_thread()
    return server


class InProcessCluster:
    """A router plus N in-process replicas, all on real sockets."""

    def __init__(self, oracle: DynamicHCL, replicas: int = 2, log: UpdateLog | None = None):
        self.replicas = [make_replica(oracle, f"r{i}") for i in range(replicas)]
        self.log = log if log is not None else UpdateLog()
        self.router = ClusterRouter(self.log, port=0, read_timeout=2.0)
        self.address = self.router.start_in_thread()
        for server in self.replicas:
            self.router.add_replica_from_thread(server.name, *server.address)

    def close(self) -> None:
        self.router.stop_thread()
        for server in self.replicas:
            server.stop_thread()


@pytest.fixture
def small_oracle():
    from repro.graph.generators import grid_graph

    return DynamicHCL.build(grid_graph(4, 4), landmarks=[0, 15])
