"""Cluster semantics for delete events and mixed insert/delete batches.

The fully-dynamic engine lifted the serving layer's insert-only batch
restriction, so the cluster path — WAL records, router fan-out, replica
apply, checkpoint + compaction — must now carry deletions with the same
byte-identical convergence contract:

* WAL round-trips delete and churn (delete → re-insert) record runs;
* a replica that crashes mid-mixed-batch and restarts from checkpoint +
  WAL replay ends byte-identical to the sequential one-at-a-time replay;
* compaction may checkpoint *between* a delete and its re-insert: the
  checkpointed state lacks the edge, the replayed suffix restores it.
"""

from __future__ import annotations

import random

from repro.cluster import (
    ClusterRouter,
    ReplicaSpec,
    UpdateLog,
    build_replica,
    scan_wal,
    write_checkpoint,
)
from repro.core.dynamic import DynamicHCL
from repro.graph.generators import ring_of_cliques
from repro.serving.client import ServingClient
from repro.utils.serialization import save_labelling
from repro.workloads.streams import UpdateEvent

from tests.cluster.conftest import make_replica


def labelling_bytes(labelling, tmp_path, name: str) -> bytes:
    path = tmp_path / f"{name}.labels.json"
    save_labelling(labelling, path)
    return path.read_bytes()


def sequential_replay(graph, landmarks, events) -> DynamicHCL:
    oracle = DynamicHCL.build(graph.copy(), landmarks=list(landmarks))
    for event in events:
        u, v = event.edge
        if event.is_insert:
            oracle.insert_edge(u, v)
        else:
            oracle.remove_edge(u, v)
    return oracle


def churn_events(graph, count: int, seed: int) -> list[UpdateEvent]:
    """Delete-heavy event stream with explicit delete → re-insert pairs,
    sequentially valid against the evolving graph."""
    rng = random.Random(seed)
    sim = graph.copy()
    vertices = sorted(sim.vertices())
    events: list[UpdateEvent] = []
    removed: list[tuple[int, int]] = []
    while len(events) < count:
        roll = rng.random()
        if roll < 0.25 and removed:
            u, v = removed.pop(rng.randrange(len(removed)))
            if sim.has_edge(u, v):
                continue
            sim.add_edge(u, v)
            events.append(UpdateEvent("insert", (u, v)))
        elif roll < 0.6 and sim.num_edges > sim.num_vertices // 2:
            u, v = rng.choice(sorted(sim.edges()))
            sim.remove_edge(u, v)
            removed.append((u, v))
            events.append(UpdateEvent("delete", (u, v)))
        else:
            u, v = rng.sample(vertices, 2)
            if sim.has_edge(u, v):
                continue
            sim.add_edge(u, v)
            events.append(UpdateEvent("insert", (u, v)))
    return events


def test_wal_roundtrips_mixed_churn_records(tmp_path):
    """Delete and re-insert records survive the disk round-trip in order,
    across segment rotations."""
    graph = ring_of_cliques(4, 4)
    events = churn_events(graph, 20, seed=3)
    wal = tmp_path / "wal"
    log = UpdateLog(wal, segment_records=6)
    log.append_events([(e.kind, *e.edge) for e in events])
    log.close()
    records = scan_wal(wal)
    assert [r.seq for r in records] == list(range(1, len(events) + 1))
    assert [(r.event.kind, r.event.edge) for r in records] == [
        (e.kind, e.edge) for e in events
    ]
    # The stream really exercised churn: some edge was deleted and later
    # re-inserted at a higher seq.
    deleted_at = {}
    churned = 0
    for i, e in enumerate(events):
        key = tuple(sorted(e.edge))
        if not e.is_insert:
            deleted_at[key] = i
        elif key in deleted_at:
            churned += 1
    assert churned > 0


def test_replica_applies_mixed_batch_as_one_coalesced_run(small_oracle):
    """Fan-out of a batch with deletes mid-run must coalesce on the
    replica (one mixed apply, no per-event slow path) and still land on
    the sequential labelling."""
    server = make_replica(small_oracle, "r0")
    router = ClusterRouter(UpdateLog(), port=0)
    host, port = router.start_in_thread()
    events = [
        ("insert", 0, 15),
        ("delete", 5, 6),
        ("insert", 1, 14),
        ("delete", 1, 14),   # churn: delete the run's own insert
        ("insert", 2, 13),
    ]
    try:
        router.add_replica_from_thread("r0", *server.address)
        with ServingClient(host, port) as client:
            client.updates(events)
            assert client.snapshot()["ok"]
    finally:
        router.stop_thread()
        server.stop_thread()
    reference = sequential_replay(
        small_oracle.graph, small_oracle.landmarks,
        [UpdateEvent(k, (u, v)) for k, u, v in events],
    )
    assert server.service.oracle.labelling == reference.labelling
    assert server.service.metrics.mixed_batches >= 1


def test_crash_mid_mixed_batch_then_restart_converges(tmp_path):
    """The crash/restart contract under a delete-heavy churn stream: the
    restarted replica replays delete and re-insert records from the WAL
    and ends byte-identical to the sequential replay."""
    graph = ring_of_cliques(6, 5)
    landmarks = [0, 5, 10]
    events = churn_events(graph, 36, seed=17)
    oracle = DynamicHCL.build(graph.copy(), landmarks=landmarks)
    checkpoint = tmp_path / "checkpoint.json.gz"
    write_checkpoint(oracle, checkpoint, log_seq=0)

    wal_dir = tmp_path / "wal"
    log = UpdateLog(wal_dir)
    survivor = make_replica(oracle, "steady")
    victim = make_replica(oracle, "crashy")
    router = ClusterRouter(log, port=0)
    host, port = router.start_in_thread()
    restarted = None
    try:
        router.add_replica_from_thread("steady", *survivor.address)
        router.add_replica_from_thread("crashy", *victim.address)
        half = len(events) // 2
        with ServingClient(host, port) as client:
            # Bursts sized so every chunk mixes inserts and deletes.
            for base in range(0, half, 6):
                chunk = events[base : base + 6]
                client.updates([(e.kind, *e.edge) for e in chunk])
            assert client.snapshot()["ok"]
            victim.stop_thread()  # crash mid-stream, state discarded
            for base in range(half, len(events), 6):
                chunk = events[base : base + 6]
                client.updates([(e.kind, *e.edge) for e in chunk])
            restarted = build_replica(
                ReplicaSpec(name="crashy", checkpoint_path=str(checkpoint),
                            wal_dir=str(wal_dir))
            )
            restarted.start_in_thread()
            router.set_replica_address_from_thread("crashy", *restarted.address)
            drained = client.snapshot()
            assert drained["ok"]
            assert drained["replicas"]["crashy"] == len(events)
    finally:
        router.stop_thread()
        survivor.stop_thread()
        if restarted is not None:
            restarted.stop_thread()

    reference = sequential_replay(graph, landmarks, events)
    expected = labelling_bytes(reference.labelling, tmp_path, "sequential")
    assert labelling_bytes(
        restarted.service.oracle.labelling, tmp_path, "restarted"
    ) == expected
    assert labelling_bytes(
        survivor.service.oracle.labelling, tmp_path, "survivor"
    ) == expected


def test_compaction_checkpoint_between_delete_and_reinsert(tmp_path):
    """Compaction may land a checkpoint in the window where an edge is
    deleted but not yet re-inserted: the checkpointed oracle must lack
    the edge, the WAL suffix must restore it, and the rebooted replica
    must match the sequential replay byte for byte."""
    graph = ring_of_cliques(4, 4)
    landmarks = [0, 4]
    edge = sorted(graph.edges())[0]
    u, v = edge
    events = [
        UpdateEvent("insert", (0, 8)),
        UpdateEvent("delete", (u, v)),      # seq 2: edge leaves
        UpdateEvent("insert", (1, 9)),      # seq 3 <-- checkpoint here
        UpdateEvent("insert", (u, v)),      # seq 4: edge returns
        UpdateEvent("delete", (0, 8)),
    ]
    wal_dir = tmp_path / "wal"
    log = UpdateLog(wal_dir, segment_records=1)  # one record per segment
    log.append_events([(e.kind, *e.edge) for e in events])

    # State at seq 3, produced through the replica apply path.
    mid = DynamicHCL.build(graph.copy(), landmarks=landmarks)
    from repro.serving.service import OracleService

    with OracleService(mid) as service:
        service.submit_many(events[:3])
        service.flush()
    assert not mid.graph.has_edge(u, v)  # inside the delete/re-insert window
    checkpoint = tmp_path / "mid.json.gz"
    write_checkpoint(mid, checkpoint, log_seq=3)
    dropped = log.compact(3)
    assert dropped == 3  # the delete record itself is compacted away
    log.close()

    replica = build_replica(
        ReplicaSpec(name="r", checkpoint_path=str(checkpoint),
                    wal_dir=str(wal_dir))
    )
    replica.service.stop()
    assert replica.applied_seq == len(events)
    assert replica.service.oracle.graph.has_edge(u, v)  # re-insert replayed
    assert not replica.service.oracle.graph.has_edge(0, 8)

    reference = sequential_replay(graph, landmarks, events)
    assert labelling_bytes(
        replica.service.oracle.labelling, tmp_path, "replica"
    ) == labelling_bytes(reference.labelling, tmp_path, "sequential")
