"""Router-side continuous observability: WAL growth rate in
``UpdateLog.stats()`` and its gauge, plus the ``history``/``alerts``/
``profile`` ops served by the router."""

from __future__ import annotations

import time

import pytest

from repro.cluster import ClusterRouter, UpdateLog
from repro.obs.slo import SLO
from repro.serving.client import ServingClient

from tests.cluster.conftest import make_replica


class TestWalGrowthRate:
    def test_first_read_has_no_rate(self):
        log = UpdateLog()
        assert log.stats()["wal_growth_bytes_per_s"] is None

    def test_rate_reflects_appended_bytes(self, tmp_path):
        log = UpdateLog(tmp_path / "wal")
        log.stats()  # arm the size sample
        log.append("insert", 0, 1)
        time.sleep(0.06)  # past the minimum sampling interval
        rate = log.stats()["wal_growth_bytes_per_s"]
        assert rate is not None and rate > 0

    def test_back_to_back_reads_keep_the_last_rate(self, tmp_path):
        log = UpdateLog(tmp_path / "wal")
        log.stats()
        log.append("insert", 0, 1)
        time.sleep(0.06)
        first = log.stats()["wal_growth_bytes_per_s"]
        # A read inside the minimum interval reuses the last measurement
        # instead of dividing by a near-zero elapsed time.
        second = log.stats()["wal_growth_bytes_per_s"]
        assert second == first

    def test_compaction_yields_negative_growth(self, tmp_path):
        log = UpdateLog(tmp_path / "wal", segment_records=4)
        for i in range(40):
            log.append("insert", i, i + 1)
        log.stats()  # arm the size sample at the bloated size
        time.sleep(0.06)
        log.compact(log.head)
        rate = log.stats()["wal_growth_bytes_per_s"]
        assert rate is not None and rate < 0


@pytest.fixture
def routed(small_oracle, tmp_path):
    replica = make_replica(small_oracle, "r0")
    history = tmp_path / "router-history.ndjson"
    slos = [
        SLO(
            name="lag-zero",
            metric="max_lag",
            objective=-1.0,  # max_lag > -1: every sample violates
            budget=0.5,
            windows=((3600.0, 1.0),),
        )
    ]
    router = ClusterRouter(
        UpdateLog(),
        port=0,
        read_timeout=2.0,
        history_path=str(history),
        history_interval=3600.0,
        slos=slos,
    )
    address = router.start_in_thread()
    router.add_replica_from_thread(replica.name, *replica.address)
    client = ServingClient(*address)
    yield router, client, history
    client.close()
    router.stop_thread()
    replica.stop_thread()


class TestRouterOps:
    def test_history_op_serves_router_points(self, routed):
        router, client, history_file = routed
        client.update("insert", 0, 15)
        client.snapshot()
        router.history.record_once()
        response = client.history()
        assert response["recording"] is True
        assert response["path"] == str(history_file)
        (point,) = response["points"]
        assert point["log_head"] == 1
        assert point["healthy_replicas"] == 1
        assert point["max_lag"] == 0
        assert "wal_growth_bytes_per_s" in point
        assert point["rss_kb"] > 0

    def test_alerts_op_and_breach_gauge(self, routed):
        router, client, _ = routed
        router.history.record_once()
        response = client.alerts()
        (evaluation,) = response["evaluations"]
        assert evaluation["slo"] == "lag-zero"
        assert evaluation["firing"] is True
        text = client.metrics()
        assert 'repro_slo_breach{slo="lag-zero"} 1' in text

    def test_wal_growth_gauge_appears_after_growth(self, routed):
        router, client, _ = routed
        client.metrics()  # first collect arms the size sample
        client.update("insert", 0, 15)
        client.snapshot()
        time.sleep(0.06)
        text = client.metrics()
        assert "repro_wal_growth_bytes_per_s" in text

    def test_profile_op_round_trips(self, routed):
        from repro.obs.profile import reset_profiler

        _, client, _ = routed
        reset_profiler()
        try:
            assert client.profile(action="start")["profile"]["running"] is True
            client.query(0, 15)
            assert client.profile(action="stop")["profile"]["running"] is False
        finally:
            reset_profiler()
