"""ReplicaServer: apply semantics, epoch gating, checkpoint op."""

from __future__ import annotations

import pytest

from repro.cluster import ReplicaSpec, build_replica
from repro.cluster.wal import UpdateLog, write_checkpoint
from repro.core.dynamic import DynamicHCL
from repro.graph.generators import grid_graph
from repro.serving.client import ServingClient

from tests.cluster.conftest import make_replica


@pytest.fixture
def replica(small_oracle):
    server = make_replica(small_oracle, "r0")
    client = ServingClient(*server.address)
    yield server, client
    client.close()
    server.stop_thread()


def _apply(client, events):
    return client.request({"op": "apply", "events": events})


def test_apply_advances_epoch_and_serves(replica):
    server, client = replica
    assert client.query(0, 15) == 6
    response = _apply(client, [[1, "insert", 0, 15], [2, "insert", 1, 14]])
    assert response == {"ok": True, "applied_seq": 2, "epoch": 2}
    assert server.applied_seq == 2
    # The ack means applied AND published: the very next read sees it.
    assert client.query(0, 15) == 1
    raw = client.request({"op": "query", "u": 0, "v": 15})
    assert raw["epoch"] == 2  # cluster epoch (log seq), not oracle version


def test_apply_is_idempotent_on_redelivery(replica):
    server, client = replica
    _apply(client, [[1, "insert", 0, 15]])
    response = _apply(client, [[1, "insert", 0, 15], [2, "insert", 1, 14]])
    assert response["ok"] and response["applied_seq"] == 2
    stats = client.stats()
    # Seq 1 was skipped before validation: applied exactly once.
    assert stats["events_applied"] == 2
    assert stats["events_rejected"] == 0
    assert stats["replica"]["name"] == "r0"
    assert stats["replica"]["applied_seq"] == 2
    # Peak RSS rides along so the router can report per-shard memory.
    assert stats["replica"]["rss_kb"] > 0


def test_apply_refuses_log_gap(replica):
    server, client = replica
    response = _apply(client, [[5, "insert", 0, 15]])
    assert not response["ok"]
    assert "gap" in response["error"]
    assert server.applied_seq == 0
    # Nothing was applied.
    assert client.query(0, 15) == 6


def test_min_epoch_gating(replica):
    server, client = replica
    _apply(client, [[1, "insert", 0, 15]])
    assert client.query(0, 15, min_epoch=1) == 1
    behind = client.request({"op": "query", "u": 0, "v": 15, "min_epoch": 2})
    assert not behind["ok"]
    assert behind["retryable"] and behind["epoch"] == 1
    assert "min_epoch" in behind["error"]
    many = client.request(
        {"op": "query_many", "pairs": [[0, 15]], "min_epoch": 2}
    )
    assert not many["ok"]


def test_checkpoint_op_persists_applied_state(replica, tmp_path):
    server, client = replica
    _apply(client, [[1, "insert", 0, 15]])
    path = tmp_path / "ck.json.gz"
    response = client.request({"op": "checkpoint", "path": str(path)})
    assert response["ok"] and response["log_seq"] == 1
    spec = ReplicaSpec(name="fresh", checkpoint_path=str(path))
    fresh = build_replica(spec)
    assert fresh.applied_seq == 1
    assert fresh.service.oracle.query(0, 15) == 1
    assert fresh.service.oracle.labelling == server.service.oracle.labelling


def test_direct_writes_are_refused(replica):
    """An out-of-log write would silently fork the replica from the
    cluster — `update`/`updates` must be refused on replica ports."""
    server, client = replica
    for payload in (
        {"op": "update", "kind": "insert", "u": 0, "v": 15},
        {"op": "updates", "events": [["insert", 0, 15]]},
    ):
        response = client.request(payload)
        assert not response["ok"]
        assert "apply" in response["error"]
    assert server.applied_seq == 0
    assert client.query(0, 15) == 6  # nothing was applied
    assert client.stats()["events_applied"] == 0


def test_checkpoint_without_path_is_an_error(replica):
    _, client = replica
    response = client.request({"op": "checkpoint"})
    assert not response["ok"]


def test_build_replica_replays_wal_suffix(tmp_path):
    oracle = DynamicHCL.build(grid_graph(4, 4), landmarks=[0, 15])
    checkpoint = tmp_path / "ck.json.gz"
    write_checkpoint(oracle, checkpoint, log_seq=0)
    wal = tmp_path / "wal"
    log = UpdateLog(wal)
    log.append_events([("insert", 0, 15), ("insert", 1, 14), ("delete", 0, 15)])
    log.close()
    server = build_replica(
        ReplicaSpec(name="r0", checkpoint_path=str(checkpoint), wal_dir=str(wal))
    )
    try:
        assert server.applied_seq == 3
        # (0,15) was inserted then deleted; the (1,14) shortcut remains.
        assert server.service.oracle.query(1, 14) == 1
        assert server.service.oracle.query(0, 15) == 3
        reference = DynamicHCL.build(grid_graph(4, 4), landmarks=[0, 15])
        reference.insert_edge(0, 15)
        reference.insert_edge(1, 14)
        reference.remove_edge(0, 15)
        assert server.service.oracle.labelling == reference.labelling
    finally:
        server.service.stop()


def test_build_replica_refuses_stale_checkpoint(tmp_path):
    oracle = DynamicHCL.build(grid_graph(4, 4), landmarks=[0, 15])
    checkpoint = tmp_path / "ck.json.gz"
    write_checkpoint(oracle, checkpoint, log_seq=0)
    wal = tmp_path / "wal"
    log = UpdateLog(wal, segment_records=1)
    log.append_events([("insert", 0, 15), ("insert", 1, 14), ("insert", 2, 13)])
    log.compact(2)  # records 1..2 gone: checkpoint at 0 can no longer boot
    log.close()
    from repro.exceptions import ClusterError

    with pytest.raises(ClusterError):
        build_replica(
            ReplicaSpec(name="r0", checkpoint_path=str(checkpoint), wal_dir=str(wal))
        )
