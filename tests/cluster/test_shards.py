"""Landmark sharding: plan, restriction, scatter-gather, shard WAL replay.

The socket-level tests run the real sharded stack in-process: a
``shards=N`` :class:`ClusterRouter` over shard-restricted
:class:`ReplicaServer`\\ s, reads scatter-gathering across shard groups
with an element-wise min reduction, writes fanning out to every shard.
The replay tests drive :func:`build_replica` with ``num_shards > 1``
specs — the exact warm-start path of a sharded cluster — and prove the
reassembled per-shard labellings stay byte-identical to the sequential
full-oracle replay even when one shard group checkpoints mid-stream
while another lags (satellite: shard-aware WAL replay).
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterRouter,
    ReplicaServer,
    ReplicaSpec,
    ShardPlan,
    UpdateLog,
    build_replica,
    make_shard_oracle,
    write_checkpoint,
)
from repro.core.dynamic import DynamicHCL
from repro.core.sharding import reassemble_labellings, restrict_labelling
from repro.exceptions import ReproError
from repro.graph.generators import barabasi_albert, ring_of_cliques
from repro.landmarks.selection import top_degree_landmarks
from repro.serving.client import ServingClient
from repro.serving.service import OracleService

from tests.cluster.test_mixed_convergence import (
    churn_events,
    labelling_bytes,
    sequential_replay,
)


# ----------------------------------------------------------------------
# ShardPlan
# ----------------------------------------------------------------------
def test_shard_plan_stripes_deterministically():
    plan = ShardPlan.for_landmarks([7, 3, 9, 1, 5], 2)
    assert plan.owned(0) == [7, 9, 5]
    assert plan.owned(1) == [3, 1]
    assert plan.assignment() == [[7, 9, 5], [3, 1]]
    assert plan.shard_of(9) == 0 and plan.shard_of(1) == 1
    # Same landmarks, same order -> same plan, always.
    assert ShardPlan.for_landmarks([7, 3, 9, 1, 5], 2) == plan


def test_shard_plan_meta_roundtrip_and_validation():
    plan = ShardPlan.for_landmarks([4, 8, 2], 3)
    assert ShardPlan.from_meta(plan.to_meta()) == plan
    with pytest.raises(ReproError):
        ShardPlan.for_landmarks([1, 2], 3)  # empty shard
    with pytest.raises(ReproError):
        plan.owned(3)
    with pytest.raises(ReproError):
        plan.shard_of(99)
    tampered = plan.to_meta()
    tampered["shard_plan"]["assignment"] = [[8], [4], [2]]
    with pytest.raises(ReproError):
        ShardPlan.from_meta(tampered)
    with pytest.raises(ReproError):
        ShardPlan.from_meta({})


# ----------------------------------------------------------------------
# Restriction / reassembly
# ----------------------------------------------------------------------
def test_restrict_partitions_and_reassembles_bytes(small_oracle, tmp_path):
    plan = ShardPlan.for_landmarks(small_oracle.landmarks, 2)
    parts = [
        restrict_labelling(small_oracle.labelling, plan.owned(i))
        for i in range(2)
    ]
    # Label entries partition exactly: each entry belongs to one owner.
    assert sum(p.label_entries for p in parts) == (
        small_oracle.labelling.label_entries
    )
    # Every part keeps the FULL landmark list (the sparsification set).
    for part in parts:
        assert part.landmarks == small_oracle.landmarks
    reassembled = reassemble_labellings(parts)
    assert labelling_bytes(reassembled, tmp_path, "reassembled") == (
        labelling_bytes(small_oracle.labelling, tmp_path, "full")
    )


def test_shard_memory_bounded_below_unsharded(tmp_path):
    """Acceptance: per-shard peak label memory <= ~60% of unsharded."""
    graph = barabasi_albert(300, attach=3, rng=7)
    landmarks = top_degree_landmarks(graph, 10)
    full = DynamicHCL.build(graph, landmarks=landmarks)
    plan = ShardPlan.for_landmarks(full.landmarks, 2)
    shards = [make_shard_oracle(full, plan, i) for i in range(2)]
    total = full.labelling.label_entries
    for shard in shards:
        assert shard.labelling.label_entries <= 0.6 * total
    assert sum(s.labelling.label_entries for s in shards) == total


def test_shard_oracle_rejects_topology_ops(small_oracle):
    plan = ShardPlan.for_landmarks(small_oracle.landmarks, 2)
    shard = make_shard_oracle(small_oracle, plan, 0)
    from repro.exceptions import GraphError

    with pytest.raises(GraphError):
        shard.add_landmark(3)
    with pytest.raises(GraphError):
        shard.remove_vertex(3)


# ----------------------------------------------------------------------
# Socket-level scatter-gather
# ----------------------------------------------------------------------
class ShardedCluster:
    """shards x replicas in-process fleet behind a sharded router."""

    def __init__(self, oracle: DynamicHCL, shards: int = 2, replicas: int = 1):
        self.plan = ShardPlan.for_landmarks(oracle.landmarks, shards)
        self.replicas: list[ReplicaServer] = []
        self.log = UpdateLog()
        self.router = ClusterRouter(
            self.log, port=0, read_timeout=2.0, shards=shards
        )
        self.address = self.router.start_in_thread()
        for i in range(shards):
            for j in range(replicas):
                shard = make_shard_oracle(oracle, self.plan, i)
                server = ReplicaServer(
                    OracleService(shard), name=f"s{i}r{j}", port=0,
                    shard_index=i,
                    shard_meta={**self.plan.to_meta(), "shard_index": i},
                )
                server.start_in_thread()
                self.replicas.append(server)
                self.router.add_replica_from_thread(
                    server.name, *server.address, shard=i
                )

    def close(self) -> None:
        self.router.stop_thread()
        for server in self.replicas:
            server.stop_thread()


@pytest.fixture
def sharded(small_oracle):
    fleet = ShardedCluster(small_oracle, shards=2, replicas=2)
    client = ServingClient(*fleet.address)
    yield small_oracle, fleet, client
    client.close()
    fleet.close()


def test_scatter_gather_matches_full_oracle(sharded):
    oracle, _, client = sharded
    vertices = sorted(oracle.graph.vertices())
    pairs = [(u, v) for u in vertices[:6] for v in vertices[-6:]]
    for u, v in pairs:
        assert client.query(u, v) == oracle.query(u, v), (u, v)
    assert client.query_many(pairs) == [oracle.query(u, v) for u, v in pairs]
    # `path` answers BFS-exact through any one shard (full graph there).
    path = client.path(0, 15)
    assert path[0] == 0 and path[-1] == 15 and len(path) - 1 == oracle.query(0, 15)


def test_sharded_write_fanout_and_read_your_writes(sharded):
    oracle, fleet, client = sharded
    reference = DynamicHCL(oracle.graph.copy(), oracle.labelling.copy())
    events = [("insert", 0, 15), ("delete", 1, 2), ("insert", 2, 13)]
    response = client.updates(events)
    assert response["ok"] and response["epoch"] == len(events)
    reference.insert_edge(0, 15)
    reference.remove_edge(1, 2)
    reference.insert_edge(2, 13)
    # Gated scatter-gather: every shard group must reach the epoch.
    for u, v in [(0, 15), (1, 2), (0, 12), (3, 14)]:
        assert client.query(u, v, min_epoch=len(events)) == (
            reference.query(u, v)
        ), (u, v)
    assert client.snapshot()["ok"]
    # All four replicas (both groups) applied the full stream.
    for server in fleet.replicas:
        assert server.applied_seq == len(events)


def test_sharded_stats_and_checkpoint(sharded, tmp_path):
    _, fleet, client = sharded
    client.update("insert", 0, 15)
    assert client.snapshot()["ok"]
    stats = client.stats()
    assert stats["num_shards"] == 2
    assert set(stats["shards"]) == {"0", "1"}
    for index, group in stats["shards"].items():
        assert group["replicas"] == 2 and group["healthy"] == 2
        assert group["lag"] == 0
        assert group["acked_seq"] == 1
    by_shard = {
        name: entry["shard"] for name, entry in stats["replicas"].items()
    }
    assert by_shard == {"s0r0": 0, "s0r1": 0, "s1r0": 1, "s1r1": 1}

    # Per-shard checkpoints carry the plan + shard index in their meta.
    from repro.utils.serialization import read_oracle_meta

    for i in range(2):
        path = tmp_path / f"ckpt-s{i}.json.gz"
        fleet.router.request_checkpoint_from_thread(path, shard=i)
        meta = read_oracle_meta(path)
        assert meta["log_seq"] == 1
        assert meta["shard_index"] == i
        assert ShardPlan.from_meta(meta) == fleet.plan


def test_reassembled_labellings_match_reference_after_stream(sharded, tmp_path):
    oracle, fleet, client = sharded
    events = churn_events(oracle.graph, 18, seed=11)
    for base in range(0, len(events), 5):
        chunk = events[base : base + 5]
        client.updates([(e.kind, *e.edge) for e in chunk])
    assert client.snapshot()["ok"]
    reference = sequential_replay(oracle.graph, oracle.landmarks, events)
    expected = labelling_bytes(reference.labelling, tmp_path, "sequential")
    # One replica per group suffices for reassembly; check both pairings.
    for j in range(2):
        parts = [
            server.service.oracle.labelling
            for server in fleet.replicas
            if server.name.endswith(f"r{j}")
        ]
        assert labelling_bytes(
            reassemble_labellings(parts), tmp_path, f"reassembled{j}"
        ) == expected


# ----------------------------------------------------------------------
# Shard-aware WAL replay (satellite: mid-stream checkpoint + laggard)
# ----------------------------------------------------------------------
def test_shard_wal_replay_with_midstream_checkpoint_and_laggard(tmp_path):
    """One shard group checkpoints mid-stream while the other lags back
    at the seed; both restart and replay their own WAL suffixes; the
    reassembled labelling is byte-identical to the sequential replay."""
    graph = ring_of_cliques(6, 5)
    landmarks = [0, 5, 10, 15]
    events = churn_events(graph, 32, seed=23)
    half = len(events) // 2
    oracle = DynamicHCL.build(graph.copy(), landmarks=landmarks)
    seed_file = tmp_path / "seed.json.gz"
    write_checkpoint(oracle, seed_file, log_seq=0)
    wal_dir = tmp_path / "wal"
    log = UpdateLog(wal_dir)
    log.append_events([(e.kind, *e.edge) for e in events[:half]])

    def spec(name, shard, checkpoint):
        return ReplicaSpec(
            name=name, checkpoint_path=str(checkpoint), wal_dir=str(wal_dir),
            shard_index=shard, num_shards=2,
        )

    # Shard 0 boots from the seed, replays the first half, checkpoints
    # mid-stream.  Shard 1 does nothing yet — it lags at the seed.
    s0 = build_replica(spec("s0r0", 0, seed_file))
    s0.service.stop()
    assert s0.applied_seq == half
    plan = ShardPlan.for_landmarks(oracle.landmarks, 2)
    ckpt0 = tmp_path / "checkpoint-s0.json.gz"
    write_checkpoint(
        s0.service.oracle, ckpt0, log_seq=half,
        extra_meta={**plan.to_meta(), "shard_index": 0},
    )

    # The stream continues; then both groups (re)start.
    log.append_events([(e.kind, *e.edge) for e in events[half:]])
    log.close()
    restarted0 = build_replica(spec("s0r0", 0, ckpt0))  # suffix only
    restarted0.service.stop()
    laggard1 = build_replica(spec("s1r0", 1, seed_file))  # full replay
    laggard1.service.stop()
    assert restarted0.applied_seq == len(events)
    assert laggard1.applied_seq == len(events)

    reference = sequential_replay(graph, landmarks, events)
    reassembled = reassemble_labellings([
        restarted0.service.oracle.labelling,
        laggard1.service.oracle.labelling,
    ])
    assert labelling_bytes(reassembled, tmp_path, "reassembled") == (
        labelling_bytes(reference.labelling, tmp_path, "sequential")
    )


def test_shard_checkpoint_meta_mismatch_refused(tmp_path):
    """A shard replica must refuse a checkpoint recorded for a different
    shard index — mixing shards would silently drop landmark rows."""
    graph = ring_of_cliques(4, 4)
    oracle = DynamicHCL.build(graph.copy(), landmarks=[0, 4])
    plan = ShardPlan.for_landmarks(oracle.landmarks, 2)
    shard0 = make_shard_oracle(oracle, plan, 0)
    ckpt = tmp_path / "checkpoint-s0.json.gz"
    write_checkpoint(
        shard0, ckpt, log_seq=0,
        extra_meta={**plan.to_meta(), "shard_index": 0},
    )
    from repro.exceptions import ClusterError

    with pytest.raises(ClusterError):
        build_replica(ReplicaSpec(
            name="s1r0", checkpoint_path=str(ckpt), wal_dir="",
            shard_index=1, num_shards=2,
        ))
