"""The identical-replica contract, under crashes and checkpoints.

Acceptance-criterion tests: any replica — including one that crashed
mid-batch and restarted from checkpoint + WAL replay — must end
**byte-identical** to a single sequential :class:`DynamicHCL` that
applied the same event stream.
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterRouter,
    ReplicaSpec,
    UpdateLog,
    build_replica,
    write_checkpoint,
)
from repro.core.dynamic import DynamicHCL
from repro.graph.generators import barabasi_albert, grid_graph
from repro.serving.client import ServingClient
from repro.serving.service import OracleService
from repro.utils.rng import ensure_rng
from repro.utils.serialization import save_labelling
from repro.workloads.streams import mixed_stream

from tests.cluster.conftest import make_replica


def labelling_bytes(labelling, tmp_path, name: str) -> bytes:
    """Canonical serialized form — byte-level equality, not just __eq__."""
    path = tmp_path / f"{name}.labels.json"
    save_labelling(labelling, path)
    return path.read_bytes()


def sequential_replay(graph, landmarks, events) -> DynamicHCL:
    """The ground truth: one oracle, one event at a time, in log order."""
    oracle = DynamicHCL.build(graph.copy(), landmarks=list(landmarks))
    for event in events:
        u, v = event.edge
        if event.is_insert:
            oracle.insert_edge(u, v)
        else:
            oracle.remove_edge(u, v)
    return oracle


@pytest.fixture
def workload():
    graph = barabasi_albert(120, attach=2, rng=7)
    landmarks = [0, 1, 2]
    events = mixed_stream(graph, 40, insert_ratio=0.7, rng=ensure_rng(11))
    return graph, landmarks, events


def test_replicas_end_byte_identical_to_sequential_replay(workload, tmp_path):
    graph, landmarks, events = workload
    oracle = DynamicHCL.build(graph.copy(), landmarks=landmarks)

    replicas = [make_replica(oracle, f"r{i}") for i in range(2)]
    router = ClusterRouter(UpdateLog(), port=0)
    host, port = router.start_in_thread()
    try:
        for server in replicas:
            router.add_replica_from_thread(server.name, *server.address)
        with ServingClient(host, port) as client:
            # Mixed-size bursts so the service coalesces some insert runs
            # into batch sweeps and applies others one at a time.
            for base in range(0, len(events), 7):
                chunk = events[base : base + 7]
                client.updates([(e.kind, *e.edge) for e in chunk])
            assert client.snapshot()["ok"]
    finally:
        router.stop_thread()
        for server in replicas:
            server.stop_thread()

    reference = sequential_replay(graph, landmarks, events)
    expected = labelling_bytes(reference.labelling, tmp_path, "sequential")
    for server in replicas:
        got = labelling_bytes(
            server.service.oracle.labelling, tmp_path, server.name
        )
        assert got == expected


def test_restart_from_mid_stream_checkpoint_is_byte_identical(workload, tmp_path):
    """WAL replay from a mid-stream checkpoint == full replay == sequential."""
    graph, landmarks, events = workload
    oracle = DynamicHCL.build(graph.copy(), landmarks=landmarks)
    seed_checkpoint = tmp_path / "seed.json.gz"
    write_checkpoint(oracle, seed_checkpoint, log_seq=0)

    wal_dir = tmp_path / "wal"
    log = UpdateLog(wal_dir, segment_records=8)
    log.append_events([(e.kind, *e.edge) for e in events])
    log.close()

    # Mid-stream checkpoint: apply the first half through the service
    # (the exact replica apply path), checkpoint, then boot from it.
    half = len(events) // 2
    mid = DynamicHCL(oracle.graph.copy(), oracle.labelling.copy())
    with OracleService(mid) as service:
        service.submit_many(events[:half])
        service.flush()
    mid_checkpoint = tmp_path / "mid.json.gz"
    write_checkpoint(mid, mid_checkpoint, log_seq=half)

    from_mid = build_replica(
        ReplicaSpec(name="mid", checkpoint_path=str(mid_checkpoint),
                    wal_dir=str(wal_dir))
    )
    from_scratch = build_replica(
        ReplicaSpec(name="full", checkpoint_path=str(seed_checkpoint),
                    wal_dir=str(wal_dir))
    )
    from_mid.service.stop()
    from_scratch.service.stop()
    assert from_mid.applied_seq == len(events)
    assert from_scratch.applied_seq == len(events)

    reference = sequential_replay(graph, landmarks, events)
    expected = labelling_bytes(reference.labelling, tmp_path, "sequential")
    assert labelling_bytes(
        from_mid.service.oracle.labelling, tmp_path, "mid-replay"
    ) == expected
    assert labelling_bytes(
        from_scratch.service.oracle.labelling, tmp_path, "full-replay"
    ) == expected


def test_crash_mid_batch_then_restart_converges(workload, tmp_path):
    """A replica that dies mid-stream and restarts from checkpoint + WAL
    catches back up to labels byte-identical to the sequential replay."""
    graph, landmarks, events = workload
    oracle = DynamicHCL.build(graph.copy(), landmarks=landmarks)
    checkpoint = tmp_path / "checkpoint.json.gz"
    write_checkpoint(oracle, checkpoint, log_seq=0)

    wal_dir = tmp_path / "wal"
    log = UpdateLog(wal_dir)
    survivor = make_replica(oracle, "steady")
    victim = make_replica(oracle, "crashy")
    router = ClusterRouter(log, port=0)
    host, port = router.start_in_thread()
    restarted = None
    try:
        router.add_replica_from_thread("steady", *survivor.address)
        router.add_replica_from_thread("crashy", *victim.address)
        half = len(events) // 2
        with ServingClient(host, port) as client:
            for base in range(0, half, 5):
                chunk = events[base : base + 5]
                client.updates([(e.kind, *e.edge) for e in chunk])
            assert client.snapshot()["ok"]
            # "Crash": the victim vanishes mid-stream; its in-memory state
            # is lost (we discard the server object entirely).
            victim.stop_thread()
            for base in range(half, len(events), 5):
                chunk = events[base : base + 5]
                client.updates([(e.kind, *e.edge) for e in chunk])
            # Supervisor-style restart: boot from checkpoint + WAL suffix,
            # re-register under the same name, let the pump close the gap.
            restarted = build_replica(
                ReplicaSpec(name="crashy", checkpoint_path=str(checkpoint),
                            wal_dir=str(wal_dir))
            )
            restarted.start_in_thread()
            router.set_replica_address_from_thread("crashy", *restarted.address)
            drained = client.snapshot()
            assert drained["ok"]
            assert drained["replicas"]["crashy"] == len(events)
            # Read-your-writes against the restarted replica specifically:
            # route with min_epoch == head until it answers.
            stats = client.stats()
            assert stats["replicas"]["crashy"]["lag"] == 0
    finally:
        router.stop_thread()
        survivor.stop_thread()
        if restarted is not None:
            restarted.stop_thread()

    reference = sequential_replay(graph, landmarks, events)
    expected = labelling_bytes(reference.labelling, tmp_path, "sequential")
    assert labelling_bytes(
        restarted.service.oracle.labelling, tmp_path, "restarted"
    ) == expected
    assert labelling_bytes(
        survivor.service.oracle.labelling, tmp_path, "survivor"
    ) == expected


def test_grid_smoke_convergence(tmp_path):
    """Tiny deterministic variant: insert-only burst, one replica, compare
    against the batch and sequential paths."""
    oracle = DynamicHCL.build(grid_graph(4, 4), landmarks=[0, 15])
    server = make_replica(oracle, "r0")
    router = ClusterRouter(UpdateLog(), port=0)
    host, port = router.start_in_thread()
    try:
        router.add_replica_from_thread("r0", *server.address)
        with ServingClient(host, port) as client:
            client.updates([("insert", 0, 15), ("insert", 1, 14), ("insert", 2, 13)])
            assert client.snapshot()["ok"]
    finally:
        router.stop_thread()
        server.stop_thread()
    reference = DynamicHCL.build(grid_graph(4, 4), landmarks=[0, 15])
    reference.insert_edge(0, 15)
    reference.insert_edge(1, 14)
    reference.insert_edge(2, 13)
    assert labelling_bytes(
        server.service.oracle.labelling, tmp_path, "replica"
    ) == labelling_bytes(reference.labelling, tmp_path, "reference")
