"""Cluster observability end-to-end: trace propagation through the wire,
exact merged percentiles in the aggregate, lag gauges in the exposition.

Router and replicas live in one process here (shared span recorder), but
the trace id still travels the real NDJSON sockets: the client stamps it,
the router spans its forward and relays the request line verbatim, and
the replica spans its dispatch off the relayed line.
"""

from __future__ import annotations

import pytest

from repro.obs.exporter import CONTENT_TYPE
from repro.obs.trace import new_trace_id, reset_recorder
from repro.serving.client import ServingClient

from tests.cluster.conftest import InProcessCluster


@pytest.fixture
def cluster(small_oracle, monkeypatch):
    monkeypatch.delenv("REPRO_SPAN_LOG", raising=False)
    monkeypatch.delenv("REPRO_OBS", raising=False)
    reset_recorder()
    fleet = InProcessCluster(small_oracle, replicas=2)
    client = ServingClient(*fleet.address)
    yield fleet, client
    client.close()
    fleet.close()
    reset_recorder()


def test_trace_id_propagates_client_router_replica(cluster):
    _, client = cluster
    tid = new_trace_id()
    assert client.query(0, 15, trace=tid) == 6
    spans = client.spans(of=tid)
    assert spans and all(s["trace"] == tid for s in spans)
    by_component = {s["component"] for s in spans}
    # One request, spans on both sides of the wire hop.
    assert {"router", "replica"} <= by_component
    for s in spans:
        assert s["dur_ms"] >= 0.0

    # Untraced traffic leaves no spans behind.
    assert client.query(0, 15) == 6
    assert client.spans(of="0" * 16) == []


def test_spans_op_respects_limit(cluster):
    _, client = cluster
    tid = new_trace_id()
    for _ in range(3):
        client.query(0, 15, trace=tid)
    assert len(client.spans(of=tid, limit=2)) == 2


def test_metrics_op_serves_prometheus_text_with_lag_gauges(cluster):
    _, client = cluster
    client.update("insert", 0, 15)
    assert client.snapshot()["ok"]  # drain: every replica acked the head
    raw = client.request({"op": "metrics"})
    assert raw["ok"]
    assert raw["content_type"] == CONTENT_TYPE
    text = raw["metrics"]
    assert client.metrics().startswith("# HELP")
    for replica in ("r0", "r1"):
        assert f'repro_replica_lag{{replica="{replica}"}} 0' in text
        assert f'repro_replica_healthy{{replica="{replica}"}} 1' in text
    assert "repro_wal_head_seq 1" in text
    assert "repro_router_read_latency_seconds_bucket" in text


def test_aggregate_percentiles_are_exact_merges(cluster):
    fleet, client = cluster
    for _ in range(20):
        client.query(0, 15)
    stats = client.stats()
    merged = stats["aggregate"]["queries"]
    assert merged["merge"] == "exact"
    # Lossless merge: the aggregate count is the pooled population, i.e.
    # exactly the sum of what each replica's own recorder saw.
    per_replica = [
        entry["service"]["queries"]["count"]
        for entry in stats["replicas"].values()
    ]
    assert merged["count"] == sum(per_replica) == 20
    assert merged["hist"]["count"] == 20
    assert merged["p50_ms"] <= merged["p95_ms"] <= merged["p99_ms"]
    assert merged["qps"] > 0


def test_router_stats_expose_wal_footprint(cluster):
    _, client = cluster
    client.updates([("insert", 0, 15), ("insert", 1, 14)])
    wal = client.stats()["wal"]
    assert wal["head"] == 2
    assert wal["base"] == 0
    # In-memory log in this fixture: no on-disk segments.
    assert wal["segments"] == 0 and wal["bytes"] == 0
