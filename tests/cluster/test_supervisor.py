"""ClusterSupervisor: real spawned replica processes, crash recovery.

These are the only cluster tests paying a ``multiprocessing`` spawn —
everything protocol-level is covered in-process elsewhere.
"""

from __future__ import annotations

from time import perf_counter, sleep

import pytest

from repro.cluster import ClusterSupervisor
from repro.core.dynamic import DynamicHCL
from repro.exceptions import ClusterError
from repro.graph.generators import grid_graph
from repro.serving.client import ServingClient
from repro.utils.serialization import save_oracle


@pytest.fixture(scope="module")
def oracle_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cluster") / "oracle.json.gz"
    oracle = DynamicHCL.build(grid_graph(4, 4), landmarks=[0, 15])
    save_oracle(oracle, path)
    return path


def _wait_until(predicate, timeout=15.0, interval=0.1):
    deadline = perf_counter() + timeout
    while perf_counter() < deadline:
        if predicate():
            return True
        sleep(interval)
    return False


def test_cluster_end_to_end_with_crash_recovery(oracle_file, tmp_path):
    supervisor = ClusterSupervisor(
        oracle_file,
        cluster_dir=tmp_path / "cluster",
        replicas=2,
        port=0,
        compact_every=None,
        health_interval=0.2,
    )
    host, port = supervisor.start_in_thread()
    try:
        with ServingClient(host, port) as client:
            assert client.ping()
            assert client.query(0, 15) == 6

            response = client.updates([("insert", 0, 15), ("insert", 1, 14)])
            assert response["ok"] and response["epoch"] == 2
            assert client.query(0, 15, min_epoch=2) == 1
            assert client.snapshot()["replicas"] == {"r0": 2, "r1": 2}

            # Hard-kill one replica (SIGKILL: no drain, state gone).
            victim = supervisor.worker("r0")
            victim.process.kill()
            assert _wait_until(lambda: supervisor.worker("r0").restarts == 1)
            assert _wait_until(
                lambda: client.stats()["replicas"]["r0"]["healthy"]
            )
            # The restarted process warm-started from the seed oracle and
            # replayed the WAL: it must serve the pre-crash writes.
            after = client.update("insert", 2, 13)
            assert client.query(2, 13, min_epoch=after["epoch"]) == 1
            drained = client.snapshot()
            assert drained["ok"] and drained["replicas"]["r0"] == 3
    finally:
        supervisor.stop_thread()
    # Clean shutdown: SIGTERM drained both replicas to exit code 0.
    for name, worker in supervisor.workers_by_name.items():
        assert worker.exitcode == 0, (name, worker.exitcode)


def test_wal_survives_full_cluster_restart(oracle_file, tmp_path):
    cluster_dir = tmp_path / "cluster"
    supervisor = ClusterSupervisor(
        oracle_file, cluster_dir=cluster_dir, replicas=1, port=0,
        compact_every=None, fsync="always",
    )
    host, port = supervisor.start_in_thread()
    try:
        with ServingClient(host, port) as client:
            client.updates([("insert", 0, 15), ("insert", 1, 14)])
            assert client.snapshot()["ok"]
    finally:
        supervisor.stop_thread()

    # A brand-new supervisor over the same directory replays the WAL.
    reborn = ClusterSupervisor(
        oracle_file, cluster_dir=cluster_dir, replicas=1, port=0,
        compact_every=None,
    )
    host, port = reborn.start_in_thread()
    try:
        with ServingClient(host, port) as client:
            stats = client.stats()
            assert stats["log_head"] == 2
            assert client.query(0, 15, min_epoch=2) == 1
            # And the log keeps extending where it left off.
            response = client.update("delete", 0, 15)
            assert response["epoch"] == 3
            assert client.query(0, 15, min_epoch=3) == 3  # via 1-14 shortcut
    finally:
        reborn.stop_thread()


def test_compaction_writes_checkpoint_and_trims_wal(oracle_file, tmp_path):
    cluster_dir = tmp_path / "cluster"
    supervisor = ClusterSupervisor(
        oracle_file, cluster_dir=cluster_dir, replicas=1, port=0,
        compact_every=4, health_interval=0.2,
        router_kwargs={"fanout_batch": 4},
    )
    host, port = supervisor.start_in_thread()
    try:
        with ServingClient(host, port) as client:
            events = [("insert", 0, 15), ("insert", 1, 14), ("insert", 2, 13),
                      ("insert", 3, 12), ("insert", 0, 10), ("insert", 5, 15)]
            client.updates(events)
            assert client.snapshot()["ok"]
            assert _wait_until(lambda: (cluster_dir / "checkpoint.json.gz").exists())
            assert _wait_until(
                lambda: client.stats()["log_base"] >= 4, timeout=10.0
            )
    finally:
        supervisor.stop_thread()

    from repro.cluster import restore_checkpoint

    restored, seq = restore_checkpoint(cluster_dir / "checkpoint.json.gz")
    assert seq >= 4
    assert restored.query(0, 15) == 1


def test_parallel_workers_inside_replicas(oracle_file, tmp_path):
    """Replica processes must be able to fork the parallel engine's
    worker pool (regression: daemonic children cannot have children)."""
    supervisor = ClusterSupervisor(
        oracle_file, cluster_dir=tmp_path / "cluster", replicas=1, port=0,
        workers=2, compact_every=None,
    )
    host, port = supervisor.start_in_thread()
    try:
        with ServingClient(host, port) as client:
            # A multi-insert burst coalesces into one batch sweep, which
            # fans out across the pool inside the replica.
            response = client.updates(
                [("insert", 0, 15), ("insert", 1, 14),
                 ("insert", 2, 13), ("insert", 3, 12)]
            )
            assert client.query(0, 15, min_epoch=response["epoch"]) == 1
            entry = client.stats()["replicas"]["r0"]
            assert entry["healthy"]
            assert entry["service"]["events_applied"] == 4
            assert entry["service"]["degraded"] is None
    finally:
        supervisor.stop_thread()
    assert supervisor.worker("r0").exitcode == 0


def test_boot_failure_exits_nonzero(tmp_path):
    """A replica that cannot boot must exit 1 (a Process discards its
    target's return value — the SystemExit wrapper carries the code)."""
    import multiprocessing

    from repro.cluster.replica import ReplicaSpec, replica_process_entry

    ctx = multiprocessing.get_context("spawn")
    spec = ReplicaSpec(name="x", checkpoint_path=str(tmp_path / "missing.json"))
    process = ctx.Process(target=replica_process_entry, args=(spec, None))
    process.start()
    process.join(60)
    assert process.exitcode == 1


def test_missing_oracle_file_fails_fast(tmp_path):
    supervisor = ClusterSupervisor(
        tmp_path / "nope.json.gz", cluster_dir=tmp_path / "c", replicas=1, port=0
    )
    with pytest.raises(ClusterError):
        supervisor.start_in_thread()
