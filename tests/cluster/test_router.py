"""ClusterRouter: write fan-out, read routing, epoch gating, aggregation."""

from __future__ import annotations

from time import sleep

import pytest

from repro.cluster import ClusterRouter, UpdateLog
from repro.serving.client import ServingClient

from tests.cluster.conftest import InProcessCluster


@pytest.fixture
def cluster(small_oracle):
    fleet = InProcessCluster(small_oracle, replicas=2)
    client = ServingClient(*fleet.address)
    yield fleet, client
    client.close()
    fleet.close()


def _drain(client):
    response = client.snapshot()
    assert response["ok"]
    return response


def test_same_protocol_as_single_node(cluster):
    _, client = cluster
    assert client.ping()
    assert client.query(0, 15) == 6
    assert client.query_many([(0, 15), (0, 1)]) == [6, 1]
    path = client.path(0, 15)
    assert path[0] == 0 and path[-1] == 15 and len(path) - 1 == 6


def test_write_fans_out_to_every_replica(cluster):
    fleet, client = cluster
    response = client.updates([("insert", 0, 15), ("insert", 1, 14)])
    assert response["ok"] and response["epoch"] == 2
    drained = _drain(client)
    assert drained["replicas"] == {"r0": 2, "r1": 2}
    assert client.query(0, 15) == 1
    # Both replica oracles actually applied both events.
    for server in fleet.replicas:
        assert server.applied_seq == 2
        assert server.service.oracle.query(0, 15) == 1


def test_read_your_writes_via_min_epoch(cluster):
    _, client = cluster
    response = client.update("insert", 0, 15)
    epoch = response["epoch"]
    # Gated read: must reflect the write no matter which replica answers.
    for _ in range(8):
        assert client.query(0, 15, min_epoch=epoch) == 1


def test_read_response_carries_replica_epoch(cluster):
    _, client = cluster
    client.update("insert", 0, 15)
    _drain(client)
    raw = client.request({"op": "query", "u": 0, "v": 15})
    assert raw["ok"] and raw["epoch"] == 1


def test_min_epoch_beyond_head_rejected(cluster):
    _, client = cluster
    raw = client.request({"op": "query", "u": 0, "v": 15, "min_epoch": 99})
    assert not raw["ok"]
    assert "beyond the log head" in raw["error"]


def test_reads_below_requested_epoch_never_served_without_replicas(small_oracle):
    """A router whose replicas cannot reach the epoch refuses the read
    (after the bounded wait) instead of serving stale data."""
    log = UpdateLog()
    log.append("insert", 0, 15)  # head=1, but nobody to apply it
    router = ClusterRouter(log, port=0, read_timeout=0.3)
    host, port = router.start_in_thread()
    try:
        with ServingClient(host, port) as client:
            raw = client.request(
                {"op": "query", "u": 0, "v": 15, "min_epoch": 1}
            )
            assert not raw["ok"]
            assert "no replica caught up to epoch 1" in raw["error"]
            assert raw.get("retryable")
            plain = client.request({"op": "query", "u": 0, "v": 15})
            assert not plain["ok"]
            assert "no healthy replica" in plain["error"]
    finally:
        router.stop_thread()


def test_invalid_writes_never_reach_the_log(cluster):
    fleet, client = cluster
    for bad in (
        {"op": "update", "kind": "upsert", "u": 0, "v": 1},
        {"op": "update", "kind": "insert", "u": 0, "v": 0},
        {"op": "update", "kind": "insert", "u": -1, "v": 1},
        {"op": "update", "kind": "insert", "u": "x", "v": 1},
        {"op": "updates", "events": [["insert", 1, 2], ["delete", 3, 3]]},
    ):
        response = client.request(bad)
        assert not response["ok"]
    assert fleet.log.head == 0  # the partially-bad batch appended nothing


def test_duplicate_insert_rejected_identically_on_all_replicas(cluster):
    fleet, client = cluster
    client.update("insert", 0, 15)
    client.update("insert", 0, 15)  # duplicate: logged, rejected at apply
    _drain(client)
    stats = client.stats()
    for entry in stats["replicas"].values():
        assert entry["service"]["events_applied"] == 1
        assert entry["service"]["events_rejected"] == 1
    assert stats["aggregate"]["events_applied"] == 2  # 1 per replica


def test_stats_aggregation_and_lag(cluster):
    _, client = cluster
    client.updates([("insert", 0, 15), ("insert", 1, 14)])
    _drain(client)
    client.query(0, 15)
    stats = client.stats()
    assert stats["role"] == "router"
    assert stats["log_head"] == 2 and stats["log_base"] == 0
    assert stats["writes_appended"] == 2
    assert stats["reads_routed"] >= 1
    assert set(stats["replicas"]) == {"r0", "r1"}
    for entry in stats["replicas"].values():
        assert entry["healthy"] and entry["acked_seq"] == 2 and entry["lag"] == 0
    agg = stats["aggregate"]
    assert agg["events_applied"] == 4  # every replica applied both
    assert agg["queries"]["count"] >= 1


def test_replica_failure_fails_over_and_recovers(cluster):
    fleet, client = cluster
    client.update("insert", 0, 15)
    _drain(client)
    # Kill one replica server; reads keep working through the other.
    victim = fleet.replicas[0]
    victim.stop_thread()
    for _ in range(6):
        assert client.query(0, 15) == 1
    deadline = 50
    while deadline:
        states = {
            name: entry["healthy"]
            for name, entry in client.stats()["replicas"].items()
        }
        if not states[victim.name]:
            break
        sleep(0.1)
        deadline -= 1
    assert not states[victim.name]
    # Writes still ack (log + surviving replica) and reads still answer.
    response = client.update("insert", 1, 14)
    assert response["ok"]
    assert client.query(1, 14, min_epoch=response["epoch"]) == 1


def test_remove_replica(cluster):
    fleet, client = cluster
    fleet.router.remove_replica_from_thread("r0")
    assert client.stats()["replicas"].keys() == {"r1"}
    assert client.query(0, 15) == 6


def test_round_robin_spreads_reads_evenly(small_oracle):
    """Regression: the old rotation used one global counter modulo the
    *per-call* eligible list, which could starve replicas.  Rotation over
    stable sorted membership must spread a read burst near-uniformly."""
    fleet = InProcessCluster(small_oracle, replicas=3)
    try:
        with ServingClient(*fleet.address) as client:
            for _ in range(30):
                assert client.query(0, 15) == 6
            stats = client.stats()
        counts = {
            name: entry["service"]["queries"]["count"]
            for name, entry in stats["replicas"].items()
        }
    finally:
        fleet.close()
    assert sum(counts.values()) == 30
    # Perfect rotation gives 10/10/10; allow a little slack for the
    # health/stats traffic interleaving, never starvation.
    assert all(count >= 8 for count in counts.values()), counts


def test_read_retries_readmit_recovered_replica(small_oracle):
    """Regression: a read that had failed over every replica kept them
    all in its per-request ``excluded`` set, so the retry loop span until
    the deadline even after a replica recovered.  The set is now cleared
    between waits: an in-flight read must succeed as soon as a
    replacement replica catches up."""
    from threading import Thread

    from tests.cluster.conftest import make_replica

    log = UpdateLog()
    router = ClusterRouter(log, port=0, read_timeout=8.0)
    host, port = router.start_in_thread()
    first = make_replica(small_oracle, "r0")
    replacement = None
    result: dict = {}
    try:
        router.add_replica_from_thread("r0", *first.address)
        with ServingClient(host, port) as warm:
            assert warm.query(0, 15) == 6
        first.stop_thread()  # die mid-read: the next attempt fails over

        def read():
            with ServingClient(host, port) as client:
                result.update(client.request({"op": "query", "u": 0, "v": 15}))

        reader = Thread(target=read)
        reader.start()
        sleep(0.6)  # the read has failed on r0 and is in its wait loop
        assert reader.is_alive()
        replacement = make_replica(small_oracle, "r0")
        router.set_replica_address_from_thread("r0", *replacement.address)
        reader.join(timeout=6.0)
        assert not reader.is_alive(), "read did not re-admit the recovered replica"
    finally:
        router.stop_thread()
        if replacement is not None:
            replacement.stop_thread()
    assert result.get("ok"), result
    assert result["distance"] == 6
