"""UpdateLog: append/read, durability, segments, torn tails, compaction."""

from __future__ import annotations

import json

import pytest

from repro.cluster.wal import (
    LogRecord,
    UpdateLog,
    restore_checkpoint,
    scan_wal,
    write_checkpoint,
)
from repro.core.dynamic import DynamicHCL
from repro.exceptions import ClusterError
from repro.graph.generators import grid_graph


def test_in_memory_append_and_read():
    log = UpdateLog()
    assert log.head == 0 and len(log) == 0
    assert log.append("insert", 0, 1) == 1
    assert log.append_events([("insert", 1, 2), ("delete", 0, 1)]) == 3
    assert log.head == 3
    records = log.read(1)
    assert [r.seq for r in records] == [1, 2, 3]
    assert records[0] == LogRecord(1, "insert", 0, 1)
    assert [r.seq for r in log.read(2, limit=1)] == [2]
    assert [e.kind for e in log.events_since(1)] == ["insert", "delete"]


def test_append_rejects_unknown_kind():
    log = UpdateLog()
    with pytest.raises(ClusterError):
        log.append("upsert", 0, 1)
    assert log.head == 0


def test_empty_append_is_a_noop():
    log = UpdateLog()
    log.append("insert", 0, 1)
    assert log.append_events([]) == 1


@pytest.mark.parametrize("fsync", ["always", "batch", "never"])
def test_durable_roundtrip(tmp_path, fsync):
    wal = tmp_path / "wal"
    log = UpdateLog(wal, fsync=fsync)
    log.append_events([("insert", 0, 1), ("insert", 1, 2), ("delete", 0, 1)])
    log.close()

    reopened = UpdateLog(wal, fsync=fsync)
    assert reopened.head == 3
    assert [tuple(r) for r in reopened.read(1)] == [
        (1, "insert", 0, 1), (2, "insert", 1, 2), (3, "delete", 0, 1),
    ]
    # Appending continues the sequence after reopen.
    assert reopened.append("insert", 2, 3) == 4
    reopened.close()
    assert [r.seq for r in scan_wal(wal)] == [1, 2, 3, 4]


def test_unknown_fsync_policy_rejected(tmp_path):
    with pytest.raises(ClusterError):
        UpdateLog(tmp_path / "wal", fsync="sometimes")


def test_segments_rotate(tmp_path):
    wal = tmp_path / "wal"
    log = UpdateLog(wal, segment_records=4)
    for i in range(10):
        log.append("insert", i, i + 1)
    log.close()
    segments = sorted(p.name for p in wal.iterdir())
    assert segments == [
        "wal-000000000001.ndjson",
        "wal-000000000005.ndjson",
        "wal-000000000009.ndjson",
    ]
    assert [r.seq for r in scan_wal(wal)] == list(range(1, 11))
    assert [r.seq for r in scan_wal(wal, start_seq=7)] == [7, 8, 9, 10]


def test_scan_tolerates_torn_tail(tmp_path):
    wal = tmp_path / "wal"
    log = UpdateLog(wal)
    log.append_events([("insert", 0, 1), ("insert", 1, 2)])
    log.close()
    segment = next(iter(wal.iterdir()))
    with open(segment, "ab") as handle:
        handle.write(b'[3,"ins')  # crash mid-append: no trailing newline
    assert [r.seq for r in scan_wal(wal)] == [1, 2]
    # The owner repairs the tail on open and keeps appending cleanly.
    reopened = UpdateLog(wal)
    assert reopened.head == 2
    assert reopened.append("insert", 2, 3) == 3
    reopened.close()
    assert [r.seq for r in scan_wal(wal)] == [1, 2, 3]


def test_scan_rejects_mid_log_corruption(tmp_path):
    wal = tmp_path / "wal"
    log = UpdateLog(wal, segment_records=2)
    for i in range(5):
        log.append("insert", i, i + 1)
    log.close()
    first = sorted(wal.iterdir())[0]
    first.write_text('[1,"insert",0,1]\nnot json\n')
    with pytest.raises(ClusterError, match="corrupt"):
        scan_wal(wal)


def test_scan_rejects_sequence_gap(tmp_path):
    wal = tmp_path / "wal"
    wal.mkdir()
    (wal / "wal-000000000001.ndjson").write_text(
        '[1,"insert",0,1]\n[3,"insert",1,2]\n'
    )
    with pytest.raises(ClusterError, match="gap"):
        scan_wal(wal)


def test_compaction_drops_covered_segments(tmp_path):
    wal = tmp_path / "wal"
    log = UpdateLog(wal, segment_records=3)
    for i in range(9):
        log.append("insert", i, i + 1)
    assert len(list(wal.iterdir())) == 3
    dropped = log.compact(6)
    assert dropped == 6
    assert log.base == 6 and log.head == 9
    assert len(list(wal.iterdir())) == 1  # first two segments fully covered
    assert [r.seq for r in log.read(7)] == [7, 8, 9]
    with pytest.raises(ClusterError, match="compacted"):
        log.read(5)
    with pytest.raises(ClusterError):
        log.compact(99)  # beyond head
    assert log.compact(4) == 0  # already below base: no-op
    log.close()


def test_reopen_after_compaction_with_base_seq(tmp_path):
    wal = tmp_path / "wal"
    log = UpdateLog(wal, segment_records=2)
    for i in range(6):
        log.append("insert", i, i + 1)
    log.compact(4)
    log.close()
    # The checkpoint knows seq 4; reopening at that base resumes cleanly.
    reopened = UpdateLog(wal, base_seq=4)
    assert reopened.base == 4 and reopened.head == 6
    assert [r.seq for r in reopened.read(5)] == [5, 6]
    reopened.close()


def test_reopen_past_wal_start_is_refused(tmp_path):
    wal = tmp_path / "wal"
    log = UpdateLog(wal, segment_records=2)
    for i in range(6):
        log.append("insert", i, i + 1)
    log.compact(4)
    log.close()
    # Claiming a checkpoint at seq 2 when records 3..4 are gone must fail
    # loudly instead of silently skipping events.
    with pytest.raises(ClusterError, match="checkpoint"):
        UpdateLog(wal, base_seq=2)


def test_checkpoint_roundtrip(tmp_path):
    oracle = DynamicHCL.build(grid_graph(3, 3), landmarks=[4])
    oracle.insert_edge(0, 8)
    path = tmp_path / "checkpoint.json.gz"
    write_checkpoint(oracle, path, log_seq=17)
    restored, seq = restore_checkpoint(path)
    assert seq == 17
    assert restored.labelling == oracle.labelling
    assert restored.query(0, 8) == 1
    # No stray temp file left behind.
    assert [p.name for p in tmp_path.iterdir()] == ["checkpoint.json.gz"]


def test_checkpoint_from_snapshot_matches_oracle(tmp_path):
    oracle = DynamicHCL.build(grid_graph(3, 3), landmarks=[4])
    snap = oracle.snapshot()
    direct = tmp_path / "direct.json"
    pinned = tmp_path / "pinned.json"
    write_checkpoint(oracle, direct, log_seq=3)
    write_checkpoint(snap, pinned, log_seq=3)
    assert direct.read_bytes() == pinned.read_bytes()
    # The pinned file reflects the snapshot even after later mutations.
    oracle.insert_edge(0, 8)
    restored, _ = restore_checkpoint(pinned)
    assert restored.query(0, 8) == 4


def test_plain_save_oracle_restores_at_seq_zero(tmp_path):
    from repro.utils.serialization import save_oracle

    oracle = DynamicHCL.build(grid_graph(3, 3), landmarks=[4])
    path = tmp_path / "plain.json.gz"
    save_oracle(oracle, path)
    _, seq = restore_checkpoint(path)
    assert seq == 0


def test_wal_segment_format_is_plain_ndjson(tmp_path):
    wal = tmp_path / "wal"
    log = UpdateLog(wal)
    log.append("insert", 7, 9)
    log.close()
    segment = next(iter(wal.iterdir()))
    lines = segment.read_text().splitlines()
    assert [json.loads(line) for line in lines] == [[1, "insert", 7, 9]]
