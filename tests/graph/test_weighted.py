"""Unit tests for the weighted dynamic graph."""

import pytest

from repro.exceptions import (
    EdgeExistsError,
    EdgeNotFoundError,
    SelfLoopError,
    VertexNotFoundError,
)
from repro.graph.weighted import WeightedGraph


class TestStructure:
    def test_from_edges_and_weight_lookup(self):
        g = WeightedGraph.from_edges([(0, 1, 2.5), (1, 2, 1.0)])
        assert g.weight(0, 1) == 2.5
        assert g.weight(1, 0) == 2.5
        assert g.num_edges == 2

    def test_weight_missing_edge(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0)])
        g.add_vertex(2)
        with pytest.raises(EdgeNotFoundError):
            g.weight(0, 2)

    def test_edges_iterate_once_with_weight(self):
        g = WeightedGraph.from_edges([(0, 1, 3.0), (1, 2, 4.0)])
        assert sorted(g.edges()) == [(0, 1, 3.0), (1, 2, 4.0)]

    def test_neighbors_are_pairs(self):
        g = WeightedGraph.from_edges([(0, 1, 3.0)])
        assert g.neighbors(0) == [(1, 3.0)]

    def test_neighbors_unknown_vertex(self):
        with pytest.raises(VertexNotFoundError):
            WeightedGraph().neighbors(0)


class TestMutation:
    def test_zero_weight_rejected(self):
        g = WeightedGraph([0, 1])
        with pytest.raises(ValueError):
            g.add_edge(0, 1, 0.0)

    def test_negative_weight_rejected(self):
        g = WeightedGraph([0, 1])
        with pytest.raises(ValueError):
            g.add_edge(0, 1, -2.0)

    def test_self_loop_rejected(self):
        g = WeightedGraph([0])
        with pytest.raises(SelfLoopError):
            g.add_edge(0, 0, 1.0)

    def test_duplicate_rejected(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0)])
        with pytest.raises(EdgeExistsError):
            g.add_edge(1, 0, 2.0)

    def test_missing_vertex_rejected(self):
        g = WeightedGraph([0])
        with pytest.raises(VertexNotFoundError):
            g.add_edge(0, 5, 1.0)

    def test_remove_edge(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0), (1, 2, 2.0)])
        g.remove_edge(1, 0)
        assert not g.has_edge(0, 1)
        assert g.num_edges == 1

    def test_remove_missing_edge(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0)])
        g.add_vertex(2)
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(0, 2)

    def test_weights_coerced_to_float(self):
        g = WeightedGraph([0, 1])
        g.add_edge(0, 1, 3)
        assert g.weight(0, 1) == 3.0
        assert isinstance(g.weight(0, 1), float)

    def test_copy_independent(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0)])
        clone = g.copy()
        clone.remove_edge(0, 1)
        assert g.has_edge(0, 1)

    def test_average_degree(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
        assert g.average_degree() == pytest.approx(4 / 3)
