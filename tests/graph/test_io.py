"""Tests for edge-list I/O (SNAP/KONECT-style files)."""

import pytest

from repro.exceptions import GraphError
from repro.graph.generators import erdos_renyi
from repro.graph.io import (
    read_directed_edge_list,
    read_edge_list,
    read_weighted_edge_list,
    write_edge_list,
    write_weighted_edge_list,
)
from repro.graph.weighted import WeightedGraph


class TestUndirected:
    def test_roundtrip(self, tmp_path):
        g = erdos_renyi(20, 40, rng=5)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert sorted(back.edges()) == sorted(g.edges())

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n% another\n\n0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_duplicate_edges_normalised(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 0\n0 1\n")
        g = read_edge_list(path)
        assert g.num_edges == 1

    def test_duplicate_edges_strict(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 0\n")
        with pytest.raises(GraphError):
            read_edge_list(path, deduplicate=False)

    def test_self_loops_dropped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 0\n0 1\n")
        assert read_edge_list(path).num_edges == 1

    def test_self_loops_strict(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 0\n")
        with pytest.raises(GraphError):
            read_edge_list(path, drop_self_loops=False)

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\n")
        with pytest.raises(GraphError, match="expected at least 2"):
            read_edge_list(path)

    def test_extra_fields_tolerated(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 1597536000\n")  # SNAP timestamped edge list
        assert read_edge_list(path).num_edges == 1


class TestDirected:
    def test_direction_preserved(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 0\n2 0\n")
        g = read_directed_edge_list(path)
        assert g.num_edges == 3
        assert g.has_edge(0, 1) and g.has_edge(1, 0) and g.has_edge(2, 0)

    def test_duplicates_and_loops_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n0 1\n2 2\n")
        g = read_directed_edge_list(path)
        assert g.num_edges == 1


class TestWeighted:
    def test_roundtrip(self, tmp_path):
        g = WeightedGraph.from_edges([(0, 1, 2.5), (1, 2, 1.25)])
        path = tmp_path / "g.txt"
        write_weighted_edge_list(g, path)
        back = read_weighted_edge_list(path)
        assert sorted(back.edges()) == sorted(g.edges())

    def test_missing_weight_field(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        with pytest.raises(GraphError):
            read_weighted_edge_list(path)


class TestGzipRoundTrip:
    def test_undirected_gzip_roundtrip(self, tmp_path):
        from repro.graph.io import read_edge_list, write_edge_list
        from tests.conftest import random_connected_graph

        graph = random_connected_graph(14)
        path = tmp_path / "graph.txt.gz"
        write_edge_list(graph, path)
        import gzip

        with gzip.open(path, "rt") as handle:
            assert handle.readline().startswith("#")
        restored = read_edge_list(path)
        assert sorted(restored.edges()) == sorted(graph.edges())

    def test_weighted_gzip_roundtrip(self, tmp_path):
        from repro.graph.io import read_weighted_edge_list, write_weighted_edge_list
        from repro.graph.weighted import WeightedGraph

        graph = WeightedGraph.from_edges([(0, 1, 1.5), (1, 2, 2.25)])
        path = tmp_path / "weighted.txt.gz"
        write_weighted_edge_list(graph, path)
        restored = read_weighted_edge_list(path)
        assert sorted(restored.edges()) == sorted(graph.edges())

    def test_plain_files_still_work(self, tmp_path):
        from repro.graph.io import read_edge_list, write_edge_list
        from repro.graph.dynamic_graph import DynamicGraph

        graph = DynamicGraph.from_edges([(0, 1), (1, 2)])
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path)
        assert path.read_text().startswith("#")
        assert sorted(read_edge_list(path).edges()) == [(0, 1), (1, 2)]
