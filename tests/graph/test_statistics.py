"""Tests for the graph statistics behind Table 2."""

import pytest

from repro.exceptions import GraphError
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import grid_graph, ring_of_cliques
from repro.graph.statistics import (
    average_distance,
    connected_components,
    degree_histogram,
    largest_component_fraction,
    summarize,
)


class TestComponents:
    def test_single_component(self):
        assert connected_components(grid_graph(2, 3)) == [[0, 1, 2, 3, 4, 5]]

    def test_multiple_components_sorted_by_size(self):
        g = DynamicGraph.from_edges([(0, 1), (1, 2), (3, 4)], num_vertices=6)
        comps = connected_components(g)
        assert comps == [[0, 1, 2], [3, 4], [5]]

    def test_largest_component_fraction(self):
        g = DynamicGraph.from_edges([(0, 1), (1, 2), (3, 4)], num_vertices=6)
        assert largest_component_fraction(g) == pytest.approx(0.5)

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            largest_component_fraction(DynamicGraph())


class TestAverageDistance:
    def test_exact_on_path(self, path_graph):
        # pairs (ordered) distances: each unordered pair counted twice, mean
        # = (4*1 + 3*2 + 2*3 + 1*4) / 10 = 2.0
        assert average_distance(path_graph) == pytest.approx(2.0)

    def test_sampled_close_to_exact(self):
        g = ring_of_cliques(6, 5)
        exact = average_distance(g)
        sampled = average_distance(g, num_sources=15, rng=3)
        assert sampled == pytest.approx(exact, rel=0.35)

    def test_disconnected_pairs_ignored(self):
        g = DynamicGraph.from_edges([(0, 1)], num_vertices=3)
        assert average_distance(g) == pytest.approx(1.0)

    def test_isolated_vertices_only(self):
        g = DynamicGraph(range(3))
        assert average_distance(g) == 0.0

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            average_distance(DynamicGraph())


class TestDegreeHistogram:
    def test_histogram_counts(self, path_graph):
        assert degree_histogram(path_graph) == {1: 2, 2: 3}

    def test_histogram_total(self):
        g = grid_graph(3, 3)
        hist = degree_histogram(g)
        assert sum(hist.values()) == g.num_vertices


class TestSummarize:
    def test_summary_fields(self):
        g = grid_graph(4, 4)
        s = summarize(g, num_sources=None)
        assert s.num_vertices == 16
        assert s.num_edges == 24
        assert s.average_degree == pytest.approx(3.0)
        assert s.average_distance > 0

    def test_as_row_keys(self):
        g = grid_graph(2, 2)
        row = summarize(g, num_sources=None).as_row()
        assert set(row) == {"|V|", "|E|", "avg. deg", "avg. dist"}


class TestEffectiveDiameter:
    def test_path_graph_exact(self):
        from repro.graph.statistics import effective_diameter

        # Path 0-1-2-3-4: pair distance counts 1:8, 2:6, 3:4, 4:2 (ordered
        # pairs over all sources).  90% of 20 = 18 → inside the d=3 step.
        graph = DynamicGraph.from_edges([(i, i + 1) for i in range(4)])
        d = effective_diameter(graph, percentile=0.9, num_sources=None)
        assert 2.0 < d <= 4.0

    def test_star_graph(self):
        from repro.graph.statistics import effective_diameter

        graph = DynamicGraph.from_edges([(0, i) for i in range(1, 10)])
        # Leaf-leaf pairs dominate at distance 2.
        d = effective_diameter(graph, percentile=0.9, num_sources=None)
        assert 1.0 < d <= 2.0

    def test_monotone_in_percentile(self):
        from repro.graph.statistics import effective_diameter

        graph = DynamicGraph.from_edges([(i, i + 1) for i in range(9)])
        d50 = effective_diameter(graph, percentile=0.5, num_sources=None)
        d95 = effective_diameter(graph, percentile=0.95, num_sources=None)
        assert d50 < d95

    def test_invalid_percentile(self):
        from repro.graph.statistics import effective_diameter

        graph = DynamicGraph.from_edges([(0, 1)])
        with pytest.raises(GraphError):
            effective_diameter(graph, percentile=1.5)

    def test_edgeless_graph(self):
        from repro.graph.statistics import effective_diameter

        graph = DynamicGraph([0, 1, 2])
        assert effective_diameter(graph, num_sources=None) == 0.0


class TestClusteringCoefficient:
    def test_triangle_is_fully_clustered(self):
        from repro.graph.statistics import clustering_coefficient

        graph = DynamicGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        assert clustering_coefficient(graph, num_samples=None) == 1.0

    def test_star_has_zero_clustering(self):
        from repro.graph.statistics import clustering_coefficient

        graph = DynamicGraph.from_edges([(0, i) for i in range(1, 6)])
        assert clustering_coefficient(graph, num_samples=None) == 0.0

    def test_triangle_with_tail(self):
        from repro.graph.statistics import clustering_coefficient

        # Triangle 0-1-2 plus tail 2-3: vertices 0,1 have C=1, vertex 2
        # has C=1/3 (one closed wedge of three); 3 has degree 1 (skipped).
        graph = DynamicGraph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        expected = (1.0 + 1.0 + 1.0 / 3.0) / 3.0
        assert clustering_coefficient(graph, num_samples=None) == pytest.approx(
            expected
        )

    def test_degree_one_graph(self):
        from repro.graph.statistics import clustering_coefficient

        graph = DynamicGraph.from_edges([(0, 1)])
        assert clustering_coefficient(graph, num_samples=None) == 0.0

    def test_sampling_is_deterministic(self):
        from repro.graph.generators import powerlaw_cluster
        from repro.graph.statistics import clustering_coefficient

        graph = powerlaw_cluster(300, 3, 0.5, rng=4)
        a = clustering_coefficient(graph, num_samples=50, rng=9)
        b = clustering_coefficient(graph, num_samples=50, rng=9)
        assert a == b
        assert 0.0 < a < 1.0
