"""Tests for the CSR snapshot and its vectorized BFS fast path."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import GraphError, VertexNotFoundError
from repro.graph.csr import CSRGraph, _gather_neighbors
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import erdos_renyi, grid_graph, ring_of_cliques
from repro.graph.traversal import bfs_distances

from tests.conftest import random_connected_graph, reference_bfs


class TestConstruction:
    def test_from_graph_counts(self):
        csr = CSRGraph.from_graph(grid_graph(3, 4))
        assert csr.num_vertices == 12
        assert csr.num_edges == 17
        assert len(csr) == 12

    def test_degree_array_matches_graph(self):
        graph = ring_of_cliques(3, 4)
        csr = CSRGraph.from_graph(graph)
        for v in graph.vertices():
            assert csr.degree_array()[csr.index(v)] == graph.degree(v)

    def test_degree_array_sums_to_twice_edges(self):
        csr = CSRGraph.from_graph(random_connected_graph(7))
        assert int(csr.degree_array().sum()) == 2 * csr.num_edges

    def test_neighbors_match_graph(self):
        graph = random_connected_graph(11)
        csr = CSRGraph.from_graph(graph)
        for v in graph.vertices():
            compact = {csr.vertex(int(i)) for i in csr.neighbors(csr.index(v))}
            assert compact == set(graph.neighbors(v))

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph.from_graph(DynamicGraph())

    def test_non_contiguous_ids(self):
        graph = DynamicGraph.from_edges([(5, 100), (100, 7), (7, 5)])
        csr = CSRGraph.from_graph(graph)
        assert csr.num_vertices == 3
        assert sorted(int(v) for v in csr.ids) == [5, 7, 100]
        assert csr.vertex(csr.index(100)) == 100
        dist = csr.bfs(5)
        assert dist[csr.index(100)] == 1

    def test_isolated_vertices_survive(self):
        graph = DynamicGraph([0, 1, 2])
        graph.add_edge(0, 1)
        csr = CSRGraph.from_graph(graph)
        dist = csr.bfs(2)
        assert dist[csr.index(2)] == 0
        assert dist[csr.index(0)] == -1
        assert dist[csr.index(1)] == -1

    def test_from_edges(self):
        csr = CSRGraph.from_edges([(0, 1), (1, 2)], num_vertices=4)
        assert csr.num_vertices == 4
        assert csr.num_edges == 2
        assert csr.bfs(0)[csr.index(3)] == -1

    def test_from_edges_empty_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges([])

    def test_from_edges_isolated_only(self):
        csr = CSRGraph.from_edges([], num_vertices=3)
        assert csr.num_vertices == 3
        assert csr.num_edges == 0
        assert list(csr.bfs(1)) == [-1, 0, -1]

    def test_unknown_vertex_raises(self):
        csr = CSRGraph.from_graph(grid_graph(2, 2))
        with pytest.raises(VertexNotFoundError):
            csr.index(99)
        with pytest.raises(VertexNotFoundError):
            csr.bfs(99)

    def test_contains(self):
        csr = CSRGraph.from_graph(grid_graph(2, 2))
        assert 0 in csr
        assert 99 not in csr


class TestGather:
    def test_gather_empty_frontier_vertex(self):
        graph = DynamicGraph([0, 1])
        graph.add_edge(0, 1)
        csr = CSRGraph.from_graph(graph)
        sources, neighbours = _gather_neighbors(
            csr.indptr, csr.indices, np.array([csr.index(0)], dtype=np.int64)
        )
        assert list(sources) == [csr.index(0)]
        assert list(neighbours) == [csr.index(1)]

    def test_gather_all_isolated(self):
        graph = DynamicGraph([0, 1, 2])
        csr = CSRGraph.from_graph(graph)
        sources, neighbours = _gather_neighbors(
            csr.indptr, csr.indices, np.arange(3, dtype=np.int64)
        )
        assert sources.size == 0
        assert neighbours.size == 0

    def test_gather_sources_align_with_neighbours(self):
        graph = random_connected_graph(3)
        csr = CSRGraph.from_graph(graph)
        frontier = np.arange(csr.num_vertices, dtype=np.int64)
        sources, neighbours = _gather_neighbors(csr.indptr, csr.indices, frontier)
        for s, t in zip(sources, neighbours):
            assert graph.has_edge(csr.vertex(int(s)), csr.vertex(int(t)))
        assert sources.size == 2 * csr.num_edges


class TestBFS:
    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_bfs_matches_reference_connected(self, seed):
        graph = random_connected_graph(seed)
        csr = CSRGraph.from_graph(graph)
        source = next(iter(graph.vertices()))
        expected = reference_bfs(graph, source)
        dist = csr.bfs(source)
        for v in graph.vertices():
            got = int(dist[csr.index(v)])
            assert got == expected.get(v, -1)

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_bfs_matches_reference_disconnected(self, seed):
        import random

        rng = random.Random(seed)
        n = rng.randint(6, 25)
        graph = erdos_renyi(n, max(1, n // 2), rng=rng)
        csr = CSRGraph.from_graph(graph)
        source = rng.randrange(n)
        expected = reference_bfs(graph, source)
        dist = csr.bfs(source)
        for v in graph.vertices():
            got = int(dist[csr.index(v)])
            assert got == expected.get(v, -1)

    def test_bfs_many_stacks_rows(self):
        graph = grid_graph(3, 3)
        csr = CSRGraph.from_graph(graph)
        stacked = csr.bfs_many([0, 8])
        assert stacked.shape == (2, 9)
        assert (stacked[0] == csr.bfs(0)).all()
        assert (stacked[1] == csr.bfs(8)).all()

    def test_bfs_many_empty(self):
        csr = CSRGraph.from_graph(grid_graph(2, 2))
        assert csr.bfs_many([]).shape == (0, 4)

    def test_multi_source_is_min_over_rows(self):
        graph = random_connected_graph(13)
        csr = CSRGraph.from_graph(graph)
        sources = sorted(graph.vertices())[:3]
        combined = csr.multi_source_bfs(sources)
        rows = csr.bfs_many(sources)
        for i in range(csr.num_vertices):
            finite = [int(r[i]) for r in rows if r[i] >= 0]
            assert int(combined[i]) == (min(finite) if finite else -1)

    def test_multi_source_requires_sources(self):
        csr = CSRGraph.from_graph(grid_graph(2, 2))
        with pytest.raises(GraphError):
            csr.multi_source_bfs([])

    def test_distances_from_matches_traversal(self):
        graph = random_connected_graph(17)
        csr = CSRGraph.from_graph(graph)
        source = next(iter(graph.vertices()))
        assert csr.distances_from(source) == bfs_distances(graph, source)

    def test_eccentricity(self):
        csr = CSRGraph.from_graph(grid_graph(3, 3))
        assert csr.eccentricity(0) == 4
        assert csr.eccentricity(4) == 2
