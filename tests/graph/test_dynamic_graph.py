"""Unit tests for the undirected dynamic graph substrate."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import (
    EdgeExistsError,
    EdgeNotFoundError,
    SelfLoopError,
    VertexNotFoundError,
)
from repro.graph.dynamic_graph import DynamicGraph


class TestConstruction:
    def test_empty_graph(self):
        g = DynamicGraph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.vertices()) == []
        assert list(g.edges()) == []

    def test_pre_registered_vertices(self):
        g = DynamicGraph(range(5))
        assert g.num_vertices == 5
        assert g.num_edges == 0

    def test_from_edges(self):
        g = DynamicGraph.from_edges([(0, 1), (1, 2)])
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_from_edges_with_isolated_vertices(self):
        g = DynamicGraph.from_edges([(0, 1)], num_vertices=5)
        assert g.num_vertices == 5
        assert g.degree(4) == 0

    def test_from_edges_rejects_duplicates(self):
        with pytest.raises(EdgeExistsError):
            DynamicGraph.from_edges([(0, 1), (1, 0)])

    def test_copy_is_independent(self):
        g = DynamicGraph.from_edges([(0, 1)])
        clone = g.copy()
        clone.add_vertex(9)
        clone.add_edge(0, 9)
        assert g.num_vertices == 2
        assert g.num_edges == 1
        assert clone.num_edges == 2


class TestVertices:
    def test_add_vertex_new(self):
        g = DynamicGraph()
        assert g.add_vertex(3) is True
        assert g.has_vertex(3)

    def test_add_vertex_existing_is_noop(self):
        g = DynamicGraph([1])
        assert g.add_vertex(1) is False
        assert g.num_vertices == 1

    def test_add_vertex_rejects_negative(self):
        with pytest.raises(ValueError):
            DynamicGraph().add_vertex(-1)

    def test_add_vertex_rejects_non_int(self):
        with pytest.raises(TypeError):
            DynamicGraph().add_vertex("a")

    def test_add_vertex_rejects_bool(self):
        with pytest.raises(TypeError):
            DynamicGraph().add_vertex(True)

    def test_contains_and_len(self):
        g = DynamicGraph([0, 1, 2])
        assert 1 in g
        assert 7 not in g
        assert len(g) == 3

    def test_neighbors_unknown_vertex(self):
        with pytest.raises(VertexNotFoundError):
            DynamicGraph().neighbors(0)

    def test_degree_unknown_vertex(self):
        with pytest.raises(VertexNotFoundError):
            DynamicGraph().degree(0)

    def test_max_vertex_id(self):
        g = DynamicGraph([3, 17, 5])
        assert g.max_vertex_id() == 17
        assert DynamicGraph().max_vertex_id() == -1


class TestEdges:
    def test_add_edge_symmetric(self):
        g = DynamicGraph([0, 1])
        g.add_edge(0, 1)
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert g.neighbors(0) == [1]
        assert g.neighbors(1) == [0]

    def test_add_edge_missing_endpoint(self):
        g = DynamicGraph([0])
        with pytest.raises(VertexNotFoundError):
            g.add_edge(0, 1)
        with pytest.raises(VertexNotFoundError):
            g.add_edge(1, 0)

    def test_add_edge_rejects_self_loop(self):
        g = DynamicGraph([0])
        with pytest.raises(SelfLoopError):
            g.add_edge(0, 0)

    def test_add_edge_rejects_duplicate(self):
        g = DynamicGraph.from_edges([(0, 1)])
        with pytest.raises(EdgeExistsError):
            g.add_edge(0, 1)
        with pytest.raises(EdgeExistsError):
            g.add_edge(1, 0)

    def test_edges_iterates_each_once(self):
        g = DynamicGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        assert sorted(g.edges()) == [(0, 1), (0, 2), (1, 2)]

    def test_has_edge_unknown_vertices(self):
        assert DynamicGraph().has_edge(0, 1) is False

    def test_remove_edge(self):
        g = DynamicGraph.from_edges([(0, 1), (1, 2)])
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.num_edges == 1

    def test_remove_missing_edge(self):
        g = DynamicGraph.from_edges([(0, 1)])
        g.add_vertex(2)
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(0, 2)

    def test_remove_edge_unknown_vertex(self):
        g = DynamicGraph.from_edges([(0, 1)])
        with pytest.raises(VertexNotFoundError):
            g.remove_edge(0, 99)


class TestVertexInsertion:
    def test_insert_vertex_returns_edge_list(self):
        g = DynamicGraph.from_edges([(0, 1), (1, 2)])
        inserted = g.insert_vertex(7, [0, 2])
        assert inserted == [(7, 0), (7, 2)]
        assert g.degree(7) == 2

    def test_insert_vertex_existing_vertex(self):
        g = DynamicGraph([0, 1])
        with pytest.raises(ValueError):
            g.insert_vertex(0, [1])

    def test_insert_vertex_unknown_neighbor(self):
        g = DynamicGraph([0])
        with pytest.raises(VertexNotFoundError):
            g.insert_vertex(5, [3])

    def test_insert_vertex_duplicate_neighbors(self):
        g = DynamicGraph([0, 1])
        with pytest.raises(ValueError):
            g.insert_vertex(5, [0, 0])

    def test_insert_vertex_self_neighbor(self):
        g = DynamicGraph([0])
        with pytest.raises(SelfLoopError):
            g.insert_vertex(5, [5, 0])

    def test_insert_vertex_no_neighbors(self):
        g = DynamicGraph([0])
        assert g.insert_vertex(5, []) == []
        assert g.degree(5) == 0


class TestDerived:
    def test_average_degree(self):
        g = DynamicGraph.from_edges([(0, 1), (1, 2)])
        assert g.average_degree() == pytest.approx(4 / 3)

    def test_average_degree_empty(self):
        assert DynamicGraph().average_degree() == 0.0


@given(st.integers(2, 30), st.randoms(use_true_random=False))
def test_edge_count_matches_adjacency(n, rng):
    """num_edges always equals half the adjacency list lengths."""
    g = DynamicGraph(range(n))
    for _ in range(3 * n):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
    assert sum(g.degree(v) for v in g.vertices()) == 2 * g.num_edges
    assert len(list(g.edges())) == g.num_edges


@given(st.integers(2, 20), st.randoms(use_true_random=False))
def test_insert_then_remove_roundtrip(n, rng):
    """Removing a just-inserted edge restores the previous edge set."""
    g = DynamicGraph(range(n))
    for _ in range(2 * n):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
    before = sorted(g.edges())
    candidates = [
        (u, v) for u in range(n) for v in range(u + 1, n) if not g.has_edge(u, v)
    ]
    if candidates:
        u, v = candidates[0]
        g.add_edge(u, v)
        g.remove_edge(u, v)
    assert sorted(g.edges()) == before
