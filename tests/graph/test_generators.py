"""Tests for the synthetic network generators (dataset substrate)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import GraphError
from repro.graph.generators import (
    barabasi_albert,
    community_web_graph,
    ensure_connected,
    erdos_renyi,
    grid_graph,
    powerlaw_cluster,
    random_tree,
    ring_of_cliques,
    watts_strogatz,
)
from repro.graph.statistics import connected_components
from repro.graph.traversal import bfs_distances


class TestErdosRenyi:
    def test_exact_counts(self):
        g = erdos_renyi(40, 100, rng=0)
        assert g.num_vertices == 40
        assert g.num_edges == 100

    def test_deterministic_with_seed(self):
        a = erdos_renyi(30, 60, rng=7)
        b = erdos_renyi(30, 60, rng=7)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_different_seeds_differ(self):
        a = erdos_renyi(30, 60, rng=1)
        b = erdos_renyi(30, 60, rng=2)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_too_many_edges_rejected(self):
        with pytest.raises(GraphError):
            erdos_renyi(4, 7, rng=0)

    def test_complete_graph_possible(self):
        g = erdos_renyi(5, 10, rng=0)
        assert g.num_edges == 10

    def test_zero_edges(self):
        g = erdos_renyi(5, 0, rng=0)
        assert g.num_edges == 0


class TestBarabasiAlbert:
    def test_connected_and_sized(self):
        g = barabasi_albert(200, attach=3, rng=1)
        assert g.num_vertices == 200
        assert len(connected_components(g)) == 1
        # every non-seed vertex contributes exactly `attach` edges
        assert g.num_edges == 3 + (200 - 4) * 3

    def test_heavy_tail(self):
        g = barabasi_albert(500, attach=2, rng=3)
        degrees = sorted((g.degree(v) for v in g.vertices()), reverse=True)
        # hubs dominate: top vertex far above the median
        assert degrees[0] >= 5 * degrees[len(degrees) // 2]

    def test_invalid_parameters(self):
        with pytest.raises(GraphError):
            barabasi_albert(3, attach=3, rng=0)
        with pytest.raises(GraphError):
            barabasi_albert(10, attach=0, rng=0)


class TestWattsStrogatz:
    def test_degree_preserved_in_expectation(self):
        g = watts_strogatz(100, k=6, beta=0.0, rng=0)
        assert g.num_edges == 300
        assert all(g.degree(v) == 6 for v in g.vertices())

    def test_rewiring_changes_structure(self):
        lattice = watts_strogatz(100, k=6, beta=0.0, rng=0)
        rewired = watts_strogatz(100, k=6, beta=0.5, rng=0)
        assert sorted(lattice.edges()) != sorted(rewired.edges())
        assert rewired.num_edges == lattice.num_edges

    def test_odd_k_rejected(self):
        with pytest.raises(GraphError):
            watts_strogatz(10, k=3, beta=0.1, rng=0)

    def test_bad_beta_rejected(self):
        with pytest.raises(GraphError):
            watts_strogatz(10, k=2, beta=1.5, rng=0)

    def test_k_too_large_rejected(self):
        with pytest.raises(GraphError):
            watts_strogatz(4, k=4, beta=0.0, rng=0)


class TestPowerlawCluster:
    def test_size_and_connectivity(self):
        g = powerlaw_cluster(150, attach=3, triangle_prob=0.5, rng=2)
        assert g.num_vertices == 150
        assert len(connected_components(g)) == 1

    def test_invalid_probability(self):
        with pytest.raises(GraphError):
            powerlaw_cluster(10, attach=2, triangle_prob=1.5, rng=0)

    def test_more_triangles_than_ba(self):
        def triangle_count(g):
            count = 0
            for u, v in g.edges():
                nu = set(g.neighbors(u))
                count += sum(1 for w in g.neighbors(v) if w in nu)
            return count

        ba = barabasi_albert(300, attach=3, rng=5)
        hk = powerlaw_cluster(300, attach=3, triangle_prob=0.9, rng=5)
        assert triangle_count(hk) > triangle_count(ba)


class TestCommunityWebGraph:
    def test_structure(self):
        g = community_web_graph(
            400, community_size=50, intra_attach=3,
            inter_edges_per_community=2, rng=4,
        )
        assert g.num_vertices == 400
        assert len(connected_components(g)) == 1

    def test_high_average_distance(self):
        """The web stand-in must have a larger diameter than a comparable
        BA graph — the property Table 2's avg-dist column hinges on."""
        web = community_web_graph(
            600, community_size=30, intra_attach=3,
            inter_edges_per_community=2, rng=1,
        )
        ba = barabasi_albert(600, attach=3, rng=1)
        web_ecc = max(bfs_distances(web, 0).values())
        ba_ecc = max(bfs_distances(ba, 0).values())
        assert web_ecc > ba_ecc

    def test_invalid_parameters(self):
        with pytest.raises(GraphError):
            community_web_graph(100, community_size=3, intra_attach=3,
                                inter_edges_per_community=1, rng=0)
        with pytest.raises(GraphError):
            community_web_graph(10, community_size=50, intra_attach=3,
                                inter_edges_per_community=1, rng=0)


class TestDeterministicShapes:
    def test_ring_of_cliques_distances(self):
        g = ring_of_cliques(4, 4)
        assert g.num_vertices == 16
        dist = bfs_distances(g, 0)
        assert dist[1] == 1  # same clique
        # opposite clique needs two bridge hops plus intra steps
        assert dist[8] >= 2

    def test_ring_of_cliques_invalid(self):
        with pytest.raises(GraphError):
            ring_of_cliques(0, 3)

    def test_random_tree_is_tree(self):
        g = random_tree(50, rng=9)
        assert g.num_edges == 49
        assert len(connected_components(g)) == 1

    def test_random_tree_single_vertex(self):
        g = random_tree(1, rng=0)
        assert g.num_vertices == 1
        assert g.num_edges == 0

    def test_grid_distances(self):
        g = grid_graph(3, 4)
        dist = bfs_distances(g, 0)
        assert dist[11] == 5  # manhattan distance to opposite corner

    def test_grid_invalid(self):
        with pytest.raises(GraphError):
            grid_graph(0, 5)


class TestEnsureConnected:
    def test_connects_components(self):
        g = erdos_renyi(30, 10, rng=0)
        ensure_connected(g, rng=0)
        assert len(connected_components(g)) == 1

    def test_already_connected_unchanged(self):
        g = grid_graph(3, 3)
        edges_before = sorted(g.edges())
        ensure_connected(g, rng=0)
        assert sorted(g.edges()) == edges_before

    @given(st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_always_yields_single_component(self, seed):
        g = erdos_renyi(25, 8, rng=seed)
        ensure_connected(g, rng=seed)
        assert len(connected_components(g)) == 1


class TestForestFire:
    def test_connected_and_sized(self):
        from repro.graph.generators import forest_fire
        from repro.graph.statistics import connected_components

        graph = forest_fire(200, forward_prob=0.3, rng=3)
        assert graph.num_vertices == 200
        assert len(connected_components(graph)) == 1
        assert graph.num_edges >= 199  # at least a spanning structure

    def test_deterministic_under_seed(self):
        from repro.graph.generators import forest_fire

        a = forest_fire(80, forward_prob=0.4, rng=9)
        b = forest_fire(80, forward_prob=0.4, rng=9)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_densifies_with_forward_prob(self):
        from repro.graph.generators import forest_fire

        sparse = forest_fire(300, forward_prob=0.05, rng=5)
        dense = forest_fire(300, forward_prob=0.6, rng=5)
        assert dense.num_edges > sparse.num_edges

    def test_zero_forward_prob_is_tree(self):
        from repro.graph.generators import forest_fire

        graph = forest_fire(60, forward_prob=0.0, rng=2)
        assert graph.num_edges == 59  # each arrival links only its ambassador

    def test_burn_cap_respected(self):
        from repro.graph.generators import forest_fire

        graph = forest_fire(120, forward_prob=0.9, rng=4, max_burn=5)
        degrees = [graph.degree(v) for v in graph.vertices()]
        # New arrivals link at most max_burn vertices; hubs can still grow
        # by later fires, but the minimum arrival degree is bounded.
        assert min(degrees) >= 1

    def test_parameter_validation(self):
        from repro.exceptions import GraphError
        from repro.graph.generators import forest_fire

        with pytest.raises(GraphError):
            forest_fire(1)
        with pytest.raises(GraphError):
            forest_fire(10, forward_prob=1.0)
