"""Unit tests for the directed dynamic graph."""

import pytest

from repro.exceptions import (
    EdgeExistsError,
    EdgeNotFoundError,
    SelfLoopError,
    VertexNotFoundError,
)
from repro.graph.digraph import DynamicDiGraph


class TestStructure:
    def test_directed_edge_is_one_way(self):
        g = DynamicDiGraph.from_edges([(0, 1)])
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_out_and_in_neighbors(self):
        g = DynamicDiGraph.from_edges([(0, 1), (2, 1)])
        assert g.out_neighbors(0) == [1]
        assert sorted(g.in_neighbors(1)) == [0, 2]
        assert g.in_neighbors(0) == []

    def test_degrees(self):
        g = DynamicDiGraph.from_edges([(0, 1), (0, 2), (1, 2)])
        assert g.out_degree(0) == 2
        assert g.in_degree(2) == 2
        assert g.in_degree(0) == 0

    def test_both_directions_allowed(self):
        g = DynamicDiGraph.from_edges([(0, 1), (1, 0)])
        assert g.num_edges == 2

    def test_edges_iteration(self):
        g = DynamicDiGraph.from_edges([(1, 0), (0, 1)])
        assert sorted(g.edges()) == [(0, 1), (1, 0)]

    def test_len_and_contains(self):
        g = DynamicDiGraph([0, 1, 2])
        assert len(g) == 3
        assert 2 in g
        assert 5 not in g


class TestMutation:
    def test_duplicate_edge_rejected(self):
        g = DynamicDiGraph.from_edges([(0, 1)])
        with pytest.raises(EdgeExistsError):
            g.add_edge(0, 1)

    def test_self_loop_rejected(self):
        g = DynamicDiGraph([0])
        with pytest.raises(SelfLoopError):
            g.add_edge(0, 0)

    def test_missing_vertex_rejected(self):
        g = DynamicDiGraph([0])
        with pytest.raises(VertexNotFoundError):
            g.add_edge(0, 9)

    def test_remove_edge_directed(self):
        g = DynamicDiGraph.from_edges([(0, 1), (1, 0)])
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.has_edge(1, 0)

    def test_remove_missing_edge(self):
        g = DynamicDiGraph.from_edges([(0, 1)])
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(1, 0)

    def test_vertex_validation(self):
        g = DynamicDiGraph()
        with pytest.raises(TypeError):
            g.add_vertex("x")
        with pytest.raises(ValueError):
            g.add_vertex(-3)


class TestViews:
    def test_reverse_flips_all_edges(self):
        g = DynamicDiGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        rev = g.reverse()
        assert sorted(rev.edges()) == [(1, 0), (2, 0), (2, 1)]
        assert rev.num_edges == g.num_edges

    def test_reverse_is_independent(self):
        g = DynamicDiGraph.from_edges([(0, 1)])
        rev = g.reverse()
        rev.add_edge(0, 1)
        assert g.num_edges == 1

    def test_copy_is_independent(self):
        g = DynamicDiGraph.from_edges([(0, 1)])
        clone = g.copy()
        clone.remove_edge(0, 1)
        assert g.has_edge(0, 1)

    def test_average_degree(self):
        g = DynamicDiGraph.from_edges([(0, 1), (1, 2)])
        assert g.average_degree() == pytest.approx(2 / 3)
        assert DynamicDiGraph().average_degree() == 0.0
