"""Tests for the DynCSR incremental CSR overlay."""

import random

import numpy as np
import pytest

from repro.exceptions import GraphError, VertexNotFoundError
from repro.graph.csr import CSRGraph
from repro.graph.dyncsr import UNREACH, DynCSR
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.generators import erdos_renyi, grid_graph

from tests.conftest import reference_bfs, non_edges, random_connected_graph


def assert_bfs_matches(graph: DynamicGraph, dyn: DynCSR, sources=None):
    """Every BFS over the overlay must equal the dict reference."""
    vertices = sorted(graph.vertices())
    for s in sources if sources is not None else vertices[:5]:
        ref = reference_bfs(graph, s)
        got = dyn.bfs_compact(dyn.index(s))
        for i in range(dyn.num_vertices):
            vid = dyn.vertex(i)
            expected = ref.get(vid)
            if expected is None:
                assert got[i] == UNREACH
            else:
                assert got[i] == expected


class TestSnapshot:
    def test_layout_matches_csrgraph(self):
        graph = random_connected_graph(7)
        dyn = DynCSR.from_graph(graph)
        csr = CSRGraph.from_graph(graph)
        assert np.array_equal(dyn.ids, csr.ids)
        for v in graph.vertices():
            assert dyn.index(v) == csr.index(v)
            assert sorted(dyn.neighbors_compact(dyn.index(v)).tolist()) == sorted(
                csr.neighbors(csr.index(v)).tolist()
            )
        assert dyn.num_edges == graph.num_edges
        assert dyn.num_delta_edges == 0

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            DynCSR.from_graph(DynamicGraph())

    def test_membership_and_mapping(self):
        graph = grid_graph(3, 3)
        dyn = DynCSR.from_graph(graph)
        assert 4 in dyn
        assert 99 not in dyn
        assert len(dyn) == 9
        assert dyn.vertex(dyn.index(7)) == 7
        with pytest.raises(VertexNotFoundError):
            dyn.index(1234)


class TestInsertions:
    def test_bfs_stays_exact_across_insertions_and_compactions(self):
        rng = random.Random(11)
        graph = erdos_renyi(50, 100, rng=rng)
        dyn = DynCSR.from_graph(graph)
        vertices = sorted(graph.vertices())
        added = 0
        while added < 300:
            u, v = rng.sample(vertices, 2)
            if graph.has_edge(u, v):
                continue
            graph.add_edge(u, v)
            dyn.insert_edge(u, v)
            added += 1
            if added % 60 == 0:
                assert_bfs_matches(graph, dyn, sources=vertices[:3])
        # the 300 insertions must have crossed the compaction threshold
        assert dyn.num_edges == graph.num_edges
        assert_bfs_matches(graph, dyn)

    def test_batch_insert_equals_one_at_a_time(self):
        graph_a = random_connected_graph(9)
        graph_b = graph_a.copy()
        dyn_a = DynCSR.from_graph(graph_a)
        dyn_b = DynCSR.from_graph(graph_b)
        batch = non_edges(graph_a)[:6]
        dyn_a.insert_edges_batch(batch)
        for u, v in batch:
            dyn_b.insert_edge(u, v)
        for graph in (graph_a, graph_b):
            for u, v in batch:
                graph.add_edge(u, v)
        assert_bfs_matches(graph_a, dyn_a)
        assert_bfs_matches(graph_b, dyn_b)

    def test_new_vertices_register_lazily(self):
        graph = grid_graph(2, 3)
        dyn = DynCSR.from_graph(graph)
        graph.add_vertex(100)
        graph.add_vertex(101)
        graph.add_edge(100, 101)
        dyn.insert_edge(100, 101)
        graph.add_edge(0, 100)
        dyn.insert_edge(0, 100)
        assert 101 in dyn
        assert dyn.num_vertices == graph.num_vertices
        assert_bfs_matches(graph, dyn)
        dyn.compact()
        assert dyn.num_delta_edges == 0
        assert_bfs_matches(graph, dyn)

    def test_ensure_vertex_rejects_bad_ids(self):
        dyn = DynCSR.from_graph(grid_graph(2, 2))
        with pytest.raises(GraphError):
            dyn.ensure_vertex(-1)
        with pytest.raises(GraphError):
            dyn.ensure_vertex(True)

    def test_explicit_compaction_is_idempotent(self):
        graph = random_connected_graph(8)
        dyn = DynCSR.from_graph(graph)
        extra = non_edges(graph)[:3]
        for u, v in extra:
            graph.add_edge(u, v)
            dyn.insert_edge(u, v)
        dyn.compact()
        before = dyn.neighbors_compact(0).tolist()
        dyn.compact()
        assert dyn.neighbors_compact(0).tolist() == before
        assert dyn.num_delta_edges == 0


class TestDeletions:
    def test_remove_base_edge(self):
        graph = grid_graph(3, 3)
        dyn = DynCSR.from_graph(graph)
        graph.remove_edge(0, 1)
        dyn.remove_edge(0, 1)
        assert dyn.num_edges == graph.num_edges
        assert 1 not in dyn.neighbors_compact(dyn.index(0)).tolist()
        assert_bfs_matches(graph, dyn)

    def test_remove_delta_edge(self):
        graph = grid_graph(3, 3)
        dyn = DynCSR.from_graph(graph)
        graph.add_edge(0, 8)
        dyn.insert_edge(0, 8)
        assert dyn.num_delta_edges == 1
        graph.remove_edge(0, 8)
        dyn.remove_edge(0, 8)
        # The delta-resident edge is gone without ever touching the base.
        assert dyn.num_delta_edges == 0
        assert dyn.num_edges == graph.num_edges
        assert_bfs_matches(graph, dyn)

    def test_remove_absent_edge_raises(self):
        dyn = DynCSR.from_graph(grid_graph(3, 3))
        with pytest.raises(GraphError):
            dyn.remove_edge(0, 8)

    def test_reinsert_after_delete(self):
        graph = grid_graph(3, 3)
        dyn = DynCSR.from_graph(graph)
        for _ in range(3):  # delete/re-insert cycles must be stable
            graph.remove_edge(0, 1)
            dyn.remove_edge(0, 1)
            assert_bfs_matches(graph, dyn, sources=[0])
            graph.add_edge(0, 1)
            dyn.insert_edge(0, 1)
            assert_bfs_matches(graph, dyn, sources=[0])
        assert dyn.num_edges == graph.num_edges

    def test_compact_after_deletions_drops_dead_slots(self):
        rng = random.Random(23)
        graph = erdos_renyi(40, 90, rng=rng)
        dyn = DynCSR.from_graph(graph)
        edges = sorted(graph.edges())
        for u, v in rng.sample(edges, 25):
            graph.remove_edge(u, v)
            dyn.remove_edge(u, v)
        for u, v in non_edges(graph)[:10]:
            graph.add_edge(u, v)
            dyn.insert_edge(u, v)
        dyn.compact()
        assert dyn.num_delta_edges == 0
        assert dyn.num_edges == graph.num_edges
        # Post-compaction adjacency holds exactly the live edges.
        for v in sorted(graph.vertices()):
            assert sorted(
                dyn.vertex(w) for w in dyn.neighbors_compact(dyn.index(v)).tolist()
            ) == sorted(graph.neighbors(v))
        assert_bfs_matches(graph, dyn)

    def test_batch_removal_equals_one_at_a_time(self):
        graph_a = random_connected_graph(31, n_min=12, n_max=20, density=2.5)
        graph_b = graph_a.copy()
        dyn_a = DynCSR.from_graph(graph_a)
        dyn_b = DynCSR.from_graph(graph_b)
        rng = random.Random(31)
        batch = rng.sample(sorted(graph_a.edges()), 6)
        dyn_a.remove_edges_batch(batch)
        for u, v in batch:
            dyn_b.remove_edge(u, v)
        for graph in (graph_a, graph_b):
            for u, v in batch:
                graph.remove_edge(u, v)
        assert_bfs_matches(graph_a, dyn_a)
        assert_bfs_matches(graph_b, dyn_b)
        assert dyn_a.num_edges == dyn_b.num_edges == graph_a.num_edges

    def test_random_mixed_churn_stays_exact(self):
        rng = random.Random(77)
        graph = erdos_renyi(30, 70, rng=rng)
        dyn = DynCSR.from_graph(graph)
        for step in range(200):
            if rng.random() < 0.5 and graph.num_edges > 5:
                u, v = rng.choice(sorted(graph.edges()))
                graph.remove_edge(u, v)
                dyn.remove_edge(u, v)
            else:
                candidates = non_edges(graph)
                if not candidates:
                    continue
                u, v = rng.choice(candidates)
                graph.add_edge(u, v)
                dyn.insert_edge(u, v)
            if step % 40 == 0:
                assert dyn.num_edges == graph.num_edges
                assert_bfs_matches(graph, dyn, sources=sorted(graph.vertices())[:2])
        dyn.compact()
        assert_bfs_matches(graph, dyn)


class TestGather:
    def test_gather_variants_agree(self):
        rng = random.Random(5)
        graph = erdos_renyi(30, 70, rng=rng)
        dyn = DynCSR.from_graph(graph)
        for u, v in non_edges(graph)[:5]:
            graph.add_edge(u, v)
            dyn.insert_edge(u, v)
        frontier = np.array(
            sorted(rng.sample(range(dyn.num_vertices), 10)), dtype=np.int64
        )
        sources, nbrs = dyn.gather(frontier)
        positions, nbrs_p = dyn.gather_with_positions(frontier)
        only = dyn.gather_neighbours(frontier)
        assert sorted(nbrs.tolist()) == sorted(nbrs_p.tolist()) == sorted(only.tolist())
        assert np.array_equal(frontier[positions], sources)
        # pair multiset equals the true adjacency of the frontier
        expected = sorted(
            (int(s), w)
            for s in frontier.tolist()
            for w in dyn.neighbors_compact(s).tolist()
        )
        assert sorted(zip(sources.tolist(), nbrs.tolist())) == expected

    def test_scalar_views_cache_invalidation(self):
        graph = random_connected_graph(6)
        dyn = DynCSR.from_graph(graph)
        views1 = dyn.scalar_views()
        assert dyn.scalar_views() is views1
        u, v = non_edges(graph)[0]
        graph.add_edge(u, v)
        dyn.insert_edge(u, v)
        views2 = dyn.scalar_views()
        assert views2 is not views1
        # views reflect the delta through delta_count
        assert views2[4][dyn.index(u)] >= 1
