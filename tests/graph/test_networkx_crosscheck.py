"""Cross-validation against networkx — an independent reference.

The in-repo reference implementations (tests/conftest.py) share no code
with the library, but they were written by the same hands; networkx is a
fully external oracle for the substrate's graph algorithms and for the
distance semantics the labelling must reproduce.
"""

import random

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.construction import build_hcl
from repro.core.construction_fast import build_hcl_fast
from repro.core.query import query_distance
from repro.graph.csr import CSRGraph
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.statistics import (
    average_distance,
    clustering_coefficient,
    connected_components,
)
from repro.graph.traversal import bfs_distances, bidirectional_bfs

from tests.conftest import random_connected_graph

INF = float("inf")


def to_networkx(graph: DynamicGraph) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(graph.vertices())
    g.add_edges_from(graph.edges())
    return g


def random_graph(seed: int, connected: bool = True) -> DynamicGraph:
    if connected:
        return random_connected_graph(seed)
    rng = random.Random(seed)
    from repro.graph.generators import erdos_renyi

    n = rng.randint(6, 25)
    return erdos_renyi(n, max(1, n // 2), rng=rng)


class TestTraversal:
    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_bfs_distances_match(self, seed):
        graph = random_graph(seed, connected=False)
        nxg = to_networkx(graph)
        source = sorted(graph.vertices())[0]
        expected = nx.single_source_shortest_path_length(nxg, source)
        assert bfs_distances(graph, source) == dict(expected)

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_bidirectional_bfs_matches(self, seed):
        graph = random_graph(seed)
        nxg = to_networkx(graph)
        vertices = sorted(graph.vertices())
        u, v = vertices[0], vertices[-1]
        expected = nx.shortest_path_length(nxg, u, v)
        assert bidirectional_bfs(graph, u, v, bound=INF) == expected

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_csr_bfs_matches(self, seed):
        graph = random_graph(seed, connected=False)
        nxg = to_networkx(graph)
        source = sorted(graph.vertices())[0]
        expected = dict(nx.single_source_shortest_path_length(nxg, source))
        csr = CSRGraph.from_graph(graph)
        dist = csr.bfs(source)
        for v in graph.vertices():
            assert int(dist[csr.index(v)]) == expected.get(v, -1)


class TestStatistics:
    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_connected_components_match(self, seed):
        graph = random_graph(seed, connected=False)
        nxg = to_networkx(graph)
        ours = {frozenset(c) for c in connected_components(graph)}
        theirs = {frozenset(c) for c in nx.connected_components(nxg)}
        assert ours == theirs

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_clustering_coefficient_matches(self, seed):
        graph = random_graph(seed)
        nxg = to_networkx(graph)
        eligible = [v for v in graph.vertices() if graph.degree(v) >= 2]
        if not eligible:
            return
        expected = sum(nx.clustering(nxg, eligible).values()) / len(eligible)
        ours = clustering_coefficient(graph, num_samples=None)
        assert ours == pytest.approx(expected)

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=8, deadline=None)
    def test_average_distance_matches(self, seed):
        graph = random_graph(seed)
        nxg = to_networkx(graph)
        expected = nx.average_shortest_path_length(nxg)
        ours = average_distance(graph, num_sources=None)
        assert ours == pytest.approx(expected)


class TestLabellingSemantics:
    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=12, deadline=None)
    def test_queries_match_networkx(self, seed):
        graph = random_graph(seed)
        nxg = to_networkx(graph)
        vertices = sorted(graph.vertices())
        labelling = build_hcl(graph, vertices[:3])
        lengths = dict(nx.all_pairs_shortest_path_length(nxg))
        for u in vertices[::3]:
            for v in vertices[::4]:
                expected = lengths[u].get(v, INF)
                assert query_distance(graph, labelling, u, v) == expected

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_fast_construction_queries_match_networkx(self, seed):
        graph = random_graph(seed)
        nxg = to_networkx(graph)
        vertices = sorted(graph.vertices())
        labelling = build_hcl_fast(graph, vertices[:2])
        u, v = vertices[1], vertices[-1]
        assert query_distance(graph, labelling, u, v) == nx.shortest_path_length(
            nxg, u, v
        )
