"""Tests for BFS/Dijkstra primitives, including the bounded/bidirectional
searches that implement the paper's sparsified query step."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import VertexNotFoundError
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.digraph import DynamicDiGraph
from repro.graph.generators import grid_graph, ring_of_cliques
from repro.graph.traversal import (
    INF,
    bfs_distances,
    bfs_distances_bounded,
    bfs_distances_directed,
    bfs_with_parents,
    bidirectional_bfs,
    bidirectional_dijkstra,
    dijkstra_distances,
)
from repro.graph.weighted import WeightedGraph

from tests.conftest import random_connected_graph, reference_bfs


class TestBfsDistances:
    def test_path_graph(self, path_graph):
        assert bfs_distances(path_graph, 0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_unreachable_vertices_absent(self):
        g = DynamicGraph.from_edges([(0, 1)], num_vertices=3)
        dist = bfs_distances(g, 0)
        assert 2 not in dist

    def test_unknown_source(self):
        with pytest.raises(VertexNotFoundError):
            bfs_distances(DynamicGraph(), 0)

    @given(st.integers(0, 200))
    @settings(max_examples=25, deadline=None)
    def test_matches_reference(self, seed):
        g = random_connected_graph(seed)
        for source in list(g.vertices())[:3]:
            assert bfs_distances(g, source) == reference_bfs(g, source)


class TestBoundedBfs:
    def test_bound_truncates(self, path_graph):
        dist = bfs_distances_bounded(path_graph, 0, bound=2)
        assert dist == {0: 0, 1: 1, 2: 2}

    def test_skip_excludes_interior(self):
        g = DynamicGraph.from_edges([(0, 1), (1, 2), (0, 3), (3, 4), (4, 2)])
        dist = bfs_distances_bounded(g, 0, bound=10, skip={1})
        assert dist[2] == 3  # forced around via 3-4

    def test_skip_source_still_seeded(self, path_graph):
        dist = bfs_distances_bounded(path_graph, 2, bound=10, skip={2})
        assert dist[0] == 2

    def test_zero_bound(self, path_graph):
        assert bfs_distances_bounded(path_graph, 0, bound=0) == {0: 0}


class TestBfsWithParents:
    def test_parents_are_all_shortest_predecessors(self):
        g = DynamicGraph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        dist, parents = bfs_with_parents(g, 0)
        assert dist[3] == 2
        assert sorted(parents[3]) == [1, 2]
        assert parents[0] == []

    def test_single_path(self, path_graph):
        _, parents = bfs_with_parents(path_graph, 0)
        assert parents[4] == [3]

    @given(st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_parent_levels_consistent(self, seed):
        g = random_connected_graph(seed)
        root = next(iter(g.vertices()))
        dist, parents = bfs_with_parents(g, root)
        for v, plist in parents.items():
            for p in plist:
                assert dist[p] == dist[v] - 1
                assert g.has_edge(p, v)


class TestBidirectionalBfs:
    def test_identical_endpoints(self, path_graph):
        assert bidirectional_bfs(path_graph, 2, 2) == 0

    def test_simple_distance(self, path_graph):
        assert bidirectional_bfs(path_graph, 0, 4) == 4

    def test_disconnected_returns_inf(self):
        g = DynamicGraph.from_edges([(0, 1)], num_vertices=4)
        assert bidirectional_bfs(g, 0, 3) == INF

    def test_bound_respected(self, path_graph):
        assert bidirectional_bfs(path_graph, 0, 4, bound=3) == INF
        assert bidirectional_bfs(path_graph, 0, 4, bound=4) == 4

    def test_skip_forces_detour(self):
        g = ring_of_cliques(4, 3)
        direct = bidirectional_bfs(g, 0, 3)
        detour = bidirectional_bfs(g, 0, 3, skip={g.num_vertices - 1})
        assert detour >= direct

    def test_skip_blocks_only_path(self, path_graph):
        assert bidirectional_bfs(path_graph, 0, 4, skip={2}) == INF

    def test_endpoints_allowed_in_skip(self, path_graph):
        assert bidirectional_bfs(path_graph, 0, 4, skip={0, 4}) == 4

    def test_unknown_vertices(self, path_graph):
        with pytest.raises(VertexNotFoundError):
            bidirectional_bfs(path_graph, 0, 99)
        with pytest.raises(VertexNotFoundError):
            bidirectional_bfs(path_graph, 99, 0)

    @given(st.integers(0, 300), st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_matches_reference_on_random_graphs(self, seed, rng):
        g = random_connected_graph(seed)
        vertices = list(g.vertices())
        for _ in range(10):
            u = rng.choice(vertices)
            v = rng.choice(vertices)
            assert bidirectional_bfs(g, u, v) == reference_bfs(g, u).get(v, INF)

    @given(st.integers(0, 150), st.randoms(use_true_random=False))
    @settings(max_examples=25, deadline=None)
    def test_bound_semantics_on_random_graphs(self, seed, rng):
        """Exact iff true distance <= bound, INF otherwise."""
        g = random_connected_graph(seed)
        vertices = list(g.vertices())
        u, v = rng.choice(vertices), rng.choice(vertices)
        truth = reference_bfs(g, u).get(v, INF)
        for bound in (0, 1, 2, 3, 5, INF):
            got = bidirectional_bfs(g, u, v, bound=bound)
            assert got == (truth if truth <= bound else INF)


class TestDijkstra:
    def test_unit_weights_match_bfs(self):
        unweighted = grid_graph(4, 4)
        weighted = WeightedGraph.from_edges(
            [(u, v, 1.0) for u, v in unweighted.edges()]
        )
        bfs = bfs_distances(unweighted, 0)
        dij = dijkstra_distances(weighted, 0)
        assert dij == {v: float(d) for v, d in bfs.items()}

    def test_weighted_shortcut(self):
        g = WeightedGraph.from_edges([(0, 1, 10.0), (0, 2, 1.0), (2, 1, 1.0)])
        assert dijkstra_distances(g, 0)[1] == 2.0

    def test_bound(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0), (1, 2, 5.0)])
        dist = dijkstra_distances(g, 0, bound=2.0)
        assert 2 not in dist

    def test_skip(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)])
        assert dijkstra_distances(g, 0, skip={1})[2] == 5.0

    def test_unknown_source(self):
        with pytest.raises(VertexNotFoundError):
            dijkstra_distances(WeightedGraph(), 0)


class TestBidirectionalDijkstra:
    def test_matches_single_source(self):
        g = WeightedGraph.from_edges(
            [(0, 1, 2.0), (1, 2, 2.0), (0, 3, 1.0), (3, 4, 1.0), (4, 2, 1.0)]
        )
        assert bidirectional_dijkstra(g, 0, 2) == 3.0

    def test_identical_endpoints(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0)])
        assert bidirectional_dijkstra(g, 0, 0) == 0.0

    def test_disconnected(self):
        g = WeightedGraph.from_edges([(0, 1, 1.0)])
        g.add_vertex(5)
        assert bidirectional_dijkstra(g, 0, 5) == INF

    def test_bound(self):
        g = WeightedGraph.from_edges([(0, 1, 3.0)])
        assert bidirectional_dijkstra(g, 0, 1, bound=2.0) == INF
        assert bidirectional_dijkstra(g, 0, 1, bound=3.0) == 3.0

    @given(st.integers(0, 150), st.randoms(use_true_random=False))
    @settings(max_examples=25, deadline=None)
    def test_random_graphs_vs_full_dijkstra(self, seed, rng):
        base = random_connected_graph(seed)
        g = WeightedGraph()
        for v in base.vertices():
            g.add_vertex(v)
        for u, v in base.edges():
            g.add_edge(u, v, rng.choice([1.0, 2.0, 3.5]))
        vertices = list(g.vertices())
        u, v = rng.choice(vertices), rng.choice(vertices)
        truth = dijkstra_distances(g, u).get(v, INF)
        assert bidirectional_dijkstra(g, u, v) == truth


class TestDirectedBfs:
    def test_forward_vs_backward(self):
        g = DynamicDiGraph.from_edges([(0, 1), (1, 2)])
        assert bfs_distances_directed(g, 0, forward=True) == {0: 0, 1: 1, 2: 2}
        assert bfs_distances_directed(g, 0, forward=False) == {0: 0}
        assert bfs_distances_directed(g, 2, forward=False) == {2: 0, 1: 1, 0: 2}

    def test_unknown_source(self):
        with pytest.raises(VertexNotFoundError):
            bfs_distances_directed(DynamicDiGraph(), 0)
